//! Multi-tenant serving benchmark: measures what the sharded engine buys
//! over the sequential single-tenant deployment and writes
//! `BENCH_serve.json` so the serving perf trajectory is tracked across
//! revisions.
//!
//! Reported numbers:
//!
//! * windows/sec through a sequential per-user `predict_batch` loop (the
//!   pre-engine serving model, single thread, no batching);
//! * windows/sec through `ServeEngine::predict_many` at 1/2/4/8 caller
//!   threads over the same request mix, with the speedup vs. the
//!   sequential loop;
//! * a personalized-model cache sweep: windows/sec and cache
//!   hit/miss/eviction/rehydration counts at capacities 1..16 while a
//!   rotation of personalized users keeps the cache under pressure.
//!
//! Before any timing, the engine's per-request output is asserted
//! bit-identical to the sequential loop — the throughput numbers are
//! only meaningful because the served bits are the same.

use clear_bench::cli_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, ClearDeployment, Prediction, ServingPolicy};
use clear_features::FeatureMap;
use clear_serve::{EngineConfig, ServeEngine, ServeRequest};
use clear_sim::Emotion;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Concurrent users in the throughput runs.
const USERS: usize = 24;
/// Request passes over the full user set per thread-count measurement.
const ROUNDS: usize = 4;
/// Personalized users in the cache sweep.
const CACHE_USERS: usize = 8;
/// Prediction passes per cache-sweep capacity.
const CACHE_ROUNDS: usize = 3;

#[derive(Debug, Serialize)]
struct ThreadPoint {
    threads: usize,
    windows_per_sec: f32,
    speedup_vs_sequential: f32,
}

#[derive(Debug, Serialize)]
struct CachePoint {
    capacity: usize,
    windows_per_sec: f32,
    hits: u64,
    misses: u64,
    evictions: u64,
    rehydrations: u64,
}

#[derive(Debug, Serialize)]
struct ServeBench {
    users: usize,
    windows_per_request: usize,
    sequential_windows_per_sec: f32,
    engine_throughput: Vec<ThreadPoint>,
    cache_sweep: Vec<CachePoint>,
}

fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

/// Maps `[lo, hi)` of the subject at `rank` (modulo cohort size),
/// clamped to the subject's recording count.
fn maps_of(data: &PreparedCohort, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect()
}

fn labeled_of(
    data: &PreparedCohort,
    rank: usize,
    lo: usize,
    hi: usize,
) -> Vec<(FeatureMap, Emotion)> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| {
            let (map, emotion) = data.map_and_label(i);
            (map.clone(), emotion)
        })
        .collect()
}

fn counter_delta(before: &clear_obs::Snapshot, after: &clear_obs::Snapshot, name: &str) -> u64 {
    after.counters.get(name).copied().unwrap_or(0) - before.counters.get(name).copied().unwrap_or(0)
}

/// Serves `rounds` passes of the request set through the engine from
/// `threads` caller threads, returning elapsed seconds and the results
/// of the first pass (request-set order).
fn engine_pass(
    engine: &ServeEngine,
    requests: &[(String, Vec<FeatureMap>)],
    threads: usize,
    rounds: usize,
) -> (f32, Vec<Vec<Prediction>>) {
    use parking_lot::Mutex;
    let slots: Vec<Mutex<Option<Vec<Prediction>>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    let indexed: Vec<(usize, ServeRequest<'_>)> = requests
        .iter()
        .enumerate()
        .map(|(i, (user, maps))| (i, ServeRequest { user, maps }))
        .collect();
    let chunk = indexed.len().div_ceil(threads);
    let t0 = Instant::now();
    for round in 0..rounds {
        crossbeam::thread::scope(|scope| {
            for part in indexed.chunks(chunk) {
                let slots = &slots;
                scope.spawn(move |_| {
                    let batch: Vec<ServeRequest<'_>> = part.iter().map(|&(_, r)| r).collect();
                    let results = engine.predict_many(&batch);
                    if round == 0 {
                        for (&(index, _), result) in part.iter().zip(results) {
                            *slots[index].lock() =
                                Some(result.expect("benchmark users are onboarded"));
                        }
                    }
                });
            }
        })
        .expect("a serving thread panicked");
    }
    let elapsed = t0.elapsed().as_secs_f32();
    let first_pass = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every request served"))
        .collect();
    (elapsed, first_pass)
}

fn main() {
    let cli = cli_from_args();

    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    // Reduced training profile: the benchmark measures serving, not SGD.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (_, initial) = subjects.split_last().expect("cohort is non-empty");
    let bundle = deploy(&data, initial, &config).bundle().clone();

    // The tenant population: USERS users over the cohort's subjects,
    // every fourth one personalized so forks are in the serving mix.
    let users: Vec<String> = (0..USERS).map(|i| format!("user-{i}")).collect();
    let mut sequential = ClearDeployment::with_policy(bundle.clone(), lenient());
    let engine = ServeEngine::with_policy(
        bundle.clone(),
        lenient(),
        EngineConfig {
            shards: 8,
            cache_capacity: 16,
            max_queue_depth: 1024,
            ..EngineConfig::default()
        },
    );
    for (i, user) in users.iter().enumerate() {
        let maps = maps_of(&data, i, 0, 2);
        sequential.onboard(user, &maps).expect("onboarding maps");
        engine.onboard(user, &maps).expect("onboarding maps");
        if i % 4 == 0 {
            let labeled = labeled_of(&data, i, 6, 8);
            let a = sequential
                .personalize(user, &labeled, &config.finetune)
                .expect("user onboarded above");
            let b = engine
                .personalize(user, &labeled, &config.finetune)
                .expect("user onboarded above");
            // Bit-level comparison: unvalidated outcomes carry a NaN
            // baseline accuracy, which derived `PartialEq` never matches.
            assert_eq!(
                (a.adopted, a.validated, a.baseline_accuracy.to_bits()),
                (b.adopted, b.validated, b.baseline_accuracy.to_bits()),
                "personalization diverged for {user}"
            );
            assert_eq!(
                a.personalized_accuracy.to_bits(),
                b.personalized_accuracy.to_bits(),
                "personalization diverged for {user}"
            );
        }
    }

    let requests: Vec<(String, Vec<FeatureMap>)> = users
        .iter()
        .enumerate()
        .map(|(i, user)| (user.clone(), maps_of(&data, i, 2, 6)))
        .collect();
    let windows_per_request = requests.first().map_or(0, |(_, maps)| maps.len());
    let total_windows = requests.iter().map(|(_, maps)| maps.len()).sum::<usize>();

    // Sequential baseline: the pre-engine serving model, one
    // `predict_batch` per request on a single thread.
    let t0 = Instant::now();
    let mut expected: Vec<Vec<Prediction>> = Vec::with_capacity(requests.len());
    for _ in 0..ROUNDS {
        expected.clear();
        for (user, maps) in &requests {
            expected.push(
                sequential
                    .predict_batch(user, maps)
                    .expect("benchmark users are onboarded"),
            );
        }
    }
    let sequential_windows_per_sec =
        (ROUNDS * total_windows) as f32 / t0.elapsed().as_secs_f32().max(1e-9);
    eprintln!("sequential loop: {sequential_windows_per_sec:.0} windows/sec");

    // Correctness gate: the engine must serve the same bits before its
    // throughput numbers mean anything.
    let (_, engine_results) = engine_pass(&engine, &requests, 4, 1);
    assert_eq!(
        expected, engine_results,
        "engine output diverged from the sequential loop"
    );

    let mut engine_throughput = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (elapsed, _) = engine_pass(&engine, &requests, threads, ROUNDS);
        let windows_per_sec = (ROUNDS * total_windows) as f32 / elapsed.max(1e-9);
        let speedup = windows_per_sec / sequential_windows_per_sec.max(1e-9);
        eprintln!(
            "engine @ {threads} threads: {windows_per_sec:.0} windows/sec ({speedup:.2}x sequential)"
        );
        engine_throughput.push(ThreadPoint {
            threads,
            windows_per_sec,
            speedup_vs_sequential: speedup,
        });
    }

    // Cache sweep: CACHE_USERS personalized users served in rotation
    // while the fork cache shrinks from roomy to capacity 1.
    let mut cache_sweep = Vec::new();
    for capacity in [1usize, 2, 4, 8, 16] {
        let engine = ServeEngine::with_policy(
            bundle.clone(),
            lenient(),
            EngineConfig {
                shards: 4,
                cache_capacity: capacity,
                max_queue_depth: 1024,
                ..EngineConfig::default()
            },
        );
        for i in 0..CACHE_USERS {
            let user = format!("cache-user-{i}");
            engine
                .onboard(&user, &maps_of(&data, i, 0, 2))
                .expect("onboarding maps");
            engine
                .personalize(&user, &labeled_of(&data, i, 6, 8), &config.finetune)
                .expect("user onboarded above");
        }
        let before = registry.snapshot();
        let t0 = Instant::now();
        let mut windows = 0usize;
        for _ in 0..CACHE_ROUNDS {
            for i in 0..CACHE_USERS {
                let user = format!("cache-user-{i}");
                let maps = maps_of(&data, i, 2, 6);
                windows += maps.len();
                engine
                    .predict(&user, &maps)
                    .expect("benchmark users are onboarded");
            }
        }
        let windows_per_sec = windows as f32 / t0.elapsed().as_secs_f32().max(1e-9);
        let after = registry.snapshot();
        let point = CachePoint {
            capacity,
            windows_per_sec,
            hits: counter_delta(&before, &after, clear_obs::counters::CACHE_HITS),
            misses: counter_delta(&before, &after, clear_obs::counters::CACHE_MISSES),
            evictions: counter_delta(&before, &after, clear_obs::counters::CACHE_EVICTIONS),
            rehydrations: counter_delta(&before, &after, clear_obs::counters::CACHE_REHYDRATIONS),
        };
        eprintln!(
            "cache capacity {capacity}: {:.0} windows/sec ({} hits, {} misses, {} evictions, {} rehydrations)",
            point.windows_per_sec, point.hits, point.misses, point.evictions, point.rehydrations
        );
        cache_sweep.push(point);
    }

    let results = ServeBench {
        users: USERS,
        windows_per_request,
        sequential_windows_per_sec,
        engine_throughput,
        cache_sweep,
    };
    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_serve.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_serve_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    clear_obs::uninstall();
}
