//! The economic claim of the cluster layer, stated as a counter
//! equality: replication, failover, catch-up and reseeding move *logged
//! results* — they never retrain a model. The `nn.train_epochs` counter
//! must not move while the cluster recovers from a crash.
//!
//! Single test on purpose: it owns the process-global metrics registry.

mod common;

use clear_cluster::FaultProfile;
use clear_obs::{counters, Registry};
use common::{build_cluster, fingerprint, fixture, run_script, settle};
use std::sync::Arc;

#[test]
fn replication_and_failover_never_retrain() {
    // Train the shared bundle *before* installing the registry so cloud
    // training epochs do not pollute the serving-time counters.
    let f = fixture();
    let registry = Arc::new(Registry::new());
    clear_obs::install(Arc::clone(&registry));

    let mut c = build_cluster(&[0, 1, 2], FaultProfile::reliable(), 23);
    run_script(&mut c, f);
    settle(&mut c);

    let epochs_after_script = registry.counter(counters::TRAIN_EPOCHS).get();
    assert!(
        epochs_after_script > 0,
        "the script personalizes, so the leader trains"
    );
    assert!(registry.counter(counters::CLUSTER_FRAMES_SHIPPED).get() > 0);
    assert!(registry.counter(counters::CLUSTER_FRAMES_ACKED).get() > 0);

    // Crash the member leading bob's partition, fail over, restart it,
    // reseed, settle — the full recovery arc.
    let victim = c
        .leader_of_partition(c.partition_of("bob"))
        .expect("partition has a leader");
    c.kill_member(victim).expect("crash handled");
    c.restart_member(victim).expect("restart handled");
    settle(&mut c);

    assert_eq!(
        registry.counter(counters::TRAIN_EPOCHS).get(),
        epochs_after_script,
        "failover, catch-up and reseeding must replay logged results, never retrain"
    );
    assert!(registry.counter(counters::CLUSTER_FAILOVERS).get() >= 1);

    // Serving after recovery doesn't train either.
    let _ = fingerprint(&mut c, f);
    assert_eq!(
        registry.counter(counters::TRAIN_EPOCHS).get(),
        epochs_after_script,
        "post-recovery serving must not train"
    );

    clear_obs::uninstall();
}
