//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! All instruments are lock-free on the hot path (relaxed atomics); the
//! registry's maps are only locked to *create* an instrument, never to
//! update one. Snapshots are plain serializable structs with `BTreeMap`
//! keys, so their JSON is byte-stable for a given sequence of updates.

use crate::clock::{Clock, MonotonicClock};
use crate::stage::Stage;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

// Telemetry must never deadlock or cascade a panic: recover from lock
// poisoning instead of unwrapping (the maps hold only Arc'd instruments,
// so a poisoned map is still structurally sound).
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Default latency bucket upper bounds, nanoseconds: 1 µs … 10 s in
/// 1-5-10 decades, plus an implicit overflow bucket. Chosen so one set of
/// buckets resolves both a single biquad pass (~µs) and a full LOSO fold
/// (~s).
pub const LATENCY_BOUNDS_NS: [u64; 15] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Default bucket upper bounds for size-like histograms (batch sizes):
/// powers of two up to 1024, plus the overflow bucket.
pub const SIZE_BOUNDS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed level (queue depths, active users, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. A value `v` lands in the first bucket whose
/// upper bound satisfies `v <= bound`; values above every bound land in
/// the overflow bucket, so `counts.len() == bounds.len() + 1` and no
/// observation is ever dropped.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over strictly increasing `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Serializable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (`counts` has one extra overflow slot).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts, `bounds.len() + 1` long.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// bound of the bucket holding the q-th observation, or `max` for
    /// the overflow bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":");
        push_u64_array(out, &self.bounds);
        out.push_str(",\"counts\":");
        push_u64_array(out, &self.counts);
        out.push_str(",\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        out.push_str(",\"max\":");
        out.push_str(&self.max.to_string());
        out.push('}');
    }
}

// The crate is dependency-free, so snapshots carry their own (tiny) JSON
// writer. Emission is deterministic: BTreeMap key order, fixed field
// order, no float formatting (every value is an integer).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_array(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

/// Point-in-time copy of a whole [`Registry`]. Key order (and therefore
/// serialized JSON) is deterministic: `BTreeMap` throughout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name; pipeline stages appear under their
    /// [`Stage::name`] (`"stage.…"` keys).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Compact deterministic JSON, single line. Byte-identical for equal
    /// snapshots (and therefore run-to-run under a
    /// [`crate::clock::FakeClock`]).
    pub fn to_json(&self) -> String {
        self.render("", "")
    }

    /// Pretty deterministic JSON: one instrument per line, two-space
    /// indent. This is the format `bench_exec` writes to
    /// `BENCH_obs.json`.
    pub fn to_json_pretty(&self) -> String {
        self.render("\n", "  ")
    }

    fn render(&self, nl: &str, indent: &str) -> String {
        let sp = if nl.is_empty() { "" } else { " " };
        let mut sections: Vec<(&str, Vec<String>)> = Vec::with_capacity(3);

        let mut entries = Vec::with_capacity(self.counters.len());
        for (k, v) in &self.counters {
            let mut e = String::new();
            push_json_string(&mut e, k);
            e.push(':');
            e.push_str(sp);
            e.push_str(&v.to_string());
            entries.push(e);
        }
        sections.push(("counters", entries));

        let mut entries = Vec::with_capacity(self.gauges.len());
        for (k, v) in &self.gauges {
            let mut e = String::new();
            push_json_string(&mut e, k);
            e.push(':');
            e.push_str(sp);
            e.push_str(&v.to_string());
            entries.push(e);
        }
        sections.push(("gauges", entries));

        let mut entries = Vec::with_capacity(self.histograms.len());
        for (k, h) in &self.histograms {
            let mut e = String::new();
            push_json_string(&mut e, k);
            e.push(':');
            e.push_str(sp);
            h.push_json(&mut e);
            entries.push(e);
        }
        sections.push(("histograms", entries));

        let mut out = String::from("{");
        for (i, (name, entries)) in sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(nl);
            out.push_str(indent);
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(sp);
            out.push('{');
            for (j, e) in entries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(indent);
                out.push_str(indent);
                out.push_str(e);
            }
            if !entries.is_empty() {
                out.push_str(nl);
                out.push_str(indent);
            }
            out.push('}');
        }
        out.push_str(nl);
        out.push('}');
        out
    }
}

/// A thread-safe metrics registry with an injectable clock.
///
/// Per-stage latency histograms are pre-allocated in a dense array indexed
/// by [`Stage`], so span recording is two atomic clock reads plus a few
/// relaxed atomic adds — no locks, no allocation. Named counters, gauges
/// and extra histograms are created on first touch behind a short-lived
/// write lock and updated lock-free thereafter.
pub struct Registry {
    clock: Box<dyn Clock>,
    stages: Vec<Histogram>,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("clock", &self.clock)
            .field("stages", &self.stages.len())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// A registry on the production monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A registry reading time from `clock` (tests inject a
    /// [`crate::clock::FakeClock`]).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self {
            clock,
            stages: Stage::all()
                .iter()
                .map(|_| Histogram::new(&LATENCY_BOUNDS_NS))
                .collect(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Current clock reading, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The pre-allocated latency histogram of a pipeline stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// The named counter, created at zero on first touch.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write(&self.counters).entry(name.to_string()).or_default())
    }

    /// The named gauge, created at zero on first touch.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(write(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The named histogram, created with `bounds` on first touch (later
    /// calls ignore `bounds` and return the existing instrument).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Serializable point-in-time copy of every instrument. Stage
    /// histograms that never recorded are omitted, so quiet subsystems do
    /// not pad the export.
    pub fn snapshot(&self) -> Snapshot {
        let mut histograms: BTreeMap<String, HistogramSnapshot> = Stage::all()
            .iter()
            .filter(|&&s| self.stage(s).count() > 0)
            .map(|&s| (s.name().to_string(), self.stage(s).snapshot()))
            .collect();
        for (name, h) in read(&self.histograms).iter() {
            histograms.insert(name.clone(), h.snapshot());
        }
        Snapshot {
            counters: read(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: read(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}
