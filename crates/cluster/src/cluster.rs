//! The partitioned, replicated serving cluster.
//!
//! [`ServeCluster`] owns a set of member [`ServeEngine`]s and routes
//! every user to one *partition* (consistent hash of the user id, stable
//! across membership changes). Each partition has a **leader** engine
//! that serves all traffic and up to R **follower** engines
//! ([`ReplicationConfig::replicas`], placed on distinct ring members)
//! kept current by *WAL shipping*: after every mutation the leader
//! exports the WAL suffix past each follower's acknowledged LSN and
//! sends it through the [`Transport`]. Followers replay the records —
//! which carry logged *results*, never inputs — so replication costs no
//! training and a follower's registry is bit-identical to the leader's
//! at every acked LSN.
//!
//! Durability is **quorum-acknowledged**: [`ServeCluster::flush`]
//! returns once [`ReplicationConfig::write_quorum`] followers have acked
//! the leader's WAL tip, reports transient lag as a typed
//! [`ClusterError::ReplicationTimeout`], and reports the *structural*
//! loss of too many followers as [`ClusterError::QuorumLost`].
//!
//! The shipping path is defensive end to end: duplicate frames dedupe by
//! LSN, gaps are detected and re-shipped, lost frames and acks are
//! retried with exponential backoff, and a follower that detects
//! divergence (a frame that contradicts its own state) latches itself
//! quarantined until reseeded from a leader snapshot. Divergence that
//! frame replay alone cannot see — a follower whose *state* silently
//! rotted while its LSNs stayed plausible — is caught by **anti-entropy
//! scrubbing** ([`ServeCluster::scrub`]): leader and followers exchange
//! per-user sealed-envelope fingerprints, stale followers are repaired
//! by snapshot transfer, and genuinely diverged ones are latched.
//!
//! Failures of whole members are first-class:
//! [`ServeCluster::kill_member`] (crash, disk survives) triggers
//! failover — the follower with the highest durable LSN catches up from
//! the dead leader's disk and is promoted, and replacements are
//! recruited — while [`ServeCluster::destroy_member`] (disk lost)
//! promotes only a fully-acked follower and otherwise degrades the
//! partition to read-only follower serving rather than silently dropping
//! acknowledged writes.

use clear_core::deployment::{
    ClearBundle, Onboarding, PersonalizeOutcome, Prediction, ServingPolicy,
};
use clear_durable::{
    read_records, DurableConfig, DurableError, EngineSnapshot, MemStorage, Storage, WalRecord,
};
use clear_features::FeatureMap;
use clear_nn::train::TrainConfig;
use clear_obs::counters;
use clear_serve::{EngineConfig, ServeEngine, ServeError};
use clear_sim::Emotion;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::net::{Envelope, Message, Transport};
use crate::ring::Partitioner;
use crate::MemberId;

/// Errors of the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The partition currently has no live leader (and, for reads, no
    /// servable follower). Mutations are rejected rather than risked.
    PartitionUnavailable {
        /// The affected partition.
        partition: usize,
    },
    /// `flush` could not drive the follower to the leader's LSN within
    /// the configured retries/backoff.
    ReplicationTimeout {
        /// The lagging partition.
        partition: usize,
        /// Records still unacknowledged.
        lag: u64,
    },
    /// The follower latched itself after detecting divergence; it must
    /// be reseeded before replication can resume.
    FollowerDiverged {
        /// The affected partition.
        partition: usize,
        /// The latched follower.
        member: MemberId,
    },
    /// Fewer live, unlatched followers remain than the configured write
    /// quorum. Structural, not transient: retrying cannot recruit
    /// members, so `flush` reports it instead of spinning.
    QuorumLost {
        /// The affected partition.
        partition: usize,
        /// Live, unlatched followers still assigned.
        survivors: usize,
        /// The effective write quorum.
        needed: usize,
    },
    /// A freshly reseeded follower failed post-reseed fingerprint
    /// verification twice; its replica is latched and needs operator
    /// attention (the snapshot-transfer path itself is suspect).
    ReseedVerificationFailed {
        /// The affected partition.
        partition: usize,
        /// The follower that failed verification.
        member: MemberId,
    },
    /// The member id is not part of the cluster.
    UnknownMember(MemberId),
    /// The target member is known but not up.
    MemberDown(MemberId),
    /// A cluster needs at least one member.
    NoMembers,
    /// An underlying engine operation failed.
    Serve(ServeError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::PartitionUnavailable { partition } => {
                write!(f, "partition {partition} has no live leader")
            }
            ClusterError::ReplicationTimeout { partition, lag } => write!(
                f,
                "partition {partition} replication timed out with {lag} unacknowledged records"
            ),
            ClusterError::FollowerDiverged { partition, member } => write!(
                f,
                "follower {member} of partition {partition} latched after divergence"
            ),
            ClusterError::QuorumLost {
                partition,
                survivors,
                needed,
            } => write!(
                f,
                "partition {partition} lost its write quorum ({survivors} of {needed} followers remain)"
            ),
            ClusterError::ReseedVerificationFailed { partition, member } => write!(
                f,
                "reseeded follower {member} of partition {partition} failed fingerprint verification twice"
            ),
            ClusterError::UnknownMember(m) => write!(f, "member {m} is not part of the cluster"),
            ClusterError::MemberDown(m) => write!(f, "member {m} is down"),
            ClusterError::NoMembers => write!(f, "a cluster needs at least one member"),
            ClusterError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Serve(e)
    }
}

impl From<DurableError> for ClusterError {
    fn from(e: DurableError) -> Self {
        ClusterError::Serve(ServeError::Durable(e))
    }
}

/// Replication shape of every partition: how many followers are placed
/// and how many of them a [`ServeCluster::flush`] must hear from.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Followers per partition (R). The ring places them on distinct
    /// members, never co-located with each other or the leader; fewer
    /// are recruited when membership is too small. `0` runs
    /// unreplicated.
    pub replicas: usize,
    /// Follower acks `flush` must collect before a partition counts as
    /// durable. Clamped to `replicas`; `0` makes `flush` leader-only.
    pub write_quorum: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            write_quorum: 1,
        }
    }
}

/// Cluster-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Fixed partition count (floor 1). A user's partition is
    /// `hash(user) % partitions` forever; only partition *placement*
    /// moves with membership.
    pub partitions: usize,
    /// Virtual nodes per member on the placement ring.
    pub vnodes: usize,
    /// Per-member engine configuration.
    pub engine: EngineConfig,
    /// Re-ship attempts after the first before a partition is declared
    /// lagging (each attempt doubles the tick budget, capped at 16×).
    pub ship_retries: usize,
    /// Network ticks granted to the first shipping attempt.
    pub ship_timeout_ticks: u64,
    /// Follower count and write quorum of every partition.
    pub replication: ReplicationConfig,
    /// Ticks between automatic anti-entropy scrubs (round-robin over
    /// partitions, driven from [`ServeCluster::pump`]). `0` disables the
    /// cadence; scrubs then run only when called explicitly.
    pub scrub_every_ticks: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            partitions: 8,
            vnodes: 64,
            engine: EngineConfig::default(),
            ship_retries: 4,
            ship_timeout_ticks: 8,
            replication: ReplicationConfig::default(),
            scrub_every_ticks: 0,
        }
    }
}

/// One member's copy of one partition: its private storage (the
/// "disk"), the engine running over it (None while the member is down),
/// and the divergence latch.
struct Replica {
    storage: Arc<MemStorage>,
    engine: Option<ServeEngine>,
    latched: bool,
}

/// Liveness of a member process.
#[derive(Debug, Clone, Copy)]
struct Member {
    up: bool,
}

/// One follower assignment: the member and the highest LSN it has
/// acknowledged as durably applied.
#[derive(Debug, Clone, Copy)]
struct FollowerState {
    member: MemberId,
    acked: u64,
}

/// Per-partition replication bookkeeping, all from the orchestrator's
/// point of view.
#[derive(Debug, Clone)]
struct PartitionState {
    /// Serving leader. `None` only after a destroy with no fully-acked
    /// follower (promoting would drop acknowledged writes).
    leader: Option<MemberId>,
    /// Replication targets in ring order, each with its acked LSN.
    followers: Vec<FollowerState>,
    /// The leader's WAL tip as of the last shipping attempt.
    leader_last: u64,
    /// Shipping attempts that needed a retry (for tests/bench).
    retries: u64,
}

/// In-flight anti-entropy state of one partition scrub, between
/// [`ServeCluster::scrub_begin`] and [`ServeCluster::scrub_settle`].
struct ScrubState {
    /// Followers probed and not yet classified.
    outstanding: Vec<MemberId>,
    /// Followers whose report showed them behind the leader's tip;
    /// repaired by snapshot transfer at settle.
    stale: Vec<MemberId>,
    /// Followers latched as diverged (LSN ahead of the leader, or equal
    /// LSN with mismatched fingerprints).
    diverged: Vec<MemberId>,
    /// Followers whose fingerprints matched the leader's exactly.
    clean: Vec<MemberId>,
}

/// What one anti-entropy scrub found and did, per follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// The scrubbed partition.
    pub partition: usize,
    /// Followers bit-identical to the leader at its WAL tip.
    pub clean: Vec<MemberId>,
    /// Stale followers repaired by snapshot transfer.
    pub repaired: Vec<MemberId>,
    /// Followers latched as diverged.
    pub diverged: Vec<MemberId>,
    /// Followers that never reported (down, silent, or lost traffic).
    pub unresponsive: Vec<MemberId>,
}

/// A partitioned, replicated cluster of serving engines. Single-threaded
/// by design: it is the *orchestration* layer, and determinism — the
/// same call sequence always produces the same replication schedule — is
/// what makes the fault-matrix tests able to demand bit-identical
/// convergence.
pub struct ServeCluster {
    bundle: ClearBundle,
    policy: ServingPolicy,
    config: ClusterConfig,
    partitioner: Partitioner,
    members: BTreeMap<MemberId, Member>,
    partitions: Vec<PartitionState>,
    replicas: HashMap<(MemberId, usize), Replica>,
    net: Box<dyn Transport>,
    /// In-flight scrubs, keyed by partition.
    scrubs: HashMap<usize, ScrubState>,
    /// Reentrancy guard: `scrub` pumps the network, and `pump`'s
    /// automatic cadence must not start a scrub inside a scrub.
    in_scrub: bool,
    /// Ticks accumulated toward the next automatic scrub.
    ticks_since_scrub: u64,
    /// Round-robin cursor of the automatic scrub cadence.
    scrub_cursor: usize,
}

impl ServeCluster {
    /// Builds a cluster over `member_ids`, placing every partition's
    /// leader and its `replicas` followers via consistent hashing and
    /// creating fresh durable engines (in-memory disks, WAL-logged) for
    /// each replica.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoMembers`] for an empty member list, or any
    /// engine-construction error.
    pub fn new(
        bundle: ClearBundle,
        policy: ServingPolicy,
        member_ids: &[MemberId],
        config: ClusterConfig,
        net: Box<dyn Transport>,
    ) -> Result<Self, ClusterError> {
        if member_ids.is_empty() {
            return Err(ClusterError::NoMembers);
        }
        let mut partitioner = Partitioner::new(config.partitions, config.vnodes);
        let mut members = BTreeMap::new();
        for &m in member_ids {
            partitioner.add_member(m);
            members.insert(m, Member { up: true });
        }
        let mut cluster = Self {
            bundle,
            policy,
            config,
            partitioner,
            members,
            partitions: Vec::new(),
            replicas: HashMap::new(),
            net,
            scrubs: HashMap::new(),
            in_scrub: false,
            ticks_since_scrub: 0,
            scrub_cursor: 0,
        };
        for partition in 0..cluster.partitioner.partitions() {
            let leader = cluster
                .partitioner
                .leader_of(partition)
                .ok_or(ClusterError::NoMembers)?;
            let replica = cluster.blank_replica()?;
            cluster.replicas.insert((leader, partition), replica);
            let followers = cluster
                .partitioner
                .followers_of(partition, config.replication.replicas);
            for &f in &followers {
                let replica = cluster.blank_replica()?;
                cluster.replicas.insert((f, partition), replica);
            }
            cluster.partitions.push(PartitionState {
                leader: Some(leader),
                followers: followers
                    .into_iter()
                    .map(|member| FollowerState { member, acked: 0 })
                    .collect(),
                leader_last: 0,
                retries: 0,
            });
        }
        Ok(cluster)
    }

    /// A fresh replica: empty in-memory disk, durable engine over it.
    /// Automatic snapshots stay off — the cluster checkpoints explicitly
    /// so it can gate truncation on replication progress.
    fn blank_replica(&self) -> Result<Replica, ClusterError> {
        let storage = Arc::new(MemStorage::new());
        let engine = ServeEngine::recover_with(
            Arc::clone(&storage) as Arc<dyn Storage>,
            self.bundle.clone(),
            self.policy,
            self.config.engine,
            DurableConfig {
                snapshot_every_ops: 0,
            },
        )?;
        Ok(Replica {
            storage,
            engine: Some(engine),
            latched: false,
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition serving `user`.
    pub fn partition_of(&self, user: &str) -> usize {
        self.partitioner.partition_of(user)
    }

    /// Current leader of a partition (may be a down member after a
    /// crash that left no viable follower; see [`ServeCluster::is_up`]).
    pub fn leader_of_partition(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition].leader
    }

    /// First follower of a partition in ring order (the primary
    /// replication target), when one exists.
    pub fn follower_of_partition(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition]
            .followers
            .first()
            .map(|f| f.member)
    }

    /// Every follower of a partition, in ring order.
    pub fn followers_of_partition(&self, partition: usize) -> Vec<MemberId> {
        self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .collect()
    }

    /// The effective write quorum: the configured quorum, clamped to the
    /// configured replica count.
    fn effective_quorum(&self) -> usize {
        self.config
            .replication
            .write_quorum
            .min(self.config.replication.replicas)
    }

    /// The quorum-acknowledged LSN of a partition: the LSN the
    /// `write_quorum`-th most caught-up follower has acked (the leader's
    /// tip when the quorum is zero, `0` when fewer followers than the
    /// quorum exist).
    fn quorum_acked(&self, partition: usize) -> u64 {
        let st = &self.partitions[partition];
        let q = self.effective_quorum();
        if q == 0 {
            return st.leader_last;
        }
        let mut acks: Vec<u64> = st.followers.iter().map(|f| f.acked).collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        acks.get(q - 1).copied().unwrap_or(0)
    }

    /// Records the write quorum has yet to acknowledge for a partition.
    pub fn lag_of(&self, partition: usize) -> u64 {
        let st = &self.partitions[partition];
        st.leader_last.saturating_sub(self.quorum_acked(partition))
    }

    /// Shipping attempts that needed at least one retry, per partition.
    pub fn retries_of(&self, partition: usize) -> u64 {
        self.partitions[partition].retries
    }

    /// Whether a member process is up.
    pub fn is_up(&self, member: MemberId) -> bool {
        self.members.get(&member).is_some_and(|m| m.up)
    }

    /// Whether a member's replica of a partition has latched itself
    /// after detecting divergence.
    pub fn is_latched(&self, member: MemberId, partition: usize) -> bool {
        self.replicas
            .get(&(member, partition))
            .is_some_and(|r| r.latched)
    }

    /// All member ids, up or down.
    pub fn member_ids(&self) -> Vec<MemberId> {
        self.members.keys().copied().collect()
    }

    /// Direct access to the transport, for fault scripting in tests
    /// (partitioning links, injecting traffic).
    pub fn net_mut(&mut self) -> &mut dyn Transport {
        &mut *self.net
    }

    fn require_member(&self, member: MemberId) -> Result<(), ClusterError> {
        if self.members.contains_key(&member) {
            Ok(())
        } else {
            Err(ClusterError::UnknownMember(member))
        }
    }

    fn replica_engine(
        &self,
        member: MemberId,
        partition: usize,
    ) -> Result<&ServeEngine, ClusterError> {
        self.replicas
            .get(&(member, partition))
            .and_then(|r| r.engine.as_ref())
            .ok_or(ClusterError::PartitionUnavailable { partition })
    }

    /// The live, unlatched follower holding the most durable state (its
    /// engine's WAL tip; ties break toward the lowest member id) — the
    /// promotion candidate and the read-only fallback.
    fn best_follower(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .filter(|&m| self.is_up(m) && !self.is_latched(m, partition))
            .filter_map(|m| {
                let lsn = self
                    .replicas
                    .get(&(m, partition))?
                    .engine
                    .as_ref()?
                    .wal_last_lsn()
                    .unwrap_or(0);
                Some((lsn, m))
            })
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, m)| m)
    }

    /// The engine that can answer *reads* for `user` right now: the live
    /// leader, else the best live unlatched follower.
    fn serving_engine(&self, user: &str) -> Result<&ServeEngine, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        if let Some(l) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) {
            return self.replica_engine(l, partition);
        }
        if let Some(f) = self.best_follower(partition) {
            return self.replica_engine(f, partition);
        }
        Err(ClusterError::PartitionUnavailable { partition })
    }

    /// The user's current model generation stamp.
    pub fn generation_of(&self, user: &str) -> Result<u64, ClusterError> {
        Ok(self.serving_engine(user)?.generation_of(user)?)
    }

    /// The cluster model the user was assigned to.
    pub fn cluster_of(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.cluster_of(user)?)
    }

    /// Good maps buffered for a user whose onboarding is still deferred.
    pub fn pending_maps(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.pending_maps(user))
    }

    /// The quorum-acknowledged LSN of `partition`: every record at or
    /// below it is durable on at least `write_quorum` followers.
    pub fn acked_of(&self, partition: usize) -> u64 {
        self.quorum_acked(partition)
    }

    /// Updates a follower's acked LSN (monotone).
    fn raise_follower_acked(&mut self, partition: usize, member: MemberId, lsn: u64) {
        if let Some(f) = self.partitions[partition]
            .followers
            .iter_mut()
            .find(|f| f.member == member)
        {
            f.acked = f.acked.max(lsn);
        }
    }

    /// Whether the user has an adopted personalized fork.
    pub fn is_personalized(&self, user: &str) -> Result<bool, ClusterError> {
        Ok(self.serving_engine(user)?.is_personalized(user))
    }

    /// Windows quarantined so far for the user.
    pub fn quarantined_count(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.quarantined_count(user))
    }

    fn mutable_leader(&self, partition: usize) -> Result<MemberId, ClusterError> {
        match self.partitions[partition].leader.filter(|&m| self.is_up(m)) {
            Some(m) => Ok(m),
            None => {
                clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
                Err(ClusterError::PartitionUnavailable { partition })
            }
        }
    }

    fn update_lag_gauge(&self) {
        let lag = (0..self.partitions.len())
            .map(|p| self.lag_of(p))
            .max()
            .unwrap_or(0);
        clear_obs::gauge_set(clear_obs::CLUSTER_FOLLOWER_LAG_GAUGE, lag as i64);
    }

    // ------------------------------------------------------------------
    // Serving API
    // ------------------------------------------------------------------

    /// Onboards a user on their partition's leader, then replicates.
    pub fn onboard(&mut self, user: &str, maps: &[FeatureMap]) -> Result<Onboarding, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self.replica_engine(leader, partition)?.onboard(user, maps)?;
        self.replicate(partition)?;
        Ok(out)
    }

    /// Serves predictions for a user. On a healthy partition this is the
    /// leader path (quarantine commits, then replicates). On a
    /// leaderless partition it degrades to *read-only* follower serving:
    /// identical bits, no state commits.
    pub fn predict(
        &mut self,
        user: &str,
        maps: &[FeatureMap],
    ) -> Result<Vec<Prediction>, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        if let Some(leader) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) {
            let out = self.replica_engine(leader, partition)?.predict(user, maps)?;
            self.replicate(partition)?;
            return Ok(out);
        }
        let Some(follower) = self.best_follower(partition) else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        clear_obs::counter_add(counters::CLUSTER_READONLY_SERVES, 1);
        Ok(self
            .replica_engine(follower, partition)?
            .predict_readonly(user, maps)?)
    }

    /// Personalizes a user on their partition's leader, then replicates
    /// the adopted delta (followers apply the logged weights — they
    /// never retrain).
    pub fn personalize(
        &mut self,
        user: &str,
        labeled: &[(FeatureMap, Emotion)],
        config: &TrainConfig,
    ) -> Result<PersonalizeOutcome, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self
            .replica_engine(leader, partition)?
            .personalize(user, labeled, config)?;
        self.replicate(partition)?;
        Ok(out)
    }

    /// Offboards a user on their partition's leader, then replicates.
    pub fn offboard(&mut self, user: &str) -> Result<bool, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self.replica_engine(leader, partition)?.offboard(user)?;
        self.replicate(partition)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// Advances the network one tick and processes every live member's
    /// inbox. Exposed so tests can drive partial delivery schedules.
    /// When [`ClusterConfig::scrub_every_ticks`] is set, this is also
    /// the clock of the automatic anti-entropy cadence.
    pub fn pump(&mut self) {
        self.net.tick();
        let live: Vec<MemberId> = self
            .members
            .iter()
            .filter(|(_, m)| m.up)
            .map(|(&id, _)| id)
            .collect();
        for member in live {
            for env in self.net.poll(member) {
                self.deliver(member, env);
            }
        }
        if self.config.scrub_every_ticks > 0 && !self.in_scrub && self.scrubs.is_empty() {
            self.ticks_since_scrub += 1;
            if self.ticks_since_scrub >= self.config.scrub_every_ticks
                && !self.partitions.is_empty()
            {
                self.ticks_since_scrub = 0;
                let partition = self.scrub_cursor % self.partitions.len();
                self.scrub_cursor = self.scrub_cursor.wrapping_add(1);
                // Best effort: a leaderless partition skips its turn.
                let _ = self.scrub(partition);
            }
        }
    }

    /// Handles one delivered envelope at `to`.
    fn deliver(&mut self, to: MemberId, env: Envelope) {
        match env.msg {
            Message::Ship { partition, records } => {
                if partition >= self.partitions.len()
                    || !self.partitions[partition]
                        .followers
                        .iter()
                        .any(|f| f.member == to)
                {
                    return; // stale traffic for a role this member no longer holds
                }
                let mut ack = None;
                if let Some(replica) = self.replicas.get_mut(&(to, partition)) {
                    if replica.latched {
                        ack = Some((0, true));
                    } else if let Some(engine) = replica.engine.as_ref() {
                        let before = engine.wal_last_lsn().unwrap_or(0);
                        match engine.import_records(&records) {
                            Ok(report) => {
                                let diverged = report.diverged.is_some();
                                if diverged {
                                    replica.latched = true;
                                    clear_obs::counter_add(
                                        counters::CLUSTER_FOLLOWER_DIVERGENCE,
                                        1,
                                    );
                                }
                                let applied = report.applied_through.max(before);
                                clear_obs::counter_add(
                                    counters::CLUSTER_FRAMES_ACKED,
                                    applied.saturating_sub(before),
                                );
                                ack = Some((applied, diverged));
                            }
                            Err(_) => {
                                replica.latched = true;
                                clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
                                ack = Some((0, true));
                            }
                        }
                    }
                }
                if let Some((applied_through, diverged)) = ack {
                    self.net.send(Envelope {
                        from: to,
                        to: env.from,
                        msg: Message::ShipAck {
                            partition,
                            applied_through,
                            diverged,
                        },
                    });
                }
            }
            Message::ShipAck {
                partition,
                applied_through,
                diverged,
            } => {
                if partition >= self.partitions.len()
                    || self.partitions[partition].leader != Some(to)
                    || !self.partitions[partition]
                        .followers
                        .iter()
                        .any(|f| f.member == env.from)
                {
                    return; // ack from a demoted or stale pairing
                }
                if diverged {
                    if let Some(r) = self.replicas.get_mut(&(env.from, partition)) {
                        r.latched = true;
                    }
                } else {
                    self.raise_follower_acked(partition, env.from, applied_through);
                }
            }
            Message::ScrubRequest { partition } => {
                if partition >= self.partitions.len()
                    || !self.partitions[partition]
                        .followers
                        .iter()
                        .any(|f| f.member == to)
                {
                    return; // stale probe for a role this member no longer holds
                }
                let Some(replica) = self.replicas.get(&(to, partition)) else {
                    return;
                };
                if replica.latched {
                    return; // latched followers stay silent; settle counts them
                }
                let Some(engine) = replica.engine.as_ref() else {
                    return;
                };
                let applied_through = engine.wal_last_lsn().unwrap_or(0);
                let Ok(fingerprints) = engine.user_fingerprints() else {
                    return;
                };
                self.net.send(Envelope {
                    from: to,
                    to: env.from,
                    msg: Message::ScrubReport {
                        partition,
                        applied_through,
                        fingerprints,
                    },
                });
            }
            Message::ScrubReport {
                partition,
                applied_through,
                fingerprints,
            } => {
                if partition >= self.partitions.len()
                    || self.partitions[partition].leader != Some(to)
                {
                    return;
                }
                if !self
                    .scrubs
                    .get(&partition)
                    .is_some_and(|s| s.outstanding.contains(&env.from))
                {
                    return; // no scrub in flight, or a duplicate report
                }
                let Ok(leader_engine) = self.replica_engine(to, partition) else {
                    return;
                };
                let leader_tip = leader_engine.wal_last_lsn().unwrap_or(0);
                // 0 = clean, 1 = stale (repairable), 2 = diverged.
                let verdict = if applied_through > leader_tip {
                    2 // ahead of its leader: impossible without divergence
                } else if applied_through < leader_tip {
                    1
                } else {
                    match leader_engine.user_fingerprints() {
                        Ok(mine) if mine == fingerprints => 0,
                        Ok(_) => 2, // same LSN, different state: silent rot
                        Err(_) => 1, // cannot compare; repair conservatively
                    }
                };
                let scrub = self.scrubs.get_mut(&partition).expect("checked above");
                scrub.outstanding.retain(|&m| m != env.from);
                match verdict {
                    0 => {
                        scrub.clean.push(env.from);
                        // A clean report doubles as an ack at the tip.
                        self.raise_follower_acked(partition, env.from, applied_through);
                    }
                    1 => scrub.stale.push(env.from),
                    _ => {
                        scrub.diverged.push(env.from);
                        if let Some(r) = self.replicas.get_mut(&(env.from, partition)) {
                            r.latched = true;
                        }
                        clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
                        clear_obs::counter_add(counters::CLUSTER_SCRUB_DIVERGENCE, 1);
                    }
                }
            }
        }
    }

    /// Ships the leader's WAL suffix past each lagging follower's acked
    /// LSN, with bounded retries and exponential backoff, until the
    /// write quorum has acknowledged the leader's tip. Every attempt
    /// ships to *every* live, unlatched, lagging follower — stragglers
    /// past the quorum keep receiving frames; only the wait is
    /// quorum-bounded. Replication lag is not an error here — mutations
    /// stay committed on the leader and [`ServeCluster::flush`] reports
    /// persistent lag as a typed timeout.
    fn replicate(&mut self, partition: usize) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterShip);
        let Some(leader) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) else {
            return Ok(());
        };
        let leader_last = self
            .replica_engine(leader, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        self.partitions[partition].leader_last = leader_last;
        let mut attempt: usize = 0;
        while self.quorum_acked(partition) < leader_last && attempt <= self.config.ship_retries {
            let lagging: Vec<(MemberId, u64)> = self.partitions[partition]
                .followers
                .iter()
                .filter(|f| {
                    f.acked < leader_last
                        && self.is_up(f.member)
                        && !self.is_latched(f.member, partition)
                })
                .map(|f| (f.member, f.acked))
                .collect();
            if lagging.is_empty() {
                break; // nobody left who could make progress
            }
            let mut shipped = false;
            for &(follower, acked) in &lagging {
                let records = self
                    .replica_engine(leader, partition)?
                    .export_records_after(acked)?;
                if records.first().is_some_and(|r| r.lsn > acked + 1) {
                    // The follower is behind the leader's snapshot
                    // horizon; record shipping cannot bridge that, so
                    // transfer a snapshot out of band and resume
                    // shipping from there.
                    let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
                    self.rebuild_replica_from_snapshot(follower, partition, &snap)?;
                    self.raise_follower_acked(partition, follower, snap.last_lsn);
                    continue;
                }
                if records.is_empty() {
                    continue;
                }
                clear_obs::counter_add(counters::CLUSTER_FRAMES_SHIPPED, records.len() as u64);
                if attempt > 0 {
                    clear_obs::counter_add(counters::CLUSTER_FRAMES_RETRIED, records.len() as u64);
                }
                self.net.send(Envelope {
                    from: leader,
                    to: follower,
                    msg: Message::Ship { partition, records },
                });
                shipped = true;
            }
            if shipped {
                if attempt > 0 {
                    self.partitions[partition].retries += 1;
                }
                let budget = self
                    .config
                    .ship_timeout_ticks
                    .saturating_mul(1u64 << attempt.min(4))
                    .max(1);
                for _ in 0..budget {
                    self.pump();
                    if self.quorum_acked(partition) >= leader_last {
                        break;
                    }
                }
            }
            attempt += 1;
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// The first latched follower of a partition, if any.
    fn latched_follower(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .find(|&m| self.is_latched(m, partition))
    }

    /// Drives every healthy partition's replication until its write
    /// quorum has acknowledged the leader's WAL tip.
    ///
    /// # Errors
    ///
    /// [`ClusterError::FollowerDiverged`] for a latched follower,
    /// [`ClusterError::QuorumLost`] when fewer live, unlatched followers
    /// remain than the write quorum (structural — retrying cannot help),
    /// [`ClusterError::ReplicationTimeout`] when retries and backoff
    /// could not collect the quorum's acks (e.g. links are partitioned).
    pub fn flush(&mut self) -> Result<(), ClusterError> {
        for partition in 0..self.partitions.len() {
            if self.partitions[partition]
                .leader
                .filter(|&m| self.is_up(m))
                .is_none()
            {
                continue;
            }
            if let Some(member) = self.latched_follower(partition) {
                return Err(ClusterError::FollowerDiverged { partition, member });
            }
            let needed = self.effective_quorum();
            let survivors = self.partitions[partition]
                .followers
                .iter()
                .filter(|f| self.is_up(f.member) && !self.is_latched(f.member, partition))
                .count();
            if survivors < needed {
                clear_obs::counter_add(counters::CLUSTER_QUORUM_LOST, 1);
                return Err(ClusterError::QuorumLost {
                    partition,
                    survivors,
                    needed,
                });
            }
            self.replicate(partition)?;
            if let Some(member) = self.latched_follower(partition) {
                return Err(ClusterError::FollowerDiverged { partition, member });
            }
            let lag = self.lag_of(partition);
            if lag > 0 {
                return Err(ClusterError::ReplicationTimeout { partition, lag });
            }
        }
        Ok(())
    }

    /// Snapshots every leader whose live, unlatched followers are all
    /// fully caught up (or absent), truncating its WAL. Lagging
    /// partitions are skipped: truncating unshipped records would force
    /// a snapshot transfer later for no reason. The gate is every
    /// follower, not just the quorum — a straggler past the quorum still
    /// deserves cheap record shipping.
    pub fn checkpoint(&self) -> Result<(), ClusterError> {
        for partition in 0..self.partitions.len() {
            let st = &self.partitions[partition];
            let Some(leader) = st.leader.filter(|&m| self.is_up(m)) else {
                continue;
            };
            let engine = self.replica_engine(leader, partition)?;
            let last = engine.wal_last_lsn().unwrap_or(0);
            let lagging = st.followers.iter().any(|f| {
                self.is_up(f.member) && !self.is_latched(f.member, partition) && f.acked < last
            });
            if lagging {
                continue;
            }
            engine.snapshot()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Membership and failure handling
    // ------------------------------------------------------------------

    /// Rebuilds `(member, partition)` from a snapshot: fresh or reused
    /// disk, snapshot published, WAL restarted at the snapshot horizon,
    /// latch cleared.
    fn rebuild_replica_from_snapshot(
        &mut self,
        member: MemberId,
        partition: usize,
        snap: &EngineSnapshot,
    ) -> Result<(), ClusterError> {
        let replica = self
            .replicas
            .entry((member, partition))
            .or_insert_with(|| Replica {
                storage: Arc::new(MemStorage::new()),
                engine: None,
                latched: false,
            });
        // Drop the old engine before rebuilding over its storage.
        replica.engine = None;
        let storage = Arc::clone(&replica.storage) as Arc<dyn Storage>;
        let engine = ServeEngine::from_snapshot(
            storage,
            snap,
            self.bundle.clone(),
            self.policy,
            self.config.engine,
            DurableConfig {
                snapshot_every_ops: 0,
            },
        )?;
        replica.engine = Some(engine);
        replica.latched = false;
        Ok(())
    }

    /// Catches `member`'s replica up to everything on `storage` (a dead
    /// leader's surviving disk): snapshot transfer when the replica is
    /// behind the snapshot horizon, then WAL-suffix import. Replay
    /// applies logged results — nothing retrains.
    fn catch_up_from_storage(
        &mut self,
        member: MemberId,
        partition: usize,
        storage: &dyn Storage,
    ) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterCatchUp);
        let snap = EngineSnapshot::load(storage)?;
        let horizon = snap.as_ref().map_or(0, |s| s.last_lsn);
        let applied = self
            .replica_engine(member, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        if applied < horizon {
            let snap = snap.expect("positive horizon implies a snapshot");
            self.rebuild_replica_from_snapshot(member, partition, &snap)?;
        }
        let applied = self
            .replica_engine(member, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        let suffix: Vec<WalRecord> = read_records(storage)?
            .into_iter()
            .filter(|r| r.lsn > applied)
            .collect();
        if !suffix.is_empty() {
            let report = self
                .replica_engine(member, partition)?
                .import_records(&suffix)?;
            if report.gap_at.is_some() || report.diverged.is_some() {
                if let Some(r) = self.replicas.get_mut(&(member, partition)) {
                    r.latched = true;
                }
                clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
                return Err(ClusterError::FollowerDiverged { partition, member });
            }
        }
        Ok(())
    }

    /// Recruits followers for a partition until it has
    /// [`ReplicationConfig::replicas`] of them (or candidates run out),
    /// preferring ring placement, then any other live member, each
    /// seeded by snapshot transfer from the live leader. Entries for
    /// dead members (or the leader itself) are dropped first; surviving
    /// followers keep their acked LSNs. Too few candidates is not an
    /// error — the partition simply runs under-replicated and `flush`
    /// reports the quorum shortfall.
    fn fill_followers(&mut self, partition: usize) -> Result<(), ClusterError> {
        let Some(leader) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) else {
            self.update_lag_gauge();
            return Ok(());
        };
        let keep: Vec<FollowerState> = self.partitions[partition]
            .followers
            .iter()
            .filter(|f| f.member != leader && self.is_up(f.member))
            .copied()
            .collect();
        self.partitions[partition].followers = keep;
        let want = self.config.replication.replicas;
        let have: Vec<MemberId> = self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .collect();
        if have.len() >= want {
            self.update_lag_gauge();
            return Ok(());
        }
        let mut candidates: Vec<MemberId> = self
            .partitioner
            .followers_of(partition, want)
            .into_iter()
            .filter(|&m| m != leader && self.is_up(m) && !have.contains(&m))
            .collect();
        for (&m, state) in self.members.iter() {
            if state.up && m != leader && !have.contains(&m) && !candidates.contains(&m) {
                candidates.push(m);
            }
        }
        candidates.truncate(want - have.len());
        if candidates.is_empty() {
            self.update_lag_gauge();
            return Ok(());
        }
        let _span = clear_obs::span(clear_obs::Stage::ClusterCatchUp);
        let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
        for member in candidates {
            self.rebuild_replica_from_snapshot(member, partition, &snap)?;
            self.partitions[partition].followers.push(FollowerState {
                member,
                acked: snap.last_lsn,
            });
        }
        self.partitions[partition].leader_last = self
            .replica_engine(leader, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        self.update_lag_gauge();
        Ok(())
    }

    /// Promotes the best follower of a partition whose leader just died
    /// with its disk intact: the live, unlatched follower with the
    /// highest durable LSN catches up from that disk (snapshot + WAL
    /// suffix) and is promoted; surviving followers stay on, and
    /// replacements are recruited. A candidate that diverges during
    /// catch-up is latched and the next best is tried.
    fn failover(&mut self, partition: usize) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
        let Some(dead) = self.partitions[partition].leader else {
            return Ok(());
        };
        let storage = self
            .replicas
            .get(&(dead, partition))
            .map(|r| Arc::clone(&r.storage));
        let mut last_err = None;
        while let Some(next) = self.best_follower(partition) {
            if let Some(storage) = storage.as_ref() {
                if let Err(e) = self.catch_up_from_storage(next, partition, storage.as_ref()) {
                    // catch_up latched the candidate; try the next best.
                    last_err = Some(e);
                    continue;
                }
            }
            clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
            let last = self
                .replica_engine(next, partition)?
                .wal_last_lsn()
                .unwrap_or(0);
            // The dead leader's replica served its purpose; a restarted
            // member comes back as a freshly seeded follower instead.
            self.replicas.remove(&(dead, partition));
            {
                let st = &mut self.partitions[partition];
                st.leader = Some(next);
                st.followers
                    .retain(|f| f.member != next && f.member != dead);
                st.leader_last = last;
            }
            return self.fill_followers(partition);
        }
        // No viable follower. The dead leader keeps the role on the
        // books (its disk survives), so restart_member can resume it;
        // until then the partition rejects mutations.
        self.update_lag_gauge();
        match last_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// A member process crashes; its disk survives. Partitions it led
    /// fail over (the highest-LSN follower catches up from the surviving
    /// disk before promotion); partitions it followed get replacement
    /// followers.
    pub fn kill_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: false });
        // The process is gone: engines vanish, disks stay.
        for ((m, _), replica) in self.replicas.iter_mut() {
            if *m == member {
                replica.engine = None;
            }
        }
        for partition in 0..self.partitions.len() {
            if self.partitions[partition].leader == Some(member) {
                self.failover(partition)?;
            } else if self.partitions[partition]
                .followers
                .iter()
                .any(|f| f.member == member)
            {
                self.partitions[partition]
                    .followers
                    .retain(|f| f.member != member);
                self.fill_followers(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// A member is lost *with its disk*. Partitions it led promote a
    /// follower only when one is fully acknowledged (the highest-LSN
    /// such follower wins) — otherwise acknowledged writes would
    /// silently disappear — and degrade to leaderless read-only serving
    /// until [`ServeCluster::force_promote`].
    pub fn destroy_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: false });
        self.replicas.retain(|&(m, _), _| m != member);
        for partition in 0..self.partitions.len() {
            let led = self.partitions[partition].leader == Some(member);
            let followed = self.partitions[partition]
                .followers
                .iter()
                .any(|f| f.member == member);
            if led {
                let tip = self.partitions[partition].leader_last;
                // Fully acked, live, unlatched; highest durable LSN wins.
                let next = self.partitions[partition]
                    .followers
                    .iter()
                    .filter(|f| f.member != member && f.acked >= tip)
                    .map(|f| f.member)
                    .filter(|&m| self.is_up(m) && !self.is_latched(m, partition))
                    .filter_map(|m| {
                        let lsn = self
                            .replicas
                            .get(&(m, partition))?
                            .engine
                            .as_ref()?
                            .wal_last_lsn()
                            .unwrap_or(0);
                        Some((lsn, m))
                    })
                    .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                    .map(|(_, m)| m);
                if let Some(next) = next {
                    let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
                    clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
                    let last = self
                        .replica_engine(next, partition)?
                        .wal_last_lsn()
                        .unwrap_or(0);
                    {
                        let st = &mut self.partitions[partition];
                        st.leader = Some(next);
                        st.followers
                            .retain(|f| f.member != next && f.member != member);
                        st.leader_last = last;
                    }
                    self.fill_followers(partition)?;
                } else {
                    let st = &mut self.partitions[partition];
                    st.leader = None;
                    st.followers.retain(|f| f.member != member);
                }
            } else if followed {
                self.partitions[partition]
                    .followers
                    .retain(|f| f.member != member);
                self.fill_followers(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Promotes the best surviving follower of a leaderless partition,
    /// accepting the loss of whatever the destroyed leader had not
    /// replicated. An explicit operator decision, never automatic.
    pub fn force_promote(&mut self, partition: usize) -> Result<(), ClusterError> {
        if self.partitions[partition].leader.is_some() {
            return Ok(());
        }
        let Some(next) = self.best_follower(partition) else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
        clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
        let last = self
            .replica_engine(next, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        {
            let st = &mut self.partitions[partition];
            st.leader = Some(next);
            st.followers.retain(|f| f.member != next);
            st.leader_last = last;
        }
        self.fill_followers(partition)
    }

    /// Restarts a crashed member: recovers every surviving replica from
    /// its disk (snapshot seed + WAL replay — zero retraining), resumes
    /// leadership of partitions it still holds, and fills follower
    /// vacancies.
    pub fn restart_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: true });
        let mine: Vec<usize> = self
            .replicas
            .keys()
            .filter(|&&(m, _)| m == member)
            .map(|&(_, p)| p)
            .collect();
        for partition in mine {
            let storage = {
                let replica = self
                    .replicas
                    .get_mut(&(member, partition))
                    .expect("listed above");
                if replica.engine.is_some() {
                    continue;
                }
                Arc::clone(&replica.storage)
            };
            let engine = ServeEngine::recover_with(
                storage as Arc<dyn Storage>,
                self.bundle.clone(),
                self.policy,
                self.config.engine,
                DurableConfig {
                    snapshot_every_ops: 0,
                },
            )?;
            if let Some(replica) = self.replicas.get_mut(&(member, partition)) {
                replica.engine = Some(engine);
                replica.latched = false;
            }
            if self.partitions[partition].leader == Some(member) {
                // Resume leadership from our own disk; any surviving
                // follower may be stale, so reseed the whole set from us.
                let last = self
                    .replica_engine(member, partition)?
                    .wal_last_lsn()
                    .unwrap_or(0);
                {
                    let st = &mut self.partitions[partition];
                    st.leader_last = last;
                    st.followers.clear();
                }
                self.fill_followers(partition)?;
            }
        }
        for partition in 0..self.partitions.len() {
            let st = &self.partitions[partition];
            if st.followers.len() < self.config.replication.replicas
                && st.leader.is_some_and(|l| self.is_up(l) && l != member)
            {
                self.fill_followers(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Moves a partition's leadership to `to` via snapshot transfer. The
    /// outgoing leader stays as the (trivially caught-up) follower, so
    /// the partition keeps a replica throughout the move.
    pub fn migrate_partition(
        &mut self,
        partition: usize,
        to: MemberId,
    ) -> Result<(), ClusterError> {
        self.require_member(to)?;
        if !self.is_up(to) {
            return Err(ClusterError::MemberDown(to));
        }
        let Some(from) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        if from == to {
            return Ok(());
        }
        let old_followers: Vec<MemberId> = self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .collect();
        let snap = self.replica_engine(from, partition)?.export_snapshot()?;
        self.rebuild_replica_from_snapshot(to, partition, &snap)?;
        for f in old_followers {
            if f != to && f != from {
                self.replicas.remove(&(f, partition));
            }
        }
        {
            let st = &mut self.partitions[partition];
            st.leader = Some(to);
            // The outgoing leader is trivially caught up; further
            // vacancies are filled from the ring below.
            st.followers = vec![FollowerState {
                member: from,
                acked: snap.last_lsn,
            }];
            st.leader_last = snap.last_lsn;
        }
        clear_obs::counter_add(counters::CLUSTER_MIGRATIONS, 1);
        self.fill_followers(partition)?;
        self.update_lag_gauge();
        Ok(())
    }

    /// Adds a brand-new member (or restarts a known one). Consistent
    /// hashing keeps movement minimal: only partitions whose ring owner
    /// became the new member migrate to it; everything else stays put.
    pub fn add_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        if self.members.contains_key(&member) {
            return self.restart_member(member);
        }
        self.members.insert(member, Member { up: true });
        self.partitioner.add_member(member);
        for partition in 0..self.partitions.len() {
            if self.partitioner.leader_of(partition) == Some(member) {
                let current = self.partitions[partition].leader.filter(|&m| self.is_up(m));
                if current.is_some_and(|m| m != member) {
                    self.migrate_partition(partition, member)?;
                }
            } else if self.partitions[partition].followers.len()
                < self.config.replication.replicas
            {
                self.fill_followers(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Removes every latched follower (or, when none is latched, the
    /// entire follower set) and seeds fresh replacements from the live
    /// leader — the recovery path after a divergence latch. Each fresh
    /// follower's per-user fingerprints are verified against the leader
    /// after seeding; a mismatch is retried with one more snapshot
    /// transfer, and a second mismatch latches the replica and returns
    /// [`ClusterError::ReseedVerificationFailed`].
    pub fn reseed_follower(&mut self, partition: usize) -> Result<(), ClusterError> {
        let latched: Vec<MemberId> = self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .filter(|&m| self.is_latched(m, partition))
            .collect();
        let doomed: Vec<MemberId> = if latched.is_empty() {
            self.partitions[partition]
                .followers
                .iter()
                .map(|f| f.member)
                .collect()
        } else {
            latched
        };
        for m in &doomed {
            self.replicas.remove(&(*m, partition));
        }
        self.partitions[partition]
            .followers
            .retain(|f| !doomed.contains(&f.member));
        let before: Vec<MemberId> = self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .collect();
        self.fill_followers(partition)?;
        let fresh: Vec<MemberId> = self.partitions[partition]
            .followers
            .iter()
            .map(|f| f.member)
            .filter(|m| !before.contains(m))
            .collect();
        for member in fresh {
            self.verify_reseeded(partition, member)?;
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Compares a freshly seeded follower's per-user fingerprints against
    /// the leader's; retries the snapshot transfer once on mismatch, and
    /// latches the replica with a typed error if it still disagrees.
    fn verify_reseeded(
        &mut self,
        partition: usize,
        member: MemberId,
    ) -> Result<(), ClusterError> {
        let Some(leader) = self.partitions[partition].leader.filter(|&l| self.is_up(l))
        else {
            return Ok(());
        };
        let want = self.replica_engine(leader, partition)?.user_fingerprints()?;
        let got = self.replica_engine(member, partition)?.user_fingerprints()?;
        if got == want {
            return Ok(());
        }
        // One more snapshot transfer, then re-verify.
        let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
        self.rebuild_replica_from_snapshot(member, partition, &snap)?;
        self.raise_follower_acked(partition, member, snap.last_lsn);
        let want = self.replica_engine(leader, partition)?.user_fingerprints()?;
        let got = self.replica_engine(member, partition)?.user_fingerprints()?;
        if got == want {
            return Ok(());
        }
        if let Some(replica) = self.replicas.get_mut(&(member, partition)) {
            replica.latched = true;
        }
        clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
        Err(ClusterError::ReseedVerificationFailed { partition, member })
    }

    /// Starts an anti-entropy scrub of `partition`: the live leader
    /// sends a [`Message::ScrubRequest`] to every live, unlatched
    /// follower; already-latched followers are recorded as diverged
    /// immediately. Reports flow back through [`ServeCluster::pump`];
    /// [`ServeCluster::scrub_settle`] classifies and repairs. Exposed
    /// separately from [`ServeCluster::scrub`] so crash tests can kill
    /// members at every message boundary of the exchange.
    pub fn scrub_begin(&mut self, partition: usize) -> Result<(), ClusterError> {
        let leader = self.mutable_leader(partition)?;
        let mut outstanding = Vec::new();
        let mut diverged = Vec::new();
        for f in &self.partitions[partition].followers {
            if self.is_latched(f.member, partition) {
                diverged.push(f.member);
            } else if self.is_up(f.member) {
                outstanding.push(f.member);
            }
        }
        self.scrubs.insert(
            partition,
            ScrubState {
                outstanding: outstanding.clone(),
                stale: Vec::new(),
                diverged,
                clean: Vec::new(),
            },
        );
        for member in outstanding {
            self.net.send(Envelope {
                from: leader,
                to: member,
                msg: Message::ScrubRequest { partition },
            });
        }
        Ok(())
    }

    /// Settles an in-flight scrub of `partition`: repairs every stale
    /// follower by snapshot transfer from the live leader and reports
    /// the classification. Followers whose reports never arrived are
    /// returned as unresponsive, untouched. Idempotent — settling a
    /// partition with no scrub in flight returns an empty outcome.
    pub fn scrub_settle(&mut self, partition: usize) -> Result<ScrubOutcome, ClusterError> {
        let Some(state) = self.scrubs.remove(&partition) else {
            return Ok(ScrubOutcome {
                partition,
                clean: Vec::new(),
                repaired: Vec::new(),
                diverged: Vec::new(),
                unresponsive: Vec::new(),
            });
        };
        // Repair only followers still assigned, live and unlatched — a
        // failover or kill between begin and settle may have moved them.
        let stale: Vec<MemberId> = state
            .stale
            .iter()
            .copied()
            .filter(|&m| {
                self.partitions[partition]
                    .followers
                    .iter()
                    .any(|f| f.member == m)
                    && self.is_up(m)
                    && !self.is_latched(m, partition)
            })
            .collect();
        let mut repaired = Vec::new();
        let live_leader = self.partitions[partition].leader.filter(|&l| self.is_up(l));
        if let Some(leader) = live_leader {
            if !stale.is_empty() {
                let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
                for member in stale {
                    self.rebuild_replica_from_snapshot(member, partition, &snap)?;
                    self.raise_follower_acked(partition, member, snap.last_lsn);
                    clear_obs::counter_add(counters::CLUSTER_SCRUB_REPAIRS, 1);
                    repaired.push(member);
                }
            }
        }
        clear_obs::counter_add(counters::CLUSTER_SCRUBS, 1);
        self.update_lag_gauge();
        Ok(ScrubOutcome {
            partition,
            clean: state.clean,
            repaired,
            diverged: state.diverged,
            unresponsive: state.outstanding,
        })
    }

    /// One full anti-entropy scrub of `partition`: requests per-user
    /// state fingerprints from every live follower, pumps the transport
    /// until every report arrives (bounded by the ship timeout), then
    /// classifies and repairs. Stale followers are repaired by snapshot
    /// transfer; silently diverged ones are latched (recover via
    /// [`ServeCluster::reseed_follower`]).
    pub fn scrub(&mut self, partition: usize) -> Result<ScrubOutcome, ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterScrub);
        let was = self.in_scrub;
        self.in_scrub = true;
        let result = self.scrub_inner(partition);
        self.in_scrub = was;
        result
    }

    fn scrub_inner(&mut self, partition: usize) -> Result<ScrubOutcome, ClusterError> {
        self.scrub_begin(partition)?;
        let budget = self.config.ship_timeout_ticks.saturating_mul(4).max(4);
        for _ in 0..budget {
            if self
                .scrubs
                .get(&partition)
                .map_or(true, |s| s.outstanding.is_empty())
            {
                break;
            }
            self.pump();
        }
        self.scrub_settle(partition)
    }
}
