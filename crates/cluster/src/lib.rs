//! # clear-cluster — partitioned, replicated serving
//!
//! A single [`clear_serve::ServeEngine`] scales CLEAR to a population on
//! one process; this crate scales it to a *fleet* and makes it survive
//! the failures a fleet has: crashed members, lost disks, and a network
//! that drops, duplicates, delays and partitions traffic.
//!
//! * [`ServeCluster`] — partitions users across member engines by
//!   consistent hash ([`Partitioner`]: stable user→partition mapping,
//!   ring-placed partition→member leadership with minimal movement on
//!   membership change);
//! * **quorum WAL shipping** — every partition's leader replicates by
//!   sending its write-ahead-log suffix to `R` follower engines
//!   ([`ReplicationConfig`]), each of which replays the logged *results*
//!   (assigned clusters, adopted weight deltas) — so a follower is
//!   bit-identical at every acknowledged LSN and replication never
//!   retrains anything, preserving the paper's zero-retraining
//!   cold-start economics across the fleet. [`ServeCluster::flush`]
//!   returns once `write_quorum` followers acknowledge, and reports a
//!   typed [`ClusterError::QuorumLost`] when fewer survive;
//! * [`SimNet`] — all member traffic flows through a deterministic,
//!   seeded, tick-based network simulator with injectable loss,
//!   duplication, delay, reordering and link partitions, so the
//!   fault-matrix tests can demand *bit-identical* convergence under
//!   hostile schedules, not just eventual convergence;
//! * **failover** — when a leader crashes, the follower with the highest
//!   durable LSN catches up from the surviving disk (snapshot transfer +
//!   LSN-suffix replay) and is promoted; a destroyed leader (disk lost)
//!   promotes only a fully-acknowledged follower, otherwise the
//!   partition degrades to typed-error mutations and read-only follower
//!   serving;
//! * **anti-entropy scrubbing** — [`ServeCluster::scrub`] exchanges
//!   per-user sealed-envelope fingerprints between leader and followers,
//!   repairing stale followers by snapshot transfer and latching
//!   silently diverged ones ([`ScrubOutcome`]);
//! * **divergence quarantine** — a follower that receives a frame
//!   contradicting its own state (or fails a scrub fingerprint check)
//!   latches itself out of replication until explicitly reseeded from a
//!   leader snapshot, and the reseed itself is fingerprint-verified
//!   ([`ClusterError::ReseedVerificationFailed`] on a second mismatch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Identifier of a cluster member (one serving process).
pub type MemberId = usize;

mod cluster;
pub mod net;
pub mod ring;

pub use cluster::{
    ClusterConfig, ClusterError, ReplicationConfig, ScrubOutcome, ServeCluster,
};
pub use net::{Envelope, FaultProfile, Message, SimNet, Transport};
pub use ring::{hash_key, HashRing, Partitioner};
