//! Ablation: end-to-end accuracy as a function of the cluster count K.
//!
//! The paper selects K = 4 from internal clustering indices (§IV-A). This
//! ablation asks the harder question the paper leaves implicit: does K = 4
//! also maximize *downstream classification accuracy*? For each K we run
//! the CL-validation protocol (intra-cluster LOSO) and report accuracy —
//! small K under-personalizes (approaching the General model), large K
//! starves each cluster of training data.

use clear_bench::config_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::evaluation::cl_validation;

fn main() {
    let base = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&base);
    let max_k = 6.min(data.subject_ids().len() / 2);

    println!("ABLATION — cluster count K (intra-cluster LOSO accuracy)\n");
    println!(
        "{:>3} {:>12} {:>10} {:>12} {:>10}",
        "K", "CL acc %", "CL std", "RT CL acc %", "RT std"
    );
    for k in 2..=max_k {
        let mut config = base.clone();
        config.k = k;
        config.refine.kmeans.k = k;
        let result = cl_validation(&data, &config);
        println!(
            "{:>3} {:>12.2} {:>10.2} {:>12.2} {:>10.2}",
            k,
            result.cl.accuracy_mean,
            result.cl.accuracy_std,
            result.rt.accuracy_mean,
            result.rt.accuracy_std
        );
        eprintln!("K = {k} done");
    }
    println!("\npaper's operating point: K = 4 (clusters of 17/13/7/7 volunteers)");
}
