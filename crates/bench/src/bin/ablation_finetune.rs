//! Ablation X3: fine-tuning label-budget sweep.
//!
//! The paper fixes the fine-tuning budget at 20 % of the new user's data.
//! This ablation sweeps the labeled fraction (5–50 %) over a set of
//! left-out volunteers and reports accuracy before and after fine-tuning,
//! quantifying the label-efficiency claim ("minimal labeled data
//! significantly improves accuracy").

use clear_bench::config_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::pipeline::CloudTraining;
use clear_nn::train;
use clear_sim::SubjectId;

fn main() {
    let config = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    // A handful of folds is enough for the sweep's shape.
    let folds: Vec<SubjectId> = subjects.iter().copied().take(8).collect();
    let fractions = [0.05f32, 0.10, 0.20, 0.35, 0.50];

    println!(
        "ABLATION — fine-tuning label budget ({} folds)\n",
        folds.len()
    );
    println!(
        "{:>10} {:>14} {:>14}",
        "labeled %", "acc w/o FT %", "acc w/ FT %"
    );

    for &fraction in &fractions {
        let mut acc_before = 0.0f32;
        let mut acc_after = 0.0f32;
        for (i, &vx) in folds.iter().enumerate() {
            let initial: Vec<SubjectId> = subjects.iter().copied().filter(|&s| s != vx).collect();
            let mut cfg = config.clone();
            cfg.seed = config.seed.wrapping_add(i as u64);
            let cloud = CloudTraining::fit(&data, &initial, &cfg);

            let indices = data.indices_of(vx);
            let ca_n = ((indices.len() as f32 * cfg.ca_fraction).ceil() as usize).max(1);
            let assigned = cloud.assign_user(&data, &indices[..ca_n]);
            let rest = &indices[ca_n..];
            let ft_n = ((rest.len() as f32 * fraction).ceil() as usize)
                .clamp(1, rest.len().saturating_sub(1));
            let ft_idx = &rest[..ft_n];
            let test_idx = &rest[ft_n..];

            acc_before += cloud.evaluate(&data, assigned, test_idx).accuracy;
            let ft_ds = cloud.user_dataset(&data, ft_idx);
            let test_ds = cloud.user_dataset(&data, test_idx);
            let personalized = cloud.fine_tune(assigned, &ft_ds, &cfg.finetune);
            acc_after += train::evaluate(&personalized, &test_ds).accuracy;
            eprint!(
                "\rfraction {:.0}%: fold {}/{}   ",
                fraction * 100.0,
                i + 1,
                folds.len()
            );
        }
        eprintln!();
        let n = folds.len() as f32;
        println!(
            "{:>9.0}% {:>13.1}% {:>13.1}%",
            fraction * 100.0,
            acc_before / n * 100.0,
            acc_after / n * 100.0
        );
    }
    println!("\npaper's operating point: 20 % labeled (Table I: 80.63 -> 86.34)");
}
