//! Shared fixture for the cluster suites: one cloud training run (quick
//! profile) whose bundle every test reuses, plus cluster builders, a
//! scripted workload and a bit-exact fingerprint helper.

#![allow(dead_code)] // each test binary uses a different helper subset

use clear_cluster::{
    ClusterConfig, ClusterError, FaultProfile, MemberId, ReplicationConfig, ServeCluster,
    SimNet,
};
use clear_core::config::ClearConfig;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, ClearBundle, Prediction, ServingPolicy};
use clear_features::{FeatureMap, FEATURE_COUNT};
use clear_serve::EngineConfig;
use clear_sim::Emotion;
use std::sync::OnceLock;

pub struct Fixture {
    pub config: ClearConfig,
    pub data: PreparedCohort,
    pub bundle: ClearBundle,
}

/// The shared cloud artifact: trained once per test binary on all but
/// the last subject of the quick cohort.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = ClearConfig::quick(17);
        // One-epoch fine-tuning keeps the personalization calls cheap;
        // the tests compare behavior, not accuracy.
        config.finetune.epochs = 1;
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (_, initial) = subjects.split_last().expect("cohort is non-empty");
        let dep = deploy(&data, initial, &config);
        let bundle = dep.bundle().clone();
        Fixture {
            config,
            data,
            bundle,
        }
    })
}

/// Deterministic labels (no confidence abstention) and a 3-map
/// onboarding floor so the deferred/buffer path is exercised.
pub fn cluster_policy() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        min_onboarding_maps: 3,
        ..ServingPolicy::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        cache_capacity: 2,
        max_queue_depth: 16,
        ..EngineConfig::default()
    }
}

/// Cluster knobs for the suites: few partitions (fast), generous retry
/// budget (hostile profiles must converge, not flake), two followers
/// with a single-ack write quorum — the issue's reference topology.
pub fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        partitions: 4,
        vnodes: 32,
        engine: engine_config(),
        ship_retries: 6,
        ship_timeout_ticks: 8,
        replication: ReplicationConfig {
            replicas: 2,
            write_quorum: 1,
        },
        scrub_every_ticks: 0,
    }
}

/// A three-member cluster over a seeded simulated network.
pub fn build_cluster(members: &[MemberId], profile: FaultProfile, seed: u64) -> ServeCluster {
    build_cluster_with(members, profile, seed, cluster_config())
}

/// [`build_cluster`] with explicit cluster knobs (scrub cadence,
/// replication factor) for suites that deviate from the reference
/// topology.
pub fn build_cluster_with(
    members: &[MemberId],
    profile: FaultProfile,
    seed: u64,
    config: ClusterConfig,
) -> ServeCluster {
    let f = fixture();
    ServeCluster::new(
        f.bundle.clone(),
        cluster_policy(),
        members,
        config,
        Box::new(SimNet::new(seed, profile)),
    )
    .expect("cluster builds")
}

/// Users the script touches, in fingerprint order.
pub const USERS: [&str; 5] = ["amy", "bob", "cal", "dee", "eli"];

/// One scripted cluster operation.
#[derive(Debug, Clone, Copy)]
pub enum ScriptOp {
    /// Onboard `user` with maps `[lo, hi)` of the subject at `rank`.
    Onboard(&'static str, usize, usize, usize),
    /// Serve `user` one all-NaN map — the quarantine path.
    PredictNan(&'static str),
    /// Personalize `user` from labels `[lo, hi)` of the subject at
    /// `rank` (tiny budget: adopts unvalidated, deterministically).
    Personalize(&'static str, usize, usize, usize),
    /// Offboard `user`.
    Offboard(&'static str),
}

/// A workload touching every durable op type across several partitions:
/// a deferred onboard (BufferMaps), assigned onboards, a quarantine, an
/// adoption, an offboard.
pub const SCRIPT: [ScriptOp; 9] = [
    ScriptOp::Onboard("amy", 0, 0, 2),
    ScriptOp::Onboard("amy", 0, 2, 5),
    ScriptOp::Onboard("bob", 1, 0, 3),
    ScriptOp::Onboard("cal", 2, 0, 3),
    ScriptOp::PredictNan("amy"),
    ScriptOp::Personalize("bob", 1, 0, 2),
    ScriptOp::Onboard("dee", 3, 0, 3),
    ScriptOp::Offboard("cal"),
    ScriptOp::Onboard("eli", 4, 0, 3),
];

/// Applies one op to the cluster.
pub fn apply(c: &mut ServeCluster, f: &Fixture, op: ScriptOp) -> Result<(), ClusterError> {
    match op {
        ScriptOp::Onboard(user, rank, lo, hi) => {
            c.onboard(user, &maps_of(f, rank, lo, hi)).map(|_| ())
        }
        ScriptOp::PredictNan(user) => c.predict(user, &[nan_map(f)]).map(|_| ()),
        ScriptOp::Personalize(user, rank, lo, hi) => c
            .personalize(user, &labeled_of(f, rank, lo, hi), &f.config.finetune)
            .map(|_| ()),
        ScriptOp::Offboard(user) => c.offboard(user).map(|_| ()),
    }
}

/// Runs the whole script; every op must be acknowledged (replication lag
/// is not an error — `flush` settles it later).
pub fn run_script(c: &mut ServeCluster, f: &Fixture) {
    for op in SCRIPT {
        apply(c, f, op).expect("scripted op is acknowledged");
    }
}

/// Drives replication to completion; hostile networks may need several
/// rounds of retries. A lost write quorum is *structural* — retrying
/// cannot recruit followers that no longer exist — so it counts as
/// settled here; tests that care assert on `flush` directly.
pub fn settle(c: &mut ServeCluster) {
    for _ in 0..20 {
        match c.flush() {
            Ok(()) => return,
            Err(ClusterError::QuorumLost { .. }) => return,
            Err(_) => {}
        }
    }
    c.flush().expect("replication settles within the retry budget");
}

/// Bit-exact comparable form of one prediction.
pub fn prediction_key(p: &Prediction) -> String {
    format!(
        "{:?}|{}|{}|{:?}|{:?}",
        p.emotion,
        p.confidence.to_bits(),
        p.quality.to_bits(),
        p.served_by,
        p.imputed
    )
}

/// Bit-exact observable state of the cluster: per scripted user, the
/// registry view (assigned cluster, personalization, quarantine count,
/// pending maps, generation) plus serving bits on clean probe maps
/// (clean maps never quarantine, so probing mutates nothing).
pub fn fingerprint(c: &mut ServeCluster, f: &Fixture) -> Vec<String> {
    let mut out = Vec::new();
    for (rank, user) in USERS.iter().enumerate() {
        let registry = format!(
            "{user}:{:?}:{:?}:{:?}:{:?}:{:?}",
            c.cluster_of(user).ok(),
            c.is_personalized(user).ok(),
            c.quarantined_count(user).ok(),
            c.pending_maps(user).ok(),
            c.generation_of(user).ok(),
        );
        out.push(registry);
        let served = match c.predict(user, &maps_of(f, rank, 5, 7)) {
            Ok(predictions) => predictions.iter().map(prediction_key).collect(),
            Err(e) => vec![format!("err:{e}")],
        };
        out.extend(served);
    }
    out
}

/// Feature maps `[lo, hi)` of the subject at `rank` (modulo cohort
/// size), clamped to the subject's map count.
pub fn maps_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| f.data.maps()[i].clone())
        .collect()
}

/// Labeled maps `[lo, hi)` of the subject at `rank`.
pub fn labeled_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<(FeatureMap, Emotion)> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| {
            let (map, emotion) = f.data.map_and_label(i);
            (map.clone(), emotion)
        })
        .collect()
}

/// An all-NaN map of the bundle's shape: every modality block is dead,
/// so serving it exercises the quarantine path.
pub fn nan_map(f: &Fixture) -> FeatureMap {
    FeatureMap::from_columns(&vec![vec![f32::NAN; FEATURE_COUNT]; f.bundle.windows])
}
