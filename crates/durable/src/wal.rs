//! The write-ahead log of serving operations.
//!
//! Every state mutation the serving engine commits — onboarding a user,
//! buffering deferred-onboarding windows, adopting or rolling back a
//! personalized model, counting a quarantined window, offboarding — is
//! first described as a [`WalOp`], stamped with a monotone log sequence
//! number, framed (see [`crate::frame`]) and synced to storage. Only
//! after the append returns does the in-memory mutation commit, so a
//! crash at any instant leaves the log describing a *superset prefix* of
//! committed state: every acknowledged operation is on disk, and the only
//! possible extra is a trailing operation that was logged but not yet
//! applied (which replay then applies — the same outcome the caller was
//! about to observe).
//!
//! All records of one engine operation are framed into a single buffer
//! and appended with one storage call, so one logical operation costs one
//! fsync and is either wholly logged or torn off the tail as a unit
//! prefix. If an append fails, the on-disk tail is unknown; the log
//! *poisons* itself and refuses further appends ([`DurableError::WalPoisoned`])
//! until a successful snapshot rebuilds a clean, empty log.

use crate::frame::{self, WalTail};
use crate::storage::Storage;
use crate::DurableError;
use clear_features::FeatureMap;
use clear_nn::delta::WeightDelta;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Blob name of the write-ahead log within a [`Storage`] root.
pub const WAL_FILE: &str = "wal.log";

/// One durable serving operation. Ops record *results*, not inputs:
/// `Onboard` carries the assigned cluster and computed baseline rather
/// than the raw windows, so replay is exact arithmetic-free state
/// reconstruction and never re-runs clustering or fine-tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// A user was assigned to a cluster (fresh or after deferral).
    Onboard {
        /// User identifier.
        user: String,
        /// Assigned cluster index.
        cluster: usize,
        /// Per-user physiological baseline vector.
        baseline: Vec<f32>,
        /// Fork-generation stamp issued at onboarding.
        generation: u64,
    },
    /// Good-quality windows buffered for a deferred onboarding.
    BufferMaps {
        /// User identifier.
        user: String,
        /// The windows that passed quality gating.
        maps: Vec<FeatureMap>,
    },
    /// A personalization round validated and was adopted.
    PersonalizeAdopt {
        /// User identifier.
        user: String,
        /// New fork-generation stamp.
        generation: u64,
        /// Personalized weights, as a delta from the cluster model.
        delta: Box<WeightDelta>,
    },
    /// A personalization round failed validation and was rolled back.
    /// Replay is a no-op; the record exists so the audit trail is
    /// complete.
    PersonalizeRollback {
        /// User identifier.
        user: String,
    },
    /// Windows were quarantined during prediction.
    Quarantine {
        /// User identifier.
        user: String,
        /// How many windows this operation quarantined.
        count: u64,
    },
    /// A user and all their state were removed.
    Offboard {
        /// User identifier.
        user: String,
    },
    /// A new generation of one cluster's serving model was adopted (or,
    /// with `delta: None`, the cluster was rolled back to its base
    /// bundle model). The delta is against the immutable base model in
    /// the engine's bundle, so replay reconstructs the adopted weights
    /// bit-exactly without retraining — the same contract as
    /// [`WalOp::PersonalizeAdopt`], lifted from users to clusters.
    AdoptClusterModel {
        /// Cluster index whose serving model changed.
        cluster: usize,
        /// Engine-wide generation stamp issued for this adoption.
        generation: u64,
        /// New weights as a delta from the cluster's *base* bundle
        /// model; `None` restores the base model itself (rollback).
        delta: Option<Box<WeightDelta>>,
    },
}

impl WalOp {
    /// The user this operation belongs to. Engine-wide operations
    /// ([`WalOp::AdoptClusterModel`]) belong to no user and return the
    /// empty string.
    pub fn user(&self) -> &str {
        match self {
            WalOp::Onboard { user, .. }
            | WalOp::BufferMaps { user, .. }
            | WalOp::PersonalizeAdopt { user, .. }
            | WalOp::PersonalizeRollback { user }
            | WalOp::Quarantine { user, .. }
            | WalOp::Offboard { user } => user,
            WalOp::AdoptClusterModel { .. } => "",
        }
    }
}

/// A [`WalOp`] stamped with its log sequence number. LSNs start at 1 and
/// increase by exactly 1 per record for the lifetime of a log directory
/// (they are *not* reset by truncation), which is what lets a snapshot
/// name the exact record set it covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotone log sequence number.
    pub lsn: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// The write-ahead log: an append-only sequence of [`WalRecord`]s over an
/// injectable [`Storage`].
pub struct Wal {
    storage: Arc<dyn Storage>,
    next_lsn: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens the log, recovering its committed records.
    ///
    /// A torn tail (crash mid-append) is truncated in place — the valid
    /// prefix is rewritten atomically — and counted via
    /// `durable.wal_truncations`.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::CorruptArtifact`] when a complete frame
    /// fails its checksum or a record does not parse, and
    /// [`DurableError::Io`] on storage failure.
    pub fn open(storage: Arc<dyn Storage>) -> Result<(Self, Vec<WalRecord>), DurableError> {
        let bytes = storage.read(WAL_FILE)?.unwrap_or_default();
        let (payloads, tail) = frame::decode_frames(&bytes)?;
        let mut records = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let record: WalRecord = serde_json::from_slice(payload)
                .map_err(|e| DurableError::corrupt("wal", format!("record does not parse: {e}")))?;
            records.push(record);
        }
        for pair in records.windows(2) {
            if pair[1].lsn != pair[0].lsn + 1 {
                return Err(DurableError::corrupt(
                    "wal",
                    format!("lsn gap: {} then {}", pair[0].lsn, pair[1].lsn),
                ));
            }
        }
        if let WalTail::Torn { valid_len } = tail {
            storage.write_atomic(WAL_FILE, &bytes[..valid_len])?;
            clear_obs::counter_add(clear_obs::counters::DURABLE_WAL_TRUNCATIONS, 1);
        }
        let next_lsn = records.last().map_or(1, |r| r.lsn + 1);
        Ok((
            Self {
                storage,
                next_lsn,
                poisoned: false,
            },
            records,
        ))
    }

    /// Opens the log continuing after `last_lsn` (used when a snapshot
    /// supplies the LSN horizon and the log file itself is empty or
    /// absent).
    ///
    /// # Errors
    ///
    /// As [`Wal::open`].
    pub fn open_after(
        storage: Arc<dyn Storage>,
        last_lsn: u64,
    ) -> Result<(Self, Vec<WalRecord>), DurableError> {
        let (mut wal, records) = Self::open(storage)?;
        if wal.next_lsn <= last_lsn {
            wal.next_lsn = last_lsn + 1;
        }
        Ok((wal, records))
    }

    /// Appends `ops` as one atomic batch (one frame per record, one
    /// storage append, one fsync) and returns the LSN of the last record
    /// written.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::EmptyAppend`] when `ops` is empty — an
    /// acknowledged empty append would hand back an LSN that was never
    /// written — [`DurableError::WalPoisoned`] if an earlier append
    /// failed, or [`DurableError::Io`] on storage failure — after which
    /// the log is poisoned and the caller must *not* commit the mutation
    /// the ops describe.
    pub fn append(&mut self, ops: Vec<WalOp>) -> Result<u64, DurableError> {
        if self.poisoned {
            return Err(DurableError::WalPoisoned);
        }
        let first = self.next_lsn;
        let records: Vec<WalRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| WalRecord {
                lsn: first + i as u64,
                op,
            })
            .collect();
        self.append_records(&records)
    }

    /// Appends pre-stamped records — the replication import path: a
    /// follower writes its leader's records verbatim, LSNs included, so
    /// the two logs stay bit-comparable. Records must continue exactly at
    /// [`Wal::next_lsn`] with no gaps.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::EmptyAppend`] for an empty batch,
    /// [`DurableError::CorruptArtifact`] when the records do not continue
    /// the log contiguously (nothing is written), and otherwise as
    /// [`Wal::append`].
    pub fn append_records(&mut self, records: &[WalRecord]) -> Result<u64, DurableError> {
        let _span = clear_obs::span(clear_obs::Stage::WalAppend);
        if self.poisoned {
            return Err(DurableError::WalPoisoned);
        }
        if records.is_empty() {
            return Err(DurableError::EmptyAppend);
        }
        let mut buf = Vec::new();
        let mut expected = self.next_lsn;
        for record in records {
            if record.lsn != expected {
                return Err(DurableError::corrupt(
                    "wal",
                    format!("record lsn {} does not continue the log at {expected}", record.lsn),
                ));
            }
            let payload =
                serde_json::to_vec(record).map_err(|e| DurableError::Io(e.to_string()))?;
            frame::encode_frame_into(&mut buf, &payload);
            expected += 1;
        }
        match self.storage.append(WAL_FILE, &buf) {
            Ok(()) => {
                self.next_lsn = expected;
                clear_obs::counter_add(clear_obs::counters::DURABLE_WAL_APPENDS, 1);
                clear_obs::counter_add(clear_obs::counters::DURABLE_WAL_BYTES, buf.len() as u64);
                clear_obs::counter_add(clear_obs::counters::DURABLE_FSYNC_BATCHES, 1);
                Ok(expected - 1)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Empties the log after its records are covered by a durable
    /// snapshot. Clears poisoning: the log is rebuilt from a known-good
    /// (empty) state. LSNs keep counting from where they were.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on storage failure (the log stays
    /// poisoned if it was).
    pub fn truncate(&mut self) -> Result<(), DurableError> {
        self.storage.write_atomic(WAL_FILE, &[])?;
        self.poisoned = false;
        Ok(())
    }

    /// LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the last record ever appended (0 if none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Whether an earlier append failure has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Reads a log's committed records without opening it for writing: no
/// truncation, no LSN bookkeeping, no mutation of any kind. A torn tail
/// is silently ignored (the clean prefix is returned) — this is the
/// replication/catch-up read path, where the storage may belong to a
/// crashed member whose log a survivor is draining.
///
/// # Errors
///
/// Returns [`DurableError::CorruptArtifact`] when a complete frame fails
/// its checksum or a record does not parse, and [`DurableError::Io`] on
/// storage failure.
pub fn read_records(storage: &dyn Storage) -> Result<Vec<WalRecord>, DurableError> {
    let bytes = storage.read(WAL_FILE)?.unwrap_or_default();
    let (payloads, _tail) = frame::decode_frames(&bytes)?;
    let mut records = Vec::with_capacity(payloads.len());
    for payload in payloads {
        let record: WalRecord = serde_json::from_slice(payload)
            .map_err(|e| DurableError::corrupt("wal", format!("record does not parse: {e}")))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};

    fn ops(users: &[&str]) -> Vec<WalOp> {
        users
            .iter()
            .map(|u| WalOp::Quarantine {
                user: u.to_string(),
                count: 1,
            })
            .collect()
    }

    #[test]
    fn append_then_reopen_replays_records_in_order() {
        let storage = Arc::new(MemStorage::new());
        let (mut wal, records) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.next_lsn(), 1);
        wal.append(ops(&["a", "b"])).unwrap();
        wal.append(vec![WalOp::Offboard {
            user: "a".to_string(),
        }])
        .unwrap();
        let (wal2, records) = Wal::open(storage as Arc<dyn Storage>).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].lsn, 1);
        assert_eq!(records[2].lsn, 3);
        assert_eq!(records[0].op.user(), "a");
        assert!(matches!(records[2].op, WalOp::Offboard { .. }));
        assert_eq!(wal2.next_lsn(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let storage = Arc::new(MemStorage::new());
        {
            let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
            wal.append(ops(&["a"])).unwrap();
        }
        let committed = storage.read(WAL_FILE).unwrap().unwrap();
        storage.append(WAL_FILE, &[9, 0, 0, 0, 1, 2]).unwrap(); // torn frame
        let (wal, records) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(wal.next_lsn(), 2);
        // The tail was physically truncated back to the committed prefix.
        assert_eq!(storage.read(WAL_FILE).unwrap().unwrap(), committed);
    }

    #[test]
    fn failed_append_poisons_and_truncate_heals() {
        let fault = Arc::new(FaultStorage::new(FaultPlan {
            kill_at: 1,
            torn_bytes: 3,
        }));
        let (mut wal, _) = Wal::open(fault.clone() as Arc<dyn Storage>).unwrap();
        wal.append(ops(&["a"])).unwrap();
        assert!(matches!(wal.append(ops(&["b"])), Err(DurableError::Io(_))));
        assert!(wal.is_poisoned());
        assert_eq!(wal.append(ops(&["c"])), Err(DurableError::WalPoisoned));
        // The torn tail the failed append left behind truncates cleanly.
        let survivor = fault.surviving();
        let (_, records) = Wal::open(survivor as Arc<dyn Storage>).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn truncate_preserves_lsn_monotonicity() {
        let storage = Arc::new(MemStorage::new());
        let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
        wal.append(ops(&["a", "b", "c"])).unwrap();
        assert_eq!(wal.last_lsn(), 3);
        wal.truncate().unwrap();
        assert_eq!(wal.last_lsn(), 3);
        wal.append(ops(&["d"])).unwrap();
        let (wal2, records) = Wal::open_after(storage as Arc<dyn Storage>, 3).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].lsn, 4);
        assert_eq!(wal2.next_lsn(), 5);
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let storage = Arc::new(MemStorage::new());
        {
            let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
            wal.append(ops(&["a", "b"])).unwrap();
        }
        let mut bytes = storage.read(WAL_FILE).unwrap().unwrap();
        bytes[10] ^= 0x20; // flip a payload byte in the first frame
        storage.write_atomic(WAL_FILE, &bytes).unwrap();
        match Wal::open(storage as Arc<dyn Storage>) {
            Err(DurableError::CorruptArtifact { artifact, .. }) => assert_eq!(artifact, "wal"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    /// Satellite regression: an empty append used to return `next_lsn`
    /// as `last_lsn` in release builds — an LSN that was never written.
    /// It is now a typed error, writes nothing, and poisons nothing.
    #[test]
    fn empty_append_is_a_typed_error_and_writes_nothing() {
        let storage = Arc::new(MemStorage::new());
        let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
        wal.append(ops(&["a"])).unwrap();
        assert_eq!(wal.append(Vec::new()), Err(DurableError::EmptyAppend));
        assert_eq!(wal.append_records(&[]), Err(DurableError::EmptyAppend));
        assert!(!wal.is_poisoned(), "an empty append must not poison");
        assert_eq!(wal.next_lsn(), 2, "no lsn may be consumed");
        // The log still appends normally and replays only real records.
        wal.append(ops(&["b"])).unwrap();
        let (_, records) = Wal::open(storage as Arc<dyn Storage>).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].lsn, 2);
    }

    #[test]
    fn append_records_requires_contiguous_lsns() {
        let storage = Arc::new(MemStorage::new());
        let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
        wal.append(ops(&["a"])).unwrap();
        let gap = WalRecord {
            lsn: 5,
            op: WalOp::Quarantine {
                user: "x".to_string(),
                count: 1,
            },
        };
        assert!(matches!(
            wal.append_records(&[gap]),
            Err(DurableError::CorruptArtifact { artifact: "wal", .. })
        ));
        // Nothing landed, the log continues where it was.
        let next = WalRecord {
            lsn: 2,
            op: WalOp::Offboard {
                user: "a".to_string(),
            },
        };
        assert_eq!(wal.append_records(&[next]).unwrap(), 2);
        let (_, records) = Wal::open(storage as Arc<dyn Storage>).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].lsn, 2);
    }

    #[test]
    fn read_records_never_mutates_and_tolerates_torn_tails() {
        let storage = Arc::new(MemStorage::new());
        {
            let (mut wal, _) = Wal::open(storage.clone() as Arc<dyn Storage>).unwrap();
            wal.append(ops(&["a", "b"])).unwrap();
        }
        storage.append(WAL_FILE, &[77, 0, 0, 0, 3]).unwrap(); // torn frame
        let before = storage.read(WAL_FILE).unwrap().unwrap();
        let records = read_records(storage.as_ref()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].lsn, 2);
        // The torn tail is still on disk: reading is not repairing.
        assert_eq!(storage.read(WAL_FILE).unwrap().unwrap(), before);
    }

    #[test]
    fn ops_round_trip_through_json() {
        let op = WalOp::Onboard {
            user: "u1".to_string(),
            cluster: 2,
            baseline: vec![0.5, -1.25],
            generation: 7,
        };
        let json = serde_json::to_string(&WalRecord { lsn: 9, op }).unwrap();
        let back: WalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lsn, 9);
        assert_eq!(back.op.user(), "u1");
    }

    #[test]
    fn engine_wide_ops_belong_to_no_user_and_round_trip() {
        let op = WalOp::AdoptClusterModel {
            cluster: 3,
            generation: 11,
            delta: None,
        };
        assert_eq!(op.user(), "");
        let json = serde_json::to_string(&WalRecord { lsn: 4, op }).unwrap();
        let back: WalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lsn, 4);
        assert!(matches!(
            back.op,
            WalOp::AdoptClusterModel {
                cluster: 3,
                generation: 11,
                delta: None,
            }
        ));
    }
}
