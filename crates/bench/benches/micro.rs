//! Criterion micro-benchmarks of every substrate on CLEAR-shaped inputs:
//! FFT and Welch PSD, the 123-feature window extractor, refined k-means,
//! CNN-LSTM forward/backward (fresh vs. reused workspace), quantized edge
//! inference (single vs. batch), and the sequential vs. parallel LOSO
//! fold drivers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use clear_clustering::refine::{refined_fit, RefineConfig};
use clear_core::dataset::PreparedCohort;
use clear_core::evaluation::{clear_folds, clear_folds_parallel};
use clear_core::ClearConfig;
use clear_edge::{Device, EdgeDeployment};
use clear_features::{extract_window, WindowConfig};
use clear_nn::loss::cross_entropy;
use clear_nn::network::cnn_lstm_compact;
use clear_nn::quantize::{lower_network, Precision};
use clear_nn::tensor::Tensor;
use clear_nn::workspace::Workspace;
use clear_sim::{Cohort, CohortConfig, SignalConfig};

fn bench_dsp(c: &mut Criterion) {
    let signal: Vec<f32> = (0..768)
        .map(|i| (i as f32 * 0.37).sin() + 0.2 * (i as f32 * 1.7).cos())
        .collect();
    c.bench_function("fft_768_zero_padded", |b| {
        b.iter(|| clear_dsp::fft::power_spectrum(black_box(&signal)))
    });
    c.bench_function("welch_psd_768", |b| {
        b.iter(|| {
            clear_dsp::psd::welch(
                black_box(&signal),
                64.0,
                &clear_dsp::psd::WelchConfig::with_segment_len(256),
            )
            .unwrap()
        })
    });
    c.bench_function("beat_detection_768", |b| {
        b.iter(|| clear_dsp::peaks::detect_beats(black_box(&signal), 64.0).unwrap())
    });
}

fn bench_features(c: &mut Criterion) {
    let cohort = Cohort::generate(&CohortConfig::small(1));
    let rec = &cohort.recordings()[0];
    let sig = cohort.config().signal;
    let w = WindowConfig::default();
    let nb = (w.window_secs * sig.fs_bvp) as usize;
    let ng = (w.window_secs * sig.fs_gsr) as usize;
    let ns = (w.window_secs * sig.fs_skt) as usize;
    let (bvp, gsr, skt) = (&rec.bvp[..nb], &rec.gsr[..ng], &rec.skt[..ns]);
    c.bench_function("extract_123_features_one_window", |b| {
        b.iter(|| extract_window(black_box(bvp), black_box(gsr), black_box(skt), &sig))
    });
}

fn bench_clustering(c: &mut Criterion) {
    // 44 users × 123 features, CLEAR's actual Global Clustering shape.
    let points: Vec<Vec<f32>> = (0..44)
        .map(|i| {
            (0..123)
                .map(|j| ((i * 131 + j * 17) % 97) as f32 / 97.0 + (i % 4) as f32)
                .collect()
        })
        .collect();
    c.bench_function("refined_kmeans_44x123_k4", |b| {
        b.iter(|| refined_fit(black_box(&points), &RefineConfig::default()))
    });
}

fn bench_nn(c: &mut Criterion) {
    let net = cnn_lstm_compact(123, 9, 2, 1);
    let x = Tensor::from_vec(
        &[1, 123, 9],
        (0..123 * 9).map(|v| (v as f32).sin()).collect(),
    );
    // Steady state: the workspace is bound once and reused, so forward
    // allocates nothing.
    let mut ws = Workspace::new();
    c.bench_function("cnn_lstm_compact_forward", |b| {
        b.iter(|| {
            let logits = net.forward(black_box(&x), false, &mut ws);
            black_box(logits.as_slice()[0])
        })
    });
    // Cold start: every call pays workspace (re)allocation, the cost the
    // reuse above amortizes away.
    c.bench_function("cnn_lstm_compact_forward_fresh_workspace", |b| {
        b.iter(|| {
            let mut fresh = Workspace::new();
            let logits = net.forward(black_box(&x), false, &mut fresh);
            black_box(logits.as_slice()[0])
        })
    });
    c.bench_function("cnn_lstm_compact_forward_backward", |b| {
        b.iter(|| {
            let logits = net.forward(black_box(&x), true, &mut ws);
            let (_, grad) = cross_entropy(logits, 1);
            ws.zero_grads();
            net.backward(&grad, &mut ws);
        })
    });
    c.bench_function("int8_lowering_full_network", |b| {
        b.iter_batched(
            || net.clone(),
            |mut n| lower_network(&mut n, Precision::Int8),
            BatchSize::SmallInput,
        )
    });
}

fn bench_edge(c: &mut Criterion) {
    let net = cnn_lstm_compact(123, 9, 2, 1);
    let x = Tensor::from_vec(
        &[1, 123, 9],
        (0..123 * 9).map(|v| (v as f32).cos()).collect(),
    );
    let mut dep = EdgeDeployment::new(net, Device::CoralTpu, &[1, 123, 9]);
    c.bench_function("edge_int8_inference", |b| {
        b.iter(|| dep.infer(black_box(&x)))
    });
    // Single-vs-batch: `infer` clones the output tensor per window,
    // `predict_batch` serves the whole batch through the reused workspace
    // and returns plain class indices.
    let batch: Vec<Tensor> = (0..16)
        .map(|i| {
            Tensor::from_vec(
                &[1, 123, 9],
                (0..123 * 9).map(|v| ((v + i * 7) as f32).cos()).collect(),
            )
        })
        .collect();
    c.bench_function("edge_inference_single_x16", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|m| dep.infer(black_box(m)).argmax())
                .collect::<Vec<usize>>()
        })
    });
    c.bench_function("edge_inference_batch_x16", |b| {
        b.iter(|| dep.predict_batch(black_box(&batch)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let config = ClearConfig::quick(3);
    c.bench_function("cohort_generation_quick", |b| {
        b.iter(|| Cohort::generate(black_box(&config.cohort)))
    });
    let signal = SignalConfig::default();
    let cohort = Cohort::generate(&CohortConfig::small(2));
    let extractor =
        clear_features::FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
    let _ = signal;
    c.bench_function("feature_map_one_recording", |b| {
        b.iter(|| extractor.feature_map(black_box(&cohort.recordings()[0])))
    });
}

/// Sequential vs. parallel LOSO drivers on a deliberately tiny profile
/// (one training epoch) so the comparison measures driver overhead and
/// scaling, not epochs of SGD.
fn bench_loso(c: &mut Criterion) {
    let mut config = ClearConfig::quick(5);
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let mut group = c.benchmark_group("loso");
    group.sample_size(10);
    group.bench_function("clear_folds_sequential", |b| {
        b.iter(|| clear_folds(black_box(&data), &config, false, |_, _| {}))
    });
    group.bench_function("clear_folds_parallel_4", |b| {
        b.iter(|| clear_folds_parallel(black_box(&data), &config, false, 4, |_, _| {}))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dsp, bench_features, bench_clustering, bench_nn, bench_edge, bench_pipeline, bench_loso
);
criterion_main!(benches);
