//! # clear-stream — streaming ingestion sessions for CLEAR serving
//!
//! The serving layers (PRs 4–7) consume precomputed `123 × W` feature
//! maps, but the paper's edge deployment sees raw BVP/GSR/SKT samples
//! arriving continuously at 4–64 Hz. This crate is the front-end that
//! closes the gap: raw multi-rate signal chunks in, quality-gated
//! predictions out, **bit-identical** to batch-extracting the same stream
//! and serving the maps directly.
//!
//! * [`StreamSession`] — one user's live state: draining bounded sample
//!   buffers (via `clear_features::StreamingExtractor`), optional
//!   device-rate → pipeline-rate resampling
//!   (`clear_dsp::resample::StreamingResampler`), incremental window
//!   extraction and map assembly, and a per-session byte budget sized
//!   from the `clear-edge` memory model with a typed [`ShedPolicy`]
//!   (reject / drop-oldest / sparse-hop) deciding what gives when the
//!   budget is hit.
//! * [`StreamPump`] — the session registry over a
//!   [`clear_serve::ServeEngine`]: deterministic parallel chunk routing
//!   ([`StreamPump::ingest_many`]) and prediction drains that batch
//!   completed maps cross-user through `predict_many`, capped at the
//!   engine's admission limit.
//! * [`ClusterPump`] — the cluster-backed sibling: the same sessions,
//!   served through a replicated [`clear_cluster::ServeCluster`] with
//!   sequenced exactly-once delivery — a mid-session leader failover
//!   loses no prediction, duplicates none, and stays bit-identical to a
//!   never-failed run (`tests/cluster_failover.rs`).
//! * [`StreamError`] — typed failures: over-budget chunks, closed or
//!   unknown sessions, bad configs.
//!
//! ## Flow
//!
//! ```text
//! sensor chunks ──ingest──▶ StreamSession ──windows──▶ maps ready
//!   (4–64 Hz)     budget +   draining buffers            │
//!                 shed policy                     drain──▶ ServeEngine::predict_many
//!                                                          └─▶ gated Predictions
//! ```
//!
//! Every stage is deterministic: seeded `clear_sim::chunk_schedule`
//! arrival patterns, sorted-user drains and atomic-index work claiming
//! make any worker count replay bit-for-bit (`tests/determinism.rs`),
//! and the streamed feature values equal the batch extractor's on the
//! concatenated signal at every chunking (`tests/properties.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod pump;
pub mod session;

pub use cluster::{ClusterPump, ClusterSessionDrain};
pub use pump::{ChunkIngest, PumpConfig, SessionDrain, StreamPump};
pub use session::{
    IngestReport, SessionConfig, SessionStats, ShedPolicy, StreamError, StreamSession,
};
