//! Scale: 10,000 concurrent streaming sessions with bounded per-session
//! buffer memory, pumped through one engine.
//!
//! Ignored by default (it is a release-mode soak): enable the `soak`
//! feature — as the CI lifecycle job does in release — or pass
//! `--ignored` to run it.

mod common;

use clear_edge::Device;
use clear_serve::{EngineConfig, ServeEngine};
use clear_sim::{chunk_schedule, ChunkSizes, SignalConfig};
use clear_stream::{ChunkIngest, PumpConfig, SessionConfig, StreamPump};
use common::*;
use std::sync::Arc;

const SESSIONS: usize = 10_000;
const BASE_STREAMS: usize = 8;
const THREADS: usize = 8;

#[test]
#[cfg_attr(
    not(feature = "soak"),
    ignore = "10k-session soak; run in release with --features soak (the CI lifecycle job does)"
)]
fn ten_thousand_sessions_stream_with_bounded_buffers() {
    let f = fixture();
    let signal = f.config.cohort.signal;

    // Eight base signals shared across users (10k distinct copies would
    // only stress the test harness's memory, not the sessions').
    let base: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..BASE_STREAMS)
        .map(|rank| concat_stream(&recordings_of(f, rank, 2, 3)))
        .collect();
    let total = SignalConfig {
        stimulus_secs: base[0].0.len() as f32 / signal.fs_bvp,
        ..signal
    };
    let plans: Vec<Vec<ChunkSizes>> = (0..SESSIONS)
        .map(|j| chunk_schedule(&total, 2.0, 5.0, j as u64))
        .collect();

    // Budget each session from the edge memory model: the GPU activation
    // budget split 10,000 ways, floored at the minimum viable footprint.
    let session = SessionConfig::new(signal, f.config.window, f.bundle.windows)
        .sized_for_device(Device::Gpu, SESSIONS);
    let budget = session.byte_budget;
    assert!(budget >= session.min_resident_bytes());

    let engine = Arc::new(ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig::default(),
    ));
    let pump = StreamPump::new(engine, PumpConfig::new(session));
    let users: Vec<String> = (0..SESSIONS).map(|j| format!("user-{j:05}")).collect();
    for (j, user) in users.iter().enumerate() {
        pump.engine()
            .onboard(user, &maps_of(f, j % BASE_STREAMS, 0, 2))
            .expect("onboard");
        pump.open(user).expect("open");
    }
    assert_eq!(pump.session_count(), SESSIONS);

    let max_ticks = plans.iter().map(Vec::len).max().unwrap();
    let mut offsets = vec![(0usize, 0usize, 0usize); SESSIONS];
    let mut maps_served = 0usize;
    let mut predictions = 0usize;
    for tick in 0..max_ticks {
        let mut batch = Vec::with_capacity(SESSIONS);
        for j in 0..SESSIONS {
            if tick >= plans[j].len() {
                continue;
            }
            let (bvp, gsr, skt) = &base[j % BASE_STREAMS];
            let c = plans[j][tick];
            let (ob, og, os) = offsets[j];
            batch.push(ChunkIngest {
                user: &users[j],
                bvp: &bvp[ob..ob + c.bvp],
                gsr: &gsr[og..og + c.gsr],
                skt: &skt[os..os + c.skt],
            });
            offsets[j] = (ob + c.bvp, og + c.gsr, os + c.skt);
        }
        for result in pump.ingest_many(&batch, THREADS) {
            result.expect("no chunk may be shed at this budget");
        }
        // Every session stayed under its byte budget — the bound the edge
        // memory model promised.
        assert!(
            pump.peak_session_bytes() <= budget,
            "peak session {} B exceeds budget {} B at tick {tick}",
            pump.peak_session_bytes(),
            budget
        );
        if tick % 4 == 3 {
            for drain in pump.drain() {
                maps_served += drain.maps;
                predictions += drain.result.expect("serving error").len();
            }
        }
    }
    for drain in pump.drain() {
        maps_served += drain.maps;
        predictions += drain.result.expect("serving error").len();
    }

    // One 42 s recording per user → exactly one full map each.
    assert_eq!(maps_served, SESSIONS, "every session must complete its map");
    assert_eq!(predictions, SESSIONS * f.bundle.windows);

    // The peak is not just under the sliced budget but within a small
    // constant of the theoretical minimum: buffers really drain.
    let peak = pump.peak_session_bytes();
    assert!(
        peak <= 4 * session.min_resident_bytes(),
        "peak {} B vs min viable {} B — buffers are not draining",
        peak,
        session.min_resident_bytes()
    );

    // Nothing was shed and every session is still live.
    for user in users.iter().step_by(997) {
        let stats = pump.stats(user).expect("stats");
        assert_eq!(stats.shed_rejected_chunks, 0);
        assert_eq!(stats.shed_dropped_windows, 0);
        assert_eq!(stats.shed_sparse_hop_windows, 0);
    }
    assert_eq!(pump.session_count(), SESSIONS);
}
