//! Durability benchmark: what the write-ahead log costs and what
//! recovery buys. Writes `BENCH_durable.json` so the durability perf
//! trajectory is tracked across revisions.
//!
//! Reported numbers:
//!
//! * onboarding ops/sec with the WAL off (plain engine) and on (every
//!   op framed, checksummed and fsynced to a real filesystem WAL);
//! * steady-state prediction windows/sec with the WAL off and on — the
//!   serve path never appends for clean windows, so these should match;
//! * snapshot publication and crash-recovery wall time, with the WAL
//!   byte volume and recovered-op counts from the observability registry.
//!
//! Before any timing, the durable engine's output is asserted
//! bit-identical to the plain engine, and the recovered engine's output
//! bit-identical to the engine that never went down — the overhead
//! numbers are only meaningful because durability changes no served bit.

use clear_bench::cli_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, Prediction, ServingPolicy};
use clear_durable::{DurableConfig, FsStorage, Storage};
use clear_features::FeatureMap;
use clear_serve::{EngineConfig, ServeEngine, ServeRequest};
use clear_sim::Emotion;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Tenants onboarded in the overhead runs.
const USERS: usize = 24;
/// Prediction passes over the full request set per measurement.
const ROUNDS: usize = 4;

#[derive(Debug, Serialize)]
struct DurableBench {
    users: usize,
    windows_per_request: usize,
    onboard_ops_per_sec_wal_off: f32,
    onboard_ops_per_sec_wal_on: f32,
    onboard_overhead_x: f32,
    predict_windows_per_sec_wal_off: f32,
    predict_windows_per_sec_wal_on: f32,
    predict_overhead_x: f32,
    wal_appends: u64,
    wal_bytes: u64,
    snapshot_ms: f32,
    snapshot_bytes: u64,
    recovery_ms: f32,
    recovered_tenants: usize,
}

fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 8,
        cache_capacity: 16,
        max_queue_depth: 1024,
        ..EngineConfig::default()
    }
}

/// Maps `[lo, hi)` of the subject at `rank` (modulo cohort size),
/// clamped to the subject's recording count.
fn maps_of(data: &PreparedCohort, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect()
}

fn labeled_of(
    data: &PreparedCohort,
    rank: usize,
    lo: usize,
    hi: usize,
) -> Vec<(FeatureMap, Emotion)> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| {
            let (map, emotion) = data.map_and_label(i);
            (map.clone(), emotion)
        })
        .collect()
}

fn counter(snapshot: &clear_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

/// Onboards (and every fourth user, personalizes) the population,
/// returning elapsed onboarding-only seconds.
fn populate(engine: &ServeEngine, data: &PreparedCohort, config: &clear_core::ClearConfig) -> f32 {
    let mut onboard_secs = 0f32;
    for i in 0..USERS {
        let user = format!("user-{i}");
        let maps = maps_of(data, i, 0, 2);
        let t0 = Instant::now();
        engine.onboard(&user, &maps).expect("onboarding maps");
        onboard_secs += t0.elapsed().as_secs_f32();
        if i % 4 == 0 {
            engine
                .personalize(&user, &labeled_of(data, i, 6, 8), &config.finetune)
                .expect("user onboarded above");
        }
    }
    onboard_secs
}

/// Serves `ROUNDS` passes of the request set, returning elapsed seconds
/// and the first pass's results.
fn predict_pass(
    engine: &ServeEngine,
    requests: &[(String, Vec<FeatureMap>)],
) -> (f32, Vec<Vec<Prediction>>) {
    let batch: Vec<ServeRequest<'_>> = requests
        .iter()
        .map(|(user, maps)| ServeRequest { user, maps })
        .collect();
    let mut first = Vec::new();
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        let results = engine.predict_many(&batch);
        if round == 0 {
            first = results
                .into_iter()
                .map(|r| r.expect("benchmark users are onboarded"))
                .collect();
        }
    }
    (t0.elapsed().as_secs_f32(), first)
}

fn main() {
    let cli = cli_from_args();

    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    // Reduced training profile: the benchmark measures durability, not SGD.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (_, initial) = subjects.split_last().expect("cohort is non-empty");
    let bundle = deploy(&data, initial, &config).bundle().clone();

    let wal_dir = std::env::temp_dir().join(format!("clear-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let storage: Arc<dyn Storage> =
        Arc::new(FsStorage::open(&wal_dir).expect("temp WAL directory opens"));

    let plain = ServeEngine::with_policy(bundle.clone(), lenient(), engine_config());
    // Manual snapshot cadence: the WAL grows across the whole run so its
    // volume is measured, and the snapshot is timed explicitly below.
    let durable = ServeEngine::recover_with(
        Arc::clone(&storage),
        bundle.clone(),
        lenient(),
        engine_config(),
        DurableConfig {
            snapshot_every_ops: 0,
        },
    )
    .expect("fresh durable engine opens");

    let plain_onboard_secs = populate(&plain, &data, &config);
    let durable_onboard_secs = populate(&durable, &data, &config);
    let onboard_ops_per_sec_wal_off = USERS as f32 / plain_onboard_secs.max(1e-9);
    let onboard_ops_per_sec_wal_on = USERS as f32 / durable_onboard_secs.max(1e-9);
    let onboard_overhead_x = onboard_ops_per_sec_wal_off / onboard_ops_per_sec_wal_on.max(1e-9);
    eprintln!(
        "onboarding: {onboard_ops_per_sec_wal_off:.0} ops/sec WAL-off, \
         {onboard_ops_per_sec_wal_on:.0} ops/sec WAL-on ({onboard_overhead_x:.2}x overhead)"
    );

    let requests: Vec<(String, Vec<FeatureMap>)> = (0..USERS)
        .map(|i| (format!("user-{i}"), maps_of(&data, i, 2, 6)))
        .collect();
    let windows_per_request = requests.first().map_or(0, |(_, maps)| maps.len());
    let total_windows = requests.iter().map(|(_, maps)| maps.len()).sum::<usize>();

    // Correctness gate: durability must change no served bit.
    let (off_secs, off_results) = predict_pass(&plain, &requests);
    let (on_secs, on_results) = predict_pass(&durable, &requests);
    assert_eq!(
        off_results, on_results,
        "durable engine output diverged from the plain engine"
    );
    let predict_windows_per_sec_wal_off = (ROUNDS * total_windows) as f32 / off_secs.max(1e-9);
    let predict_windows_per_sec_wal_on = (ROUNDS * total_windows) as f32 / on_secs.max(1e-9);
    let predict_overhead_x =
        predict_windows_per_sec_wal_off / predict_windows_per_sec_wal_on.max(1e-9);
    eprintln!(
        "prediction: {predict_windows_per_sec_wal_off:.0} windows/sec WAL-off, \
         {predict_windows_per_sec_wal_on:.0} windows/sec WAL-on ({predict_overhead_x:.2}x)"
    );

    let obs = registry.snapshot();
    let wal_appends = counter(&obs, clear_obs::counters::DURABLE_WAL_APPENDS);
    let wal_bytes = counter(&obs, clear_obs::counters::DURABLE_WAL_BYTES);

    let t0 = Instant::now();
    durable.snapshot().expect("snapshot publishes");
    let snapshot_ms = t0.elapsed().as_secs_f32() * 1e3;
    let snapshot_bytes = storage
        .read(clear_durable::snapshot::SNAPSHOT_FILE)
        .expect("snapshot file reads")
        .map_or(0, |b| b.len() as u64);
    eprintln!("snapshot: {snapshot_ms:.1} ms, {snapshot_bytes} bytes");

    // Crash recovery: reopen the directory cold and verify the recovered
    // engine serves the same bits as the engine that never went down.
    drop(durable);
    let t0 = Instant::now();
    let recovered = ServeEngine::recover_with(
        Arc::clone(&storage),
        bundle,
        lenient(),
        engine_config(),
        DurableConfig {
            snapshot_every_ops: 0,
        },
    )
    .expect("recovery succeeds");
    let recovery_ms = t0.elapsed().as_secs_f32() * 1e3;
    let (_, recovered_results) = predict_pass(&recovered, &requests);
    assert_eq!(
        on_results, recovered_results,
        "recovered engine output diverged from the pre-restart engine"
    );
    let recovered_tenants = recovered.user_ids().len();
    eprintln!("recovery: {recovery_ms:.1} ms, {recovered_tenants} tenants");

    let results = DurableBench {
        users: USERS,
        windows_per_request,
        onboard_ops_per_sec_wal_off,
        onboard_ops_per_sec_wal_on,
        onboard_overhead_x,
        predict_windows_per_sec_wal_off,
        predict_windows_per_sec_wal_on,
        predict_overhead_x,
        wal_appends,
        wal_bytes,
        snapshot_ms,
        snapshot_bytes,
        recovery_ms,
        recovered_tenants,
    };
    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_durable.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_durable_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    clear_obs::uninstall();
}
