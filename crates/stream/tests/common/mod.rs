//! Shared fixture for the streaming suites: one cloud training run
//! (quick profile) whose bundle every test reuses, plus raw-stream and
//! prediction-comparison helpers.

#![allow(dead_code)] // each test binary uses a different helper subset

use clear_core::config::ClearConfig;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, ClearBundle, Prediction, ServingPolicy};
use clear_features::{FeatureExtractor, FeatureMap};
use clear_sim::Recording;
use std::sync::OnceLock;

pub struct Fixture {
    pub config: ClearConfig,
    pub data: PreparedCohort,
    pub bundle: ClearBundle,
}

/// The shared cloud artifact: trained once per test binary on all but
/// the last subject of the quick cohort.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = ClearConfig::quick(17);
        // One-epoch fine-tuning keeps personalization cheap; these suites
        // compare behavior, not accuracy.
        config.finetune.epochs = 1;
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (_, initial) = subjects.split_last().expect("cohort is non-empty");
        let dep = deploy(&data, initial, &config);
        let bundle = dep.bundle().clone();
        Fixture {
            config,
            data,
            bundle,
        }
    })
}

/// A policy that never abstains on confidence, so clean maps receive
/// deterministic labels.
pub fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

/// Feature maps `[lo, hi)` of the subject at `rank` (modulo cohort
/// size), clamped to the subject's map count.
pub fn maps_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| f.data.maps()[i].clone())
        .collect()
}

/// Recordings `[lo, hi)` of the subject at `rank`, cloned for mutation
/// (artifact injection).
pub fn recordings_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<Recording> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| f.data.cohort().recordings()[i].clone())
        .collect()
}

/// Concatenates recordings into one continuous raw stream (the signal a
/// live session would see).
pub fn concat_stream(recordings: &[Recording]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut bvp = Vec::new();
    let mut gsr = Vec::new();
    let mut skt = Vec::new();
    for rec in recordings {
        bvp.extend_from_slice(&rec.bvp);
        gsr.extend_from_slice(&rec.gsr);
        skt.extend_from_slice(&rec.skt);
    }
    (bvp, gsr, skt)
}

/// The precomputed-feature-map path for a raw stream: batch-extract the
/// concatenated signal and chop the columns into consecutive
/// `windows_per_map`-window maps (trailing partial windows dropped) —
/// exactly the maps a `StreamSession` assembles.
pub fn batch_maps_of_stream(f: &Fixture, bvp: &[f32], gsr: &[f32], skt: &[f32]) -> Vec<FeatureMap> {
    let template = &f.data.cohort().recordings()[0];
    let rec = Recording {
        bvp: bvp.to_vec(),
        gsr: gsr.to_vec(),
        skt: skt.to_vec(),
        ..template.clone()
    };
    let big = FeatureExtractor::new(f.config.cohort.signal, f.config.window).feature_map(&rec);
    let wpm = f.bundle.windows;
    let mut maps = Vec::new();
    let mut w = 0;
    while w + wpm <= big.window_count() {
        let columns: Vec<Vec<f32>> = (w..w + wpm)
            .map(|k| {
                (0..big.feature_count())
                    .map(|feat| big.get(feat, k))
                    .collect()
            })
            .collect();
        maps.push(FeatureMap::from_columns(&columns));
        w += wpm;
    }
    maps
}

/// Bit-exact comparable form of a [`Prediction`] (f32 fields compared by
/// bit pattern; NaN-safe).
pub fn pred_key(p: &Prediction) -> (String, u32, u32, String, String) {
    (
        format!("{:?}", p.emotion),
        p.confidence.to_bits(),
        p.quality.to_bits(),
        format!("{:?}", p.served_by),
        format!("{:?}", p.imputed),
    )
}

/// Keys of a whole per-user result, error included.
pub fn result_key(
    result: &Result<Vec<Prediction>, clear_serve::ServeError>,
) -> Result<Vec<(String, u32, u32, String, String)>, String> {
    match result {
        Ok(preds) => Ok(preds.iter().map(pred_key).collect()),
        Err(e) => Err(e.to_string()),
    }
}
