//! # clear-sim — synthetic WEMAC-like physiological cohort generator
//!
//! The CLEAR paper evaluates on the WEMAC dataset: 47 volunteers watching
//! emotion-eliciting videos while a wearable records blood volume pulse
//! (BVP), galvanic skin response (GSR) and skin temperature (SKT), with
//! fear / non-fear labels. WEMAC is not redistributable, so this crate
//! builds the closest synthetic equivalent that exercises the same code
//! paths (see `DESIGN.md` §2 for the substitution argument):
//!
//! * Subjects are drawn from **four latent response archetypes** — the
//!   paper's own clustering finds 4 groups of sizes 17/13/7/7 — each with a
//!   distinct physiological phenotype (baseline autonomic tone) *and* a
//!   distinct fear-response style (which signals react, in which direction,
//!   and how strongly).
//! * Each subject adds **idiosyncratic offsets and gains** around their
//!   archetype, plus sensor noise; this is the structure that fine-tuning
//!   with a little labeled data can exploit.
//! * Each stimulus produces a [`Recording`] of raw BVP/GSR/SKT traces with
//!   physiologically plausible morphology (pulse waves with dicrotic bumps
//!   and HRV modulation; tonic + phasic electrodermal activity with
//!   Poisson SCR events; slow thermal drift), so the downstream feature
//!   extractor does real signal-processing work, not table lookups.
//!
//! Everything is seeded and deterministic.
//!
//! ## Example
//!
//! ```
//! use clear_sim::{Cohort, CohortConfig};
//!
//! let config = CohortConfig::small(7); // tiny cohort for doc tests
//! let cohort = Cohort::generate(&config);
//! assert_eq!(cohort.subjects().len(), 8); // 2 per archetype
//! let rec = &cohort.recordings()[0];
//! assert!(rec.bvp.len() > 0 && rec.gsr.len() > 0 && rec.skt.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod artifacts;
pub mod cohort;
pub mod drift;
pub mod signals;
pub mod stimulus;
pub mod stream;
pub mod subject;

pub use archetype::{ArchetypeId, ArchetypeParams};
pub use cohort::{Cohort, CohortConfig, Recording, SubjectId};
pub use drift::DriftScenario;
pub use signals::SignalConfig;
pub use stimulus::{EmotionCategory, Stimulus, StimulusProtocol};
pub use stream::{chunk_schedule, ChunkSizes};
pub use subject::SubjectProfile;

/// Binary emotion label of a stimulus, matching the paper's fear-detection
/// task on WEMAC ("fear and non-fear").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Emotion {
    /// Fear-eliciting stimulus.
    Fear,
    /// Any non-fear stimulus (joy, calm, disgust, ... — the paper collapses
    /// the other nine WEMAC labels into this class).
    NonFear,
}

impl Emotion {
    /// Class index used by the classifier: fear = 1, non-fear = 0.
    pub fn class_index(self) -> usize {
        match self {
            Emotion::Fear => 1,
            Emotion::NonFear => 0,
        }
    }

    /// Inverse of [`Emotion::class_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    pub fn from_class_index(index: usize) -> Self {
        match index {
            0 => Emotion::NonFear,
            1 => Emotion::Fear,
            _ => panic!("emotion class index must be 0 or 1, got {index}"),
        }
    }
}

impl std::fmt::Display for Emotion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Emotion::Fear => f.write_str("fear"),
            Emotion::NonFear => f.write_str("non-fear"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emotion_class_round_trip() {
        for e in [Emotion::Fear, Emotion::NonFear] {
            assert_eq!(Emotion::from_class_index(e.class_index()), e);
        }
    }

    #[test]
    #[should_panic(expected = "class index")]
    fn emotion_bad_index_panics() {
        let _ = Emotion::from_class_index(2);
    }

    #[test]
    fn emotion_display() {
        assert_eq!(Emotion::Fear.to_string(), "fear");
        assert_eq!(Emotion::NonFear.to_string(), "non-fear");
    }
}
