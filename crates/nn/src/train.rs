//! Mini-batch trainer with optional early stopping.
//!
//! Implements the training loop used for both cloud pre-training and edge
//! fine-tuning: shuffled mini-batches, gradient accumulation across the
//! batch, one optimizer step per batch, and (when a validation set is
//! given) retention of the best-validation-accuracy checkpoint — the
//! paper's "best-performing training checkpoints ... are saved".
//!
//! The trainer owns a single [`Workspace`] for the whole run: every
//! forward/backward in every epoch reuses the same activation and gradient
//! buffers, so steady-state training allocates nothing per sample.

use crate::data::Dataset;
use crate::loss::{cross_entropy, predict_class};
use crate::metrics::{ConfusionMatrix, FoldScore};
use crate::network::Network;
use crate::optim::{Optimizer, OptimizerConfig};
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradient accumulation length).
    pub batch_size: usize,
    /// Optimizer selection.
    pub optimizer: OptimizerConfig,
    /// Shuffling seed.
    pub seed: u64,
    /// Early-stopping patience in epochs (0 disables early stopping);
    /// requires a validation set to have any effect.
    pub patience: usize,
    /// When set, freeze all parameterized layers except the last `n`
    /// (transfer-learning head fine-tuning). `None` trains everything.
    #[serde(default)]
    pub trainable_tail: Option<usize>,
    /// L2-SP regularization strength: pulls weights towards their values
    /// at the *start of this training run* (the pre-trained point), the
    /// standard anchor against catastrophic drift when fine-tuning on very
    /// few samples. `None` disables it.
    #[serde(default)]
    pub l2_sp: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            optimizer: OptimizerConfig::adam(1e-3),
            seed: 0,
            patience: 8,
            trainable_tail: None,
            l2_sp: None,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation accuracy per epoch (empty without a validation set).
    pub val_accuracies: Vec<f32>,
    /// Epoch whose weights were kept (best validation accuracy, or the
    /// last epoch without validation).
    pub best_epoch: usize,
}

/// Trains `network` on `train` (optionally early-stopping on `val`).
///
/// On return, `network` holds the best checkpoint seen, and its dropout
/// draw counters reflect the masks consumed — a checkpoint saved after
/// this run continues the same mask stream when trained further.
///
/// # Panics
///
/// Panics if `train` is empty, `batch_size == 0`, or `epochs == 0`.
pub fn train(
    network: &mut Network,
    train: &Dataset,
    val: Option<&Dataset>,
    config: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(config.epochs > 0, "epoch count must be positive");

    let mut optimizer = Optimizer::new(config.optimizer);
    let mut ws = Workspace::new();
    let anchor: Option<Vec<f32>> = config.l2_sp.map(|_| network.parameters_flat());
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut val_accuracies = Vec::new();
    let mut best_epoch = config.epochs.saturating_sub(1);
    let mut best_acc = f32::NEG_INFINITY;
    let mut best_weights: Option<Vec<f32>> = None;
    let mut stale = 0usize;

    for epoch in 0..config.epochs {
        let _epoch_span = clear_obs::span(clear_obs::Stage::TrainEpoch);
        let order = train.shuffled_indices(config.seed.wrapping_add(epoch as u64));
        let mut total_loss = 0.0f32;
        for chunk in order.chunks(config.batch_size) {
            ws.zero_grads();
            for &i in chunk {
                let sample = &train.samples()[i];
                let (loss, grad) = {
                    let _span = clear_obs::span(clear_obs::Stage::NnForward);
                    let logits = network.forward(&sample.input, true, &mut ws);
                    cross_entropy(logits, sample.label)
                };
                total_loss += loss;
                let _span = clear_obs::span(clear_obs::Stage::NnBackward);
                network.backward(&grad, &mut ws);
            }
            if let Some(tail) = config.trainable_tail {
                network.mask_grads_to_tail(&mut ws, tail);
            }
            if let (Some(lambda), Some(w0)) = (config.l2_sp, anchor.as_deref()) {
                // Add λ(w - w0) per sample so the optimizer's batch
                // averaging leaves an effective pull of λ(w - w0).
                let scale = lambda * chunk.len() as f32;
                let mut offset = 0usize;
                network.visit_params_grads(&mut ws, &mut |p, g| {
                    for i in 0..p.len() {
                        // Frozen layers keep zero gradients: do not wake
                        // them up with the regularizer (they sit at w0
                        // anyway, so their pull is zero).
                        if g[i] != 0.0 || (p[i] - w0[offset + i]) != 0.0 {
                            g[i] += scale * (p[i] - w0[offset + i]);
                        }
                    }
                    offset += p.len();
                });
            }
            optimizer.step(network, &mut ws, chunk.len() as f32);
        }
        epoch_losses.push(total_loss / train.len() as f32);
        clear_obs::counter_add(clear_obs::counters::TRAIN_EPOCHS, 1);

        if let Some(val_set) = val {
            let score = evaluate(network, val_set);
            val_accuracies.push(score.accuracy);
            if score.accuracy > best_acc {
                best_acc = score.accuracy;
                best_epoch = epoch;
                best_weights = Some(network.parameters_flat());
                stale = 0;
            } else {
                stale += 1;
                if config.patience > 0 && stale >= config.patience {
                    break;
                }
            }
        }
    }
    if let Some(w) = best_weights {
        network.set_parameters_flat(&w);
    }
    // Persist the live mask stream position into the (serializable)
    // network so the next training run draws fresh masks.
    network.sync_dropout_counters(&ws);
    TrainReport {
        epoch_losses,
        val_accuracies,
        best_epoch,
    }
}

/// Evaluates `network` on `data`, returning accuracy and fear-class F1.
///
/// The network is shared read-only; an internal workspace holds the
/// per-call state.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn evaluate(network: &Network, data: &Dataset) -> FoldScore {
    let cm = confusion(network, data);
    FoldScore {
        accuracy: cm.accuracy(),
        f1: cm.f1(1.min(cm.classes() - 1)),
    }
}

/// Full confusion matrix of `network` on `data`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn confusion(network: &Network, data: &Dataset) -> ConfusionMatrix {
    assert!(!data.is_empty(), "evaluation set is empty");
    let classes = data
        .samples()
        .iter()
        .map(|s| s.label)
        .max()
        .map_or(2, |m| (m + 1).max(2));
    let mut cm = ConfusionMatrix::new(classes);
    let mut ws = Workspace::new();
    for sample in data.iter() {
        let pred = {
            let _span = clear_obs::span(clear_obs::Stage::NnForward);
            predict_class(network.forward(&sample.input, false, &mut ws))
        };
        cm.record(sample.label, pred);
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::cnn_lstm;
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Tiny synthetic task: class 1 maps have a hot top-left block.
    fn toy_maps(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..n {
            let label = i % 2;
            let mut data = vec![0.0f32; 30 * 5];
            for v in &mut data {
                *v = rng.gen_range(-0.3..0.3);
            }
            if label == 1 {
                for r in 0..10 {
                    for c in 0..5 {
                        data[r * 5 + c] += 1.2;
                    }
                }
            }
            d.push(Tensor::from_vec(&[1, 30, 5], data), label);
        }
        d
    }

    #[test]
    fn training_learns_separable_maps() {
        let train_set = toy_maps(40, 1);
        let test_set = toy_maps(20, 2);
        let mut net = cnn_lstm(30, 5, 2, 7);
        let config = TrainConfig {
            epochs: 15,
            batch_size: 8,
            ..Default::default()
        };
        let report = train(&mut net, &train_set, None, &config);
        assert_eq!(report.epoch_losses.len(), 15);
        assert!(report.epoch_losses[14] < report.epoch_losses[0]);
        let score = evaluate(&net, &test_set);
        assert!(score.accuracy > 0.9, "accuracy {}", score.accuracy);
        assert!(score.f1 > 0.85, "f1 {}", score.f1);
    }

    #[test]
    fn early_stopping_keeps_best_checkpoint() {
        let train_set = toy_maps(30, 3);
        let val_set = toy_maps(16, 4);
        let mut net = cnn_lstm(30, 5, 2, 9);
        let config = TrainConfig {
            epochs: 20,
            batch_size: 8,
            patience: 3,
            ..Default::default()
        };
        let report = train(&mut net, &train_set, Some(&val_set), &config);
        assert!(!report.val_accuracies.is_empty());
        let best_seen = report
            .val_accuracies
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        // Restored checkpoint reproduces the best validation accuracy.
        let score = evaluate(&net, &val_set);
        assert!((score.accuracy - best_seen).abs() < 1e-6);
        assert_eq!(
            report.val_accuracies[report.best_epoch], best_seen,
            "best_epoch must index the best accuracy"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_maps(16, 5);
        let config = TrainConfig {
            epochs: 3,
            batch_size: 4,
            ..Default::default()
        };
        let mut a = cnn_lstm(30, 5, 2, 11);
        let mut b = cnn_lstm(30, 5, 2, 11);
        let ra = train(&mut a, &data, None, &config);
        let rb = train(&mut b, &data, None, &config);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a.parameters_flat(), b.parameters_flat());
    }

    #[test]
    fn sequential_runs_advance_the_mask_stream() {
        // Two consecutive train() calls on one network must not replay the
        // same dropout masks: the draw counter synced back after run 1
        // seeds run 2 differently, exactly as the pre-refactor layer-held
        // counter did.
        let data = toy_maps(16, 5);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let mut seq = cnn_lstm(30, 5, 2, 17);
        let r1 = train(&mut seq, &data, None, &config);
        let r2 = train(&mut seq, &data, None, &config);
        assert_ne!(
            r1.epoch_losses, r2.epoch_losses,
            "second run must see fresh dropout masks"
        );
        let json = seq.to_json().unwrap();
        let restored = Network::from_json(&json).unwrap();
        assert_eq!(seq.parameters_flat(), restored.parameters_flat());
    }

    #[test]
    fn frozen_tail_leaves_early_layers_untouched() {
        let data = toy_maps(12, 8);
        let mut net = cnn_lstm(30, 5, 2, 13);
        let before = net.parameters_flat();
        let config = TrainConfig {
            epochs: 3,
            batch_size: 4,
            trainable_tail: Some(1), // dense head only
            ..Default::default()
        };
        train(&mut net, &data, None, &config);
        let after = net.parameters_flat();
        // The dense head is the last 2·48 + 2 = 98 parameters.
        let head = 98;
        let frozen = &before[..before.len() - head];
        let frozen_after = &after[..after.len() - head];
        assert_eq!(frozen, frozen_after, "frozen layers must not move");
        assert_ne!(
            &before[before.len() - head..],
            &after[after.len() - head..],
            "head must train"
        );
    }

    #[test]
    fn confusion_matrix_shape() {
        let data = toy_maps(10, 6);
        let net = cnn_lstm(30, 5, 2, 1);
        let cm = confusion(&net, &data);
        assert_eq!(cm.classes(), 2);
        assert_eq!(cm.total(), 10);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_panics() {
        let mut net = cnn_lstm(30, 5, 2, 1);
        let _ = train(&mut net, &Dataset::new(), None, &TrainConfig::default());
    }
}
