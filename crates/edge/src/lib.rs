//! # clear-edge — edge platform simulator
//!
//! The paper deploys CLEAR's cluster models on two real edge platforms —
//! the Coral Edge TPU Dev Board and a Raspberry Pi with an Intel Movidius
//! NCS2 — and reports accuracy, mean time consumption (MTC) and mean power
//! consumption (MPC) for re-training and test (Table II). Without the
//! hardware, this crate simulates both devices with models rather than
//! constants-only lookup tables:
//!
//! * **Numeric precision** ([`clear_nn::quantize`]): checkpoint weights are
//!   lowered to each device's native format (TPU → int8, NCS2 → fp16, GPU →
//!   fp32) before inference, and *re-lowered after every optimizer step*
//!   during on-device fine-tuning — so the TPU's 8-bit accuracy penalty and
//!   the NCS2's near-baseline behaviour emerge from arithmetic, exactly as
//!   the paper attributes them ("the performance of TPU is lower than
//!   baseline due to it only support for only 8-bit data").
//! * **Latency** ([`device`]): a roofline-style model — per-inference
//!   runtime overhead plus FLOPs over effective device throughput — whose
//!   per-device constants are calibrated once against the paper's Table II
//!   and then *reused for every experiment*; the FLOPs come from the actual
//!   network via [`clear_nn::summary`], so architecture changes change the
//!   simulated timings faithfully.
//! * **Power/energy** ([`device`]): baseline (idle) draw plus a
//!   task-dependent active delta, yielding MPC for re-training, test and
//!   baseline rows.
//! * **Fault tolerance** ([`fault`]): seeded transient / memory /
//!   brownout fault injection, bounded retry with exponential backoff,
//!   and fallback to the shared cluster checkpoint — the availability
//!   story a field deployment needs.
//!
//! ## Example
//!
//! ```
//! use clear_edge::{Device, EdgeDeployment};
//! use clear_nn::network::cnn_lstm;
//! use clear_nn::tensor::Tensor;
//!
//! let net = cnn_lstm(123, 9, 2, 1);
//! let mut deployment = EdgeDeployment::new(net, Device::CoralTpu, &[1, 123, 9]);
//! let logits = deployment.infer(&Tensor::zeros(&[1, 123, 9]));
//! assert_eq!(logits.shape(), &[2]);
//! // Simulated single-inference latency is tens of milliseconds on a TPU.
//! assert!(deployment.test_time_ms() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod deploy;
pub mod device;
pub mod fault;
pub mod memory;

pub use battery::{estimate as estimate_battery, BatteryEstimate, DutyCycle};
pub use deploy::{EdgeDeployment, FineTuneOutcome, Measurement};
pub use device::{Device, DeviceSpec};
pub use fault::{
    Fault, FaultConfig, FaultInjector, ResilientDeployment, RetryPolicy, ServeOutcome, ServeStats,
};
pub use memory::{
    footprint, personalized_cache_capacity, streaming_session_budget, MemoryBudget,
    MemoryFootprint,
};
