//! Iterative subset-resampling refinement of Global Clustering.
//!
//! Implements the refinement loop of Gutiérrez-Martín et al. [19] as used
//! by the paper (§III-A2): after an initial k-means solution, *"training
//! subsets of data are repeatedly sampled, and the centroids are
//! recalculated. Users are reassigned if their current cluster is no longer
//! the closest based on the updated centroids."* The resampling makes the
//! final partition robust to outlier users dominating a centroid.

use crate::kmeans::{nearest_centroid, KMeans, KMeansConfig, KMeansModel};
use crate::{centroid_of, distance_sq};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Base k-means configuration (k, restarts, seed).
    pub kmeans: KMeansConfig,
    /// Number of resampling rounds.
    pub rounds: usize,
    /// Fraction of each cluster's members sampled per round, in `(0, 1]`.
    pub subset_fraction: f32,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            kmeans: KMeansConfig::default(),
            rounds: 25,
            subset_fraction: 0.8,
        }
    }
}

/// Fits the refined clustering: k-means initialization followed by
/// subset-resampled centroid updates with reassignment; the lowest-inertia
/// partition seen across rounds is returned.
///
/// # Panics
///
/// Panics under the same conditions as [`KMeans::fit`], or when
/// `subset_fraction` is outside `(0, 1]`.
pub fn refined_fit(points: &[Vec<f32>], config: &RefineConfig) -> KMeansModel {
    let _span = clear_obs::span(clear_obs::Stage::ClusterFit);
    assert!(
        config.subset_fraction > 0.0 && config.subset_fraction <= 1.0,
        "subset_fraction must lie in (0, 1]"
    );
    let base = KMeans::new(config.kmeans).fit(points);
    let k = base.k();
    let mut rng = SmallRng::seed_from_u64(config.kmeans.seed.wrapping_add(0xC0FFEE));

    let mut centroids = base.centroids().to_vec();
    let mut assignments = base.assignments().to_vec();
    let mut best = base;

    for _ in 0..config.rounds {
        // Sample a subset of each cluster and recompute its centroid from
        // the subset only.
        for c in 0..k {
            let mut members: Vec<usize> = assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == c)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            members.shuffle(&mut rng);
            let take = ((members.len() as f32 * config.subset_fraction).ceil() as usize)
                .clamp(1, members.len());
            let subset: Vec<&[f32]> = members[..take]
                .iter()
                .map(|&i| points[i].as_slice())
                .collect();
            centroids[c] = centroid_of(&subset);
        }
        // Reassign all users against the refreshed centroids.
        for (i, p) in points.iter().enumerate() {
            assignments[i] = nearest_centroid(p, &centroids);
        }
        // Stabilize: recompute centroids as full-member means, giving a
        // proper partition to score.
        for c in 0..k {
            let members: Vec<&[f32]> = points
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(p, _)| p.as_slice())
                .collect();
            if !members.is_empty() {
                centroids[c] = centroid_of(&members);
            }
        }
        let inertia: f32 = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| distance_sq(p, &centroids[a]))
            .sum();
        if inertia < best.inertia() {
            best = KMeansModel::from_centroids(centroids.clone(), points);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs_with_outliers(seed: u64) -> Vec<Vec<f32>> {
        let centers = [[0.0f32, 0.0], [12.0, 0.0], [0.0, 12.0], [12.0, 12.0]];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..12 {
                pts.push(vec![
                    c[0] + rng.gen_range(-1.2..1.2f32),
                    c[1] + rng.gen_range(-1.2..1.2f32),
                ]);
            }
            // One far outlier per blob.
            pts.push(vec![c[0] + 4.0, c[1] + 4.0]);
        }
        pts
    }

    #[test]
    fn refinement_never_worsens_inertia() {
        let pts = blobs_with_outliers(3);
        let config = RefineConfig::default();
        let base = KMeans::new(config.kmeans).fit(&pts);
        let refined = refined_fit(&pts, &config);
        assert!(refined.inertia() <= base.inertia() + 1e-3);
    }

    #[test]
    fn refined_assignments_minimize_distance() {
        let pts = blobs_with_outliers(5);
        let model = refined_fit(&pts, &RefineConfig::default());
        for (p, &a) in pts.iter().zip(model.assignments()) {
            let da = distance_sq(p, &model.centroids()[a]);
            for c in model.centroids() {
                assert!(da <= distance_sq(p, c) + 1e-4);
            }
        }
    }

    #[test]
    fn refinement_is_deterministic() {
        let pts = blobs_with_outliers(7);
        let a = refined_fit(&pts, &RefineConfig::default());
        let b = refined_fit(&pts, &RefineConfig::default());
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn full_subset_fraction_behaves_like_lloyd() {
        let pts = blobs_with_outliers(9);
        let config = RefineConfig {
            subset_fraction: 1.0,
            rounds: 5,
            ..Default::default()
        };
        let model = refined_fit(&pts, &config);
        assert_eq!(model.k(), 4);
        assert!(model.inertia().is_finite());
    }

    #[test]
    #[should_panic(expected = "subset_fraction")]
    fn invalid_fraction_panics() {
        let pts = vec![vec![0.0f32]; 8];
        let config = RefineConfig {
            subset_fraction: 0.0,
            ..Default::default()
        };
        let _ = refined_fit(&pts, &config);
    }
}
