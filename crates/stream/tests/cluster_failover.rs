//! Cluster-backed streaming across failover: a mid-session leader kill
//! (and even a full-fleet outage with later recovery) loses no
//! prediction, duplicates none, and yields a prediction stream
//! bit-identical to a cluster that never failed.

mod common;

use clear_cluster::{
    ClusterConfig, FaultProfile, ReplicationConfig, ServeCluster, SimNet,
};
use clear_stream::{ClusterPump, SessionConfig};
use common::*;
use std::collections::BTreeMap;

type PredKey = (String, u32, u32, String, String);

const MEMBERS: [usize; 3] = [0, 1, 2];

fn session_config(f: &Fixture) -> SessionConfig {
    SessionConfig::new(f.config.cohort.signal, f.config.window, f.bundle.windows)
}

fn build_cluster(f: &Fixture) -> ServeCluster {
    ServeCluster::new(
        f.bundle.clone(),
        lenient(),
        &MEMBERS,
        ClusterConfig {
            partitions: 4,
            vnodes: 32,
            replication: ReplicationConfig {
                replicas: 2,
                write_quorum: 1,
            },
            ..ClusterConfig::default()
        },
        Box::new(SimNet::new(5, FaultProfile::reliable())),
    )
    .expect("cluster builds")
}

/// Users under stream, keyed to their cohort rank.
const USERS: [(&str, usize); 3] = [("amy", 0), ("bob", 1), ("cal", 2)];

/// Each user's raw stream: a few recordings past the onboarding set,
/// concatenated.
fn streams(f: &Fixture) -> BTreeMap<String, (Vec<f32>, Vec<f32>, Vec<f32>)> {
    USERS
        .iter()
        .map(|&(user, rank)| {
            (
                user.to_string(),
                concat_stream(&recordings_of(f, rank, 3, 7)),
            )
        })
        .collect()
}

fn slice(v: &[f32], tick: usize, ticks: usize) -> &[f32] {
    let per = (v.len() + ticks - 1) / ticks.max(1);
    let lo = (tick * per).min(v.len());
    let hi = ((tick + 1) * per).min(v.len());
    &v[lo..hi]
}

const TICKS: usize = 12;

/// Streams every user through a [`ClusterPump`] over `cluster`,
/// invoking `fault` after each tick's ingests. Returns the per-user
/// delivered prediction keys (in delivery order), the number of failed
/// drain results observed, and the pump for post-run inspection.
fn run_streams(
    f: &Fixture,
    cluster: &mut ServeCluster,
    mut fault: impl FnMut(usize, &mut ServeCluster),
) -> (BTreeMap<String, Vec<PredKey>>, usize, ClusterPump) {
    for &(user, rank) in &USERS {
        cluster
            .onboard(user, &maps_of(f, rank, 0, 3))
            .expect("onboarding succeeds before streaming");
    }
    let mut pump = ClusterPump::new(session_config(f));
    let streams = streams(f);
    for user in streams.keys() {
        pump.open(user).expect("open session");
    }
    let mut out: BTreeMap<String, Vec<PredKey>> = BTreeMap::new();
    let mut failed_drains = 0;
    let mut collect = |drains: Vec<clear_stream::ClusterSessionDrain>,
                       failed: &mut usize,
                       out: &mut BTreeMap<String, Vec<PredKey>>| {
        for d in drains {
            match d.result {
                Ok(preds) => out
                    .entry(d.user)
                    .or_default()
                    .extend(preds.iter().map(pred_key)),
                Err(_) => *failed += 1,
            }
        }
    };
    for tick in 0..TICKS {
        for (user, (bvp, gsr, skt)) in &streams {
            pump.ingest(
                user,
                slice(bvp, tick, TICKS),
                slice(gsr, tick, TICKS),
                slice(skt, tick, TICKS),
            )
            .expect("ingest");
        }
        fault(tick, cluster);
        if tick % 2 == 1 {
            collect(pump.drain(cluster), &mut failed_drains, &mut out);
        }
    }
    for user in streams.keys() {
        pump.close(user).expect("close");
    }
    for _ in 0..3 {
        collect(pump.drain(cluster), &mut failed_drains, &mut out);
    }
    (out, failed_drains, pump)
}

#[test]
fn leader_kill_mid_session_loses_and_duplicates_nothing() {
    let f = fixture();

    let mut oracle_cluster = build_cluster(f);
    let (oracle, oracle_failures, _) = run_streams(f, &mut oracle_cluster, |_, _| {});
    assert_eq!(oracle_failures, 0, "the reliable run must never fail a drain");
    assert!(
        oracle.values().any(|v| !v.is_empty()),
        "the workload must actually produce predictions"
    );

    let mut c = build_cluster(f);
    let victim_partition = c.partition_of("amy");
    let (failed_run, _, pump) = run_streams(f, &mut c, |tick, cluster| {
        if tick == 5 {
            let leader = cluster
                .leader_of_partition(victim_partition)
                .expect("partition has a leader");
            cluster.kill_member(leader).expect("crash fails over");
        }
    });

    // Zero lost, zero duplicated: the delivered stream is bit-identical
    // to the never-failed run, per user, in order.
    assert_eq!(failed_run, oracle, "failover changed delivered prediction bits");
    for (user, _) in USERS {
        assert_eq!(pump.pending_maps_of(user), 0, "{user} left maps undelivered");
    }
}

#[test]
fn full_outage_redelivers_to_recovered_leaders_without_loss_or_dups() {
    let f = fixture();

    let mut oracle_cluster = build_cluster(f);
    let (oracle, _, _) = run_streams(f, &mut oracle_cluster, |_, _| {});

    let mut c = build_cluster(f);
    let (failed_run, failed_drains, pump) = run_streams(f, &mut c, |tick, cluster| {
        if tick == 5 {
            // The whole fleet goes down: every partition becomes
            // unavailable and drains must queue, not drop.
            for m in MEMBERS {
                cluster.kill_member(m).expect("crash handled");
            }
        }
        if tick == 9 {
            for m in MEMBERS {
                cluster.restart_member(m).expect("restart handled");
            }
        }
    });

    assert!(
        failed_drains > 0,
        "drains during the outage must surface typed failures, not block"
    );
    // Redelivery after recovery: nothing lost, nothing duplicated,
    // bit-identical to the undisturbed run.
    assert_eq!(failed_run, oracle, "outage redelivery changed prediction bits");
    for (user, _) in USERS {
        assert_eq!(
            pump.pending_maps_of(user),
            0,
            "{user} left maps undelivered after recovery"
        );
        assert!(
            pump.delivered_through(user) > 0,
            "{user} never had a delivery acknowledged"
        );
    }
}
