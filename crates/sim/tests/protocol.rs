//! Tests of protocol-driven cohort generation.

use clear_sim::{Cohort, CohortConfig, Emotion, EmotionCategory, StimulusProtocol};

fn config() -> CohortConfig {
    CohortConfig {
        recordings_per_subject: 10,
        ..CohortConfig::small(9)
    }
}

#[test]
fn protocol_cohort_carries_categories() {
    let protocol = StimulusProtocol::wemac_like(10);
    let cohort = Cohort::generate_with_protocol(&config(), &protocol);
    assert_eq!(cohort.recordings().len(), 80);
    for (i, rec) in cohort.recordings().iter().enumerate() {
        let clip = protocol.clips()[i % 10];
        assert_eq!(rec.category, Some(clip.category));
        assert_eq!(rec.emotion, clip.label());
    }
}

#[test]
fn protocol_cohort_keeps_same_roster_as_fast_path() {
    let cfg = config();
    let protocol = StimulusProtocol::wemac_like(10);
    let fast = Cohort::generate(&cfg);
    let rich = Cohort::generate_with_protocol(&cfg, &protocol);
    for (a, b) in fast.subjects().iter().zip(rich.subjects()) {
        assert_eq!(a, b);
    }
}

#[test]
fn calm_clips_evoke_less_than_fear_clips() {
    let protocol = StimulusProtocol::wemac_like(10);
    let cohort = Cohort::generate_with_protocol(&config(), &protocol);
    let mean_intensity = |label: Emotion| -> f32 {
        let v: Vec<f32> = cohort
            .recordings()
            .iter()
            .filter(|r| r.emotion == label)
            .map(|r| r.intensity)
            .collect();
        v.iter().sum::<f32>() / v.len() as f32
    };
    // Fear clips carry the canonical high arousal; the mixed non-fear set
    // averages lower.
    assert!(mean_intensity(Emotion::Fear) > mean_intensity(Emotion::NonFear));
}

#[test]
#[should_panic(expected = "protocol length")]
fn mismatched_protocol_length_panics() {
    let protocol = StimulusProtocol::wemac_like(4);
    let _ = Cohort::generate_with_protocol(&config(), &protocol);
}

#[test]
fn ten_categories_appear_across_long_protocol() {
    let protocol = StimulusProtocol::wemac_like(20);
    let distinct: std::collections::HashSet<EmotionCategory> =
        protocol.clips().iter().map(|c| c.category).collect();
    assert_eq!(distinct.len(), 10);
}
