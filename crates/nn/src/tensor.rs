//! A minimal row-major `f32` tensor.
//!
//! Inter-layer data in this stack is small (feature maps of a few thousand
//! elements), so the tensor favors clarity over blocking/vectorization
//! tricks: contiguous `Vec<f32>` storage, explicit shape, and checked
//! indexing helpers for ranks 1–3.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor rank must be at least 1");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive"
        );
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(!shape.is_empty(), "tensor rank must be at least 1");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the raw data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Resizes the tensor in place to `shape`, reusing the existing
    /// allocation when capacity allows. Newly added elements are zero;
    /// retained elements keep their (stale) values — callers are expected
    /// to overwrite the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero dimension.
    pub fn resize(&mut self, shape: &[usize]) {
        assert!(!shape.is_empty(), "tensor rank must be at least 1");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive"
        );
        let numel = shape.iter().product();
        self.data.resize(numel, 0.0);
        if self.shape != shape {
            self.shape.clear();
            self.shape.extend_from_slice(shape);
        }
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|e| *e = v);
    }

    /// Makes this tensor an element-wise copy of `src` (shape and data),
    /// reusing the existing allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize(src.shape());
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes in place (element count must be preserved).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape must preserve element count"
        );
        self.shape = shape.to_vec();
    }

    /// 1D element access.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 1 or the index is out of bounds.
    pub fn at1(&self, i: usize) -> f32 {
        assert_eq!(self.rank(), 1, "at1 requires a rank-1 tensor");
        self.data[i]
    }

    /// 2D element access (`[rows, cols]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or an index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        assert!(
            r < self.shape[0] && c < self.shape[1],
            "index out of bounds"
        );
        self.data[r * self.shape[1] + c]
    }

    /// 3D element access (`[ch, rows, cols]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or an index is out of bounds.
    pub fn at3(&self, ch: usize, r: usize, c: usize) -> f32 {
        assert_eq!(self.rank(), 3, "at3 requires a rank-3 tensor");
        let (d1, d2) = (self.shape[1], self.shape[2]);
        assert!(
            ch < self.shape[0] && r < d1 && c < d2,
            "index out of bounds"
        );
        self.data[(ch * d1 + r) * d2 + c]
    }

    /// Sets a 3D element.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tensor::at3`].
    pub fn set3(&mut self, ch: usize, r: usize, c: usize, v: f32) {
        assert_eq!(self.rank(), 3, "set3 requires a rank-3 tensor");
        let (d1, d2) = (self.shape[1], self.shape[2]);
        assert!(
            ch < self.shape[0] && r < d1 && c < d2,
            "index out of bounds"
        );
        self.data[(ch * d1 + r) * d2 + c] = v;
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Largest element's index (rank 1), ties to the first.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 1.
    pub fn argmax(&self) -> usize {
        assert_eq!(self.rank(), 1, "argmax requires a rank-1 tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 5.0);
        assert_eq!(t.at2(0, 0), 0.0);
    }

    #[test]
    fn three_d_layout_is_row_major() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 1), 3.0);
        assert_eq!(t.at3(1, 0, 0), 4.0);
        assert_eq!(t.at3(1, 1, 1), 7.0);
    }

    #[test]
    fn set3_then_read() {
        let mut t = Tensor::zeros(&[1, 2, 2]);
        t.set3(0, 1, 0, 9.0);
        assert_eq!(t.at3(0, 1, 0), 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        t.reshape(&[6]);
        assert_eq!(t.rank(), 1);
        assert_eq!(t.at1(5), 5.0);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn bad_reshape_panics() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.reshape(&[3]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn map_and_argmax() {
        let t = Tensor::from_vec(&[3], vec![1.0, 5.0, 3.0]);
        assert_eq!(t.argmax(), 1);
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.as_slice(), &[2.0, 10.0, 6.0]);
    }

    #[test]
    fn display_shows_shape() {
        assert_eq!(Tensor::zeros(&[2, 3]).to_string(), "Tensor[2, 3]");
    }
}
