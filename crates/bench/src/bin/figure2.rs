//! Regenerates Figure 2: the CNN-LSTM architecture for emotion
//! recognition from 2D feature maps, rendered as a layer-by-layer summary
//! (shapes, parameters, FLOPs) — the faithful machine-readable equivalent
//! of the paper's architecture diagram.

use clear_bench::config_from_args;
use clear_features::FEATURE_COUNT;
use clear_nn::network::{cnn_lstm, cnn_lstm_compact};
use clear_nn::summary::summarize;

fn main() {
    let config = config_from_args();
    let windows = config
        .window
        .window_count(config.cohort.signal.stimulus_secs);
    println!(
        "FIGURE 2 — CNN-LSTM architecture for {} x {} feature maps\n",
        FEATURE_COUNT, windows
    );
    println!("paper preset (6/12 channels, 48 LSTM units):");
    let net = cnn_lstm(FEATURE_COUNT, windows, 2, config.seed);
    println!(
        "{}",
        summarize(&net, &[1, FEATURE_COUNT, windows]).to_table()
    );
    println!("compact preset used by the single-core experiment harness:");
    let compact = cnn_lstm_compact(FEATURE_COUNT, windows, 2, config.seed);
    println!(
        "{}",
        summarize(&compact, &[1, FEATURE_COUNT, windows]).to_table()
    );
}
