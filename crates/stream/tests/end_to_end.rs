//! End-to-end: raw-signal sessions through `clear-stream` yield
//! predictions identical to the precomputed-feature-map path — including
//! abstain / quarantine / imputation outcomes on injected flatline and
//! channel-loss artifacts.

mod common;

use clear_serve::{EngineConfig, ServeEngine, ServeRequest};
use clear_sim::artifacts::{corrupt, ArtifactConfig};
use clear_sim::{chunk_schedule, SignalConfig};
use clear_stream::{PumpConfig, SessionConfig, StreamPump};
use common::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn engine(f: &Fixture) -> Arc<ServeEngine> {
    Arc::new(ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig::default(),
    ))
}

fn session_config(f: &Fixture) -> SessionConfig {
    SessionConfig::new(f.config.cohort.signal, f.config.window, f.bundle.windows)
}

/// Streams each user's raw signal through a pump (seeded jittered chunks,
/// interleaved across users, drained every few pushes) and returns the
/// concatenated per-user prediction keys.
fn stream_predictions(
    f: &Fixture,
    engine: Arc<ServeEngine>,
    streams: &BTreeMap<String, (Vec<f32>, Vec<f32>, Vec<f32>)>,
) -> BTreeMap<String, Vec<(String, u32, u32, String, String)>> {
    let pump = StreamPump::new(engine, PumpConfig::new(session_config(f)));
    for user in streams.keys() {
        pump.open(user).expect("open session");
    }
    let signal = f.config.cohort.signal;
    let mut plans: BTreeMap<&str, _> = BTreeMap::new();
    for (i, (user, (bvp, _, _))) in streams.iter().enumerate() {
        let total = SignalConfig {
            stimulus_secs: bvp.len() as f32 / signal.fs_bvp,
            ..signal
        };
        plans.insert(user.as_str(), (chunk_schedule(&total, 0.5, 3.0, i as u64), 0usize, 0usize, 0usize));
    }
    let mut out: BTreeMap<String, Vec<_>> = BTreeMap::new();
    let max_ticks = plans.values().map(|(p, _, _, _)| p.len()).max().unwrap();
    for tick in 0..max_ticks {
        for (user, (bvp, gsr, skt)) in streams.iter() {
            let (plan, ob, og, os) = plans.get_mut(user.as_str()).unwrap();
            if tick >= plan.len() {
                continue;
            }
            let c = plan[tick];
            let nb = (*ob + c.bvp).min(bvp.len());
            let ng = (*og + c.gsr).min(gsr.len());
            let ns = (*os + c.skt).min(skt.len());
            pump.ingest(user, &bvp[*ob..nb], &gsr[*og..ng], &skt[*os..ns])
                .expect("ingest");
            *ob = nb;
            *og = ng;
            *os = ns;
        }
        if tick % 3 == 2 {
            for drain in pump.drain() {
                let preds = drain.result.expect("serving error during drain");
                out.entry(drain.user)
                    .or_default()
                    .extend(preds.iter().map(pred_key));
            }
        }
    }
    for drain in pump.drain() {
        let preds = drain.result.expect("serving error during final drain");
        out.entry(drain.user)
            .or_default()
            .extend(preds.iter().map(pred_key));
    }
    out
}

/// The reference path: batch-extract each stream, chop into bundle-shaped
/// maps, serve through `predict_many` directly.
fn precomputed_predictions(
    f: &Fixture,
    engine: Arc<ServeEngine>,
    streams: &BTreeMap<String, (Vec<f32>, Vec<f32>, Vec<f32>)>,
) -> BTreeMap<String, Vec<(String, u32, u32, String, String)>> {
    let maps: BTreeMap<&str, Vec<clear_features::FeatureMap>> = streams
        .iter()
        .map(|(user, (bvp, gsr, skt))| {
            (user.as_str(), batch_maps_of_stream(f, bvp, gsr, skt))
        })
        .collect();
    let requests: Vec<ServeRequest<'_>> = maps
        .iter()
        .map(|(user, maps)| ServeRequest {
            user,
            maps: maps.as_slice(),
        })
        .collect();
    let results = engine.predict_many(&requests);
    maps.keys()
        .zip(results)
        .map(|(user, result)| {
            (
                user.to_string(),
                result
                    .expect("serving error on precomputed path")
                    .iter()
                    .map(pred_key)
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn clean_streams_match_the_precomputed_map_path_exactly() {
    let f = fixture();
    let mut streams = BTreeMap::new();
    for rank in 0..4 {
        let recs = recordings_of(f, rank, 2, 6);
        streams.insert(format!("user-{rank}"), concat_stream(&recs));
    }

    let live_engine = engine(f);
    let pre_engine = engine(f);
    for user in streams.keys() {
        let rank: usize = user.strip_prefix("user-").unwrap().parse().unwrap();
        live_engine
            .onboard(user, &maps_of(f, rank, 0, 2))
            .expect("onboard live");
        pre_engine
            .onboard(user, &maps_of(f, rank, 0, 2))
            .expect("onboard pre");
    }

    let live = stream_predictions(f, Arc::clone(&live_engine), &streams);
    let pre = precomputed_predictions(f, pre_engine, &streams);

    assert_eq!(live.len(), streams.len(), "every user produced predictions");
    assert_eq!(live, pre, "streamed predictions diverged from batch path");
    // Sanity: each user served 4 recordings' worth of windows — at least
    // one full map each (42 s recordings, 6-window maps).
    for (user, preds) in &live {
        assert!(
            preds.len() >= f.bundle.windows,
            "{user} served only {} windows",
            preds.len()
        );
    }
}

#[test]
fn corrupted_streams_reproduce_gated_outcomes_identically() {
    let f = fixture();
    // Severe artifacts: flatlines, dropouts and whole-channel loss drive
    // the quarantine / imputation / abstention gates.
    let signal = f.config.cohort.signal;
    let mut streams = BTreeMap::new();
    for rank in 0..3 {
        let art = ArtifactConfig {
            channel_loss_probability: 0.5,
            ..ArtifactConfig::severity(0.9, 100 + rank as u64)
        };
        let recs: Vec<_> = recordings_of(f, rank, 2, 5)
            .iter()
            .map(|r| corrupt(r, signal.fs_bvp, signal.fs_gsr, signal.fs_skt, &art))
            .collect();
        streams.insert(format!("user-{rank}"), concat_stream(&recs));
    }

    let live_engine = engine(f);
    let pre_engine = engine(f);
    for user in streams.keys() {
        let rank: usize = user.strip_prefix("user-").unwrap().parse().unwrap();
        live_engine
            .onboard(user, &maps_of(f, rank, 0, 2))
            .expect("onboard live");
        pre_engine
            .onboard(user, &maps_of(f, rank, 0, 2))
            .expect("onboard pre");
    }

    let live = stream_predictions(f, Arc::clone(&live_engine), &streams);
    let pre = precomputed_predictions(f, pre_engine, &streams);
    assert_eq!(live, pre, "gated outcomes diverged on corrupted streams");

    // The artifacts actually exercised the degraded paths: somewhere an
    // abstention (emotion None) or an imputed modality appeared.
    let degraded = live.values().flatten().any(|(emotion, _, _, _, imputed)| {
        emotion == "None" || imputed != "[]"
    });
    assert!(degraded, "severity-0.9 artifacts produced no gated outcome");
    // And both engines agree on how many windows were quarantined.
    assert_eq!(
        live_engine.quarantined_count(),
        pre_engine.quarantined_count(),
        "quarantine accounting diverged"
    );
}
