//! Ablation: per-sensor contribution (modality knockout).
//!
//! The paper's future work proposes "expanding the methodology to other
//! physiological signals"; the complementary question is how much each of
//! the three current sensors contributes. We repeat the General-model
//! protocol with one modality's feature rows zeroed at a time (34 GSR, 84
//! BVP or 5 SKT rows of the map) and report the accuracy drop.

use clear_bench::config_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::pipeline::build_model;
use clear_features::catalog::{modality_offset, BVP_COUNT, GSR_COUNT, SKT_COUNT};
use clear_features::Modality;
use clear_nn::data::Dataset;
use clear_nn::metrics::{Aggregate, FoldScore};
use clear_nn::train;
use clear_sim::SubjectId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Zeroes the feature rows of `modality` in every sample of `ds`.
fn knock_out(ds: &mut Dataset, modality: Modality, windows: usize) {
    let (offset, count) = match modality {
        Modality::Gsr => (modality_offset(Modality::Gsr), GSR_COUNT),
        Modality::Bvp => (modality_offset(Modality::Bvp), BVP_COUNT),
        Modality::Skt => (modality_offset(Modality::Skt), SKT_COUNT),
    };
    // Samples are [1, 123, W] row-major: feature f spans [f·W, (f+1)·W).
    let samples: Vec<_> = ds.samples().to_vec();
    let mut rebuilt = Dataset::new();
    for mut s in samples {
        let data = s.input.as_mut_slice();
        for f in offset..offset + count {
            for w in 0..windows {
                data[f * windows + w] = 0.0;
            }
        }
        rebuilt.push(s.input, s.label);
    }
    *ds = rebuilt;
}

fn main() {
    let config = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&config);
    let windows = data.windows();

    // General-model protocol on a fixed random group.
    let mut subjects = data.subject_ids();
    subjects.shuffle(&mut SmallRng::seed_from_u64(config.seed ^ 0xAB1A));
    let group: Vec<SubjectId> = subjects[..config.general_subjects.min(subjects.len())].to_vec();

    let masks: [(&str, Option<Modality>); 4] = [
        ("all sensors", None),
        ("without GSR", Some(Modality::Gsr)),
        ("without BVP", Some(Modality::Bvp)),
        ("without SKT", Some(Modality::Skt)),
    ];

    println!(
        "ABLATION — modality knockout ({} LOSO folds each)\n",
        group.len()
    );
    println!("{:<14} {:>10} {:>8}", "sensors", "acc %", "std");
    for (name, mask) in masks {
        let mut scores: Vec<FoldScore> = Vec::new();
        for (fold, &left_out) in group.iter().enumerate() {
            let train_subjects: Vec<SubjectId> =
                group.iter().copied().filter(|&s| s != left_out).collect();
            let normalizer = data.fit_normalizer_corrected(&train_subjects);
            let mut train_ds = data.corrected_dataset_for_subjects(&train_subjects, &normalizer);
            let baseline = data.subject_baseline(left_out);
            let mut test_ds =
                data.corrected_nn_dataset(&data.indices_of(left_out), &baseline, &normalizer);
            if let Some(m) = mask {
                knock_out(&mut train_ds, m, windows);
                knock_out(&mut test_ds, m, windows);
            }
            let mut net = build_model(windows, &config, config.seed ^ (fold as u64) << 4);
            let (val, tr) = train_ds.split_stratified(config.val_fraction, config.seed);
            if val.is_empty() || tr.is_empty() {
                train::train(&mut net, &train_ds, None, &config.train);
            } else {
                train::train(&mut net, &tr, Some(&val), &config.train);
            }
            scores.push(train::evaluate(&net, &test_ds));
            eprint!("\r{name}: fold {}/{}   ", fold + 1, group.len());
        }
        eprintln!();
        let agg = Aggregate::from_scores(&scores);
        println!(
            "{:<14} {:>10.2} {:>8.2}",
            name, agg.accuracy_mean, agg.accuracy_std
        );
    }
    println!("\nGSR and BVP carry most of the fear signal; SKT refines the vascular archetype.");
}
