//! The authoritative ordered catalog of the 123 features.
//!
//! The paper extracts "123 features … including 34 for GSR, 84 for BVP,
//! and five for SKT" spanning time-domain, frequency-domain and non-linear
//! measures. This module pins the exact definitions and their order; the
//! extractor in [`crate::extract`] must produce values in catalog order, and
//! tests enforce the 34/84/5 split.

/// Which physiological channel a feature is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Modality {
    /// Galvanic skin response (electrodermal activity).
    Gsr,
    /// Blood volume pulse (photoplethysmography).
    Bvp,
    /// Skin temperature.
    Skt,
}

impl std::fmt::Display for Modality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Modality::Gsr => f.write_str("GSR"),
            Modality::Bvp => f.write_str("BVP"),
            Modality::Skt => f.write_str("SKT"),
        }
    }
}

/// A single feature definition: stable name, source modality and the
/// analysis domain it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureDef {
    /// Stable snake_case feature name.
    pub name: &'static str,
    /// Source channel.
    pub modality: Modality,
    /// Analysis domain ("time", "frequency", "nonlinear", "event").
    pub domain: &'static str,
}

const fn f(name: &'static str, modality: Modality, domain: &'static str) -> FeatureDef {
    FeatureDef {
        name,
        modality,
        domain,
    }
}

/// Total feature count: 34 GSR + 84 BVP + 5 SKT.
pub const FEATURE_COUNT: usize = 123;
/// Number of GSR features.
pub const GSR_COUNT: usize = 34;
/// Number of BVP features.
pub const BVP_COUNT: usize = 84;
/// Number of SKT features.
pub const SKT_COUNT: usize = 5;

/// The full ordered catalog. Index `i` of any extracted feature vector or
/// feature-map row corresponds to `CATALOG[i]`.
pub const CATALOG: [FeatureDef; FEATURE_COUNT] = [
    // ---------------- GSR (34) ----------------
    // Raw conductance time-domain statistics (10).
    f("gsr_mean", Modality::Gsr, "time"),
    f("gsr_std", Modality::Gsr, "time"),
    f("gsr_min", Modality::Gsr, "time"),
    f("gsr_max", Modality::Gsr, "time"),
    f("gsr_range", Modality::Gsr, "time"),
    f("gsr_slope", Modality::Gsr, "time"),
    f("gsr_mean_abs_diff", Modality::Gsr, "time"),
    f("gsr_skewness", Modality::Gsr, "time"),
    f("gsr_kurtosis", Modality::Gsr, "time"),
    f("gsr_iqr", Modality::Gsr, "time"),
    // Tonic (low-pass) component (4).
    f("gsr_tonic_mean", Modality::Gsr, "time"),
    f("gsr_tonic_std", Modality::Gsr, "time"),
    f("gsr_tonic_slope", Modality::Gsr, "time"),
    f("gsr_tonic_range", Modality::Gsr, "time"),
    // Phasic (high-pass) component (6).
    f("gsr_phasic_mean_abs", Modality::Gsr, "time"),
    f("gsr_phasic_std", Modality::Gsr, "time"),
    f("gsr_phasic_rms", Modality::Gsr, "time"),
    f("gsr_phasic_energy", Modality::Gsr, "time"),
    f("gsr_phasic_max", Modality::Gsr, "time"),
    f("gsr_phasic_line_length", Modality::Gsr, "time"),
    // Skin-conductance-response events (8).
    f("gsr_scr_count", Modality::Gsr, "event"),
    f("gsr_scr_rate", Modality::Gsr, "event"),
    f("gsr_scr_amp_mean", Modality::Gsr, "event"),
    f("gsr_scr_amp_max", Modality::Gsr, "event"),
    f("gsr_scr_amp_sum", Modality::Gsr, "event"),
    f("gsr_scr_rise_mean", Modality::Gsr, "event"),
    f("gsr_scr_recovery_mean", Modality::Gsr, "event"),
    f("gsr_scr_recovered_frac", Modality::Gsr, "event"),
    // Frequency domain (4).
    f("gsr_bp_low", Modality::Gsr, "frequency"),
    f("gsr_bp_mid", Modality::Gsr, "frequency"),
    f("gsr_bp_high", Modality::Gsr, "frequency"),
    f("gsr_spectral_centroid", Modality::Gsr, "frequency"),
    // Non-linear (2).
    f("gsr_shannon_entropy", Modality::Gsr, "nonlinear"),
    f("gsr_sample_entropy", Modality::Gsr, "nonlinear"),
    // ---------------- BVP (84) ----------------
    // Raw waveform time-domain statistics (12).
    f("bvp_mean", Modality::Bvp, "time"),
    f("bvp_std", Modality::Bvp, "time"),
    f("bvp_rms", Modality::Bvp, "time"),
    f("bvp_skewness", Modality::Bvp, "time"),
    f("bvp_kurtosis", Modality::Bvp, "time"),
    f("bvp_iqr", Modality::Bvp, "time"),
    f("bvp_mad", Modality::Bvp, "time"),
    f("bvp_mean_abs_diff", Modality::Bvp, "time"),
    f("bvp_line_length", Modality::Bvp, "time"),
    f("bvp_hjorth_mobility", Modality::Bvp, "time"),
    f("bvp_hjorth_complexity", Modality::Bvp, "time"),
    f("bvp_zcr", Modality::Bvp, "time"),
    // Amplitude percentiles (5).
    f("bvp_p05", Modality::Bvp, "time"),
    f("bvp_p25", Modality::Bvp, "time"),
    f("bvp_p50", Modality::Bvp, "time"),
    f("bvp_p75", Modality::Bvp, "time"),
    f("bvp_p95", Modality::Bvp, "time"),
    // Pulse-amplitude features from detected beats (8).
    f("bvp_peak_mean", Modality::Bvp, "event"),
    f("bvp_peak_std", Modality::Bvp, "event"),
    f("bvp_peak_min", Modality::Bvp, "event"),
    f("bvp_peak_max", Modality::Bvp, "event"),
    f("bvp_peak_range", Modality::Bvp, "event"),
    f("bvp_peak_slope", Modality::Bvp, "event"),
    f("bvp_peak_cv", Modality::Bvp, "event"),
    f("bvp_beat_count", Modality::Bvp, "event"),
    // HRV time-domain (8).
    f("hrv_mean_ibi", Modality::Bvp, "time"),
    f("hrv_mean_hr", Modality::Bvp, "time"),
    f("hrv_std_hr", Modality::Bvp, "time"),
    f("hrv_sdnn", Modality::Bvp, "time"),
    f("hrv_rmssd", Modality::Bvp, "time"),
    f("hrv_sdsd", Modality::Bvp, "time"),
    f("hrv_pnn50", Modality::Bvp, "time"),
    f("hrv_pnn20", Modality::Bvp, "time"),
    // IBI distribution statistics (6).
    f("ibi_min", Modality::Bvp, "time"),
    f("ibi_max", Modality::Bvp, "time"),
    f("ibi_range", Modality::Bvp, "time"),
    f("ibi_skewness", Modality::Bvp, "time"),
    f("ibi_kurtosis", Modality::Bvp, "time"),
    f("ibi_cv", Modality::Bvp, "time"),
    // Poincaré geometry (3).
    f("poincare_sd1", Modality::Bvp, "nonlinear"),
    f("poincare_sd2", Modality::Bvp, "nonlinear"),
    f("poincare_ratio", Modality::Bvp, "nonlinear"),
    // Geometric HRV (4).
    f("hrv_triangular_index", Modality::Bvp, "time"),
    f("hrv_tinn", Modality::Bvp, "time"),
    f("poincare_area", Modality::Bvp, "nonlinear"),
    f("poincare_csi", Modality::Bvp, "nonlinear"),
    // HRV frequency-domain (5).
    f("hrv_vlf", Modality::Bvp, "frequency"),
    f("hrv_lf", Modality::Bvp, "frequency"),
    f("hrv_hf", Modality::Bvp, "frequency"),
    f("hrv_lf_hf", Modality::Bvp, "frequency"),
    f("hrv_lf_norm", Modality::Bvp, "frequency"),
    // Instantaneous heart-rate dynamics (4).
    f("hr_slope", Modality::Bvp, "time"),
    f("hr_min", Modality::Bvp, "time"),
    f("hr_max", Modality::Bvp, "time"),
    f("hr_range", Modality::Bvp, "time"),
    // Waveform spectrum (12).
    f("bvp_bp_0p5_1", Modality::Bvp, "frequency"),
    f("bvp_bp_1_1p5", Modality::Bvp, "frequency"),
    f("bvp_bp_1p5_2", Modality::Bvp, "frequency"),
    f("bvp_bp_2_3", Modality::Bvp, "frequency"),
    f("bvp_bp_3_4", Modality::Bvp, "frequency"),
    f("bvp_bp_4_6", Modality::Bvp, "frequency"),
    f("bvp_spectral_centroid", Modality::Bvp, "frequency"),
    f("bvp_spectral_entropy", Modality::Bvp, "frequency"),
    f("bvp_peak_freq", Modality::Bvp, "frequency"),
    f("bvp_rolloff85", Modality::Bvp, "frequency"),
    f("bvp_total_power", Modality::Bvp, "frequency"),
    f("bvp_dominant_ratio", Modality::Bvp, "frequency"),
    // Derivative statistics (6).
    f("bvp_d1_std", Modality::Bvp, "time"),
    f("bvp_d1_rms", Modality::Bvp, "time"),
    f("bvp_d1_max", Modality::Bvp, "time"),
    f("bvp_d2_std", Modality::Bvp, "time"),
    f("bvp_d2_rms", Modality::Bvp, "time"),
    f("bvp_d2_max", Modality::Bvp, "time"),
    // Baseline wander (3).
    f("bvp_baseline_slope", Modality::Bvp, "time"),
    f("bvp_baseline_std", Modality::Bvp, "time"),
    f("bvp_baseline_range", Modality::Bvp, "time"),
    // Non-linear (4).
    f("bvp_shannon_entropy", Modality::Bvp, "nonlinear"),
    f("ibi_sample_entropy", Modality::Bvp, "nonlinear"),
    f("ibi_approx_entropy", Modality::Bvp, "nonlinear"),
    f("bvp_petrosian_fd", Modality::Bvp, "nonlinear"),
    // Autocorrelation probes (4).
    f("bvp_autocorr_250ms", Modality::Bvp, "nonlinear"),
    f("bvp_autocorr_500ms", Modality::Bvp, "nonlinear"),
    f("bvp_autocorr_1000ms", Modality::Bvp, "nonlinear"),
    f("bvp_autocorr_1500ms", Modality::Bvp, "nonlinear"),
    // ---------------- SKT (5) ----------------
    f("skt_mean", Modality::Skt, "time"),
    f("skt_std", Modality::Skt, "time"),
    f("skt_slope", Modality::Skt, "time"),
    f("skt_min", Modality::Skt, "time"),
    f("skt_max", Modality::Skt, "time"),
];

/// Index of the first feature of `modality` in [`CATALOG`].
pub fn modality_offset(modality: Modality) -> usize {
    match modality {
        Modality::Gsr => 0,
        Modality::Bvp => GSR_COUNT,
        Modality::Skt => GSR_COUNT + BVP_COUNT,
    }
}

/// Number of catalog features computed from `modality`.
pub fn modality_count(modality: Modality) -> usize {
    match modality {
        Modality::Gsr => GSR_COUNT,
        Modality::Bvp => BVP_COUNT,
        Modality::Skt => SKT_COUNT,
    }
}

/// The modality of catalog feature `index`.
///
/// # Panics
///
/// Panics when `index >= FEATURE_COUNT`.
pub fn modality_of(index: usize) -> Modality {
    assert!(index < FEATURE_COUNT, "feature index out of range");
    if index < GSR_COUNT {
        Modality::Gsr
    } else if index < GSR_COUNT + BVP_COUNT {
        Modality::Bvp
    } else {
        Modality::Skt
    }
}

/// Looks up a feature index by name.
pub fn index_of(name: &str) -> Option<usize> {
    CATALOG.iter().position(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_matches_paper_split() {
        let gsr = CATALOG
            .iter()
            .filter(|d| d.modality == Modality::Gsr)
            .count();
        let bvp = CATALOG
            .iter()
            .filter(|d| d.modality == Modality::Bvp)
            .count();
        let skt = CATALOG
            .iter()
            .filter(|d| d.modality == Modality::Skt)
            .count();
        assert_eq!(gsr, GSR_COUNT);
        assert_eq!(bvp, BVP_COUNT);
        assert_eq!(skt, SKT_COUNT);
        assert_eq!(gsr + bvp + skt, FEATURE_COUNT);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = CATALOG.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), FEATURE_COUNT);
    }

    #[test]
    fn modalities_are_contiguous_blocks() {
        for (i, d) in CATALOG.iter().enumerate() {
            let expected = if i < GSR_COUNT {
                Modality::Gsr
            } else if i < GSR_COUNT + BVP_COUNT {
                Modality::Bvp
            } else {
                Modality::Skt
            };
            assert_eq!(
                d.modality, expected,
                "feature {i} ({}) out of block",
                d.name
            );
        }
    }

    #[test]
    fn catalog_covers_all_domains() {
        for domain in ["time", "frequency", "nonlinear", "event"] {
            assert!(
                CATALOG.iter().any(|d| d.domain == domain),
                "missing domain {domain}"
            );
        }
    }

    #[test]
    fn index_lookup() {
        assert_eq!(index_of("gsr_mean"), Some(0));
        assert_eq!(index_of("skt_max"), Some(FEATURE_COUNT - 1));
        assert_eq!(index_of("bvp_mean"), Some(modality_offset(Modality::Bvp)));
        assert_eq!(index_of("nope"), None);
    }

    #[test]
    fn modality_display() {
        assert_eq!(Modality::Gsr.to_string(), "GSR");
        assert_eq!(Modality::Bvp.to_string(), "BVP");
        assert_eq!(Modality::Skt.to_string(), "SKT");
    }
}
