//! Feature relevance analysis.
//!
//! The paper's feature extractor (after [18]) motivates its 123-feature
//! set by discriminability; this module quantifies that: per-feature
//! Fisher scores between fear and non-fear, rankings, and per-modality
//! aggregation. Used by the `feature_explorer` example and the modality
//! ablation bench, and useful downstream for pruning the map on very
//! constrained devices.

use crate::catalog::{Modality, CATALOG, FEATURE_COUNT};
use crate::map::FeatureMap;

/// Fisher discriminability score of every feature between two groups of
/// feature maps (typically fear vs non-fear).
///
/// For feature `f` with per-class means `m0, m1` and variances `v0, v1`:
/// `score = (m0 - m1)² / (v0 + v1)` (zero-variance features score 0).
///
/// Maps contribute their per-window columns, so a map with `W` windows
/// counts as `W` observations.
///
/// # Panics
///
/// Panics if either group is empty.
pub fn fisher_scores(group_a: &[&FeatureMap], group_b: &[&FeatureMap]) -> Vec<f32> {
    assert!(
        !group_a.is_empty() && !group_b.is_empty(),
        "both groups need at least one feature map"
    );
    let stats = |group: &[&FeatureMap]| -> (Vec<f64>, Vec<f64>) {
        let mut mean = vec![0.0f64; FEATURE_COUNT];
        let mut count = 0usize;
        for m in group {
            for f in 0..FEATURE_COUNT {
                for &v in m.row(f) {
                    mean[f] += v as f64;
                }
            }
            count += m.window_count();
        }
        for v in &mut mean {
            *v /= count as f64;
        }
        let mut var = vec![0.0f64; FEATURE_COUNT];
        for m in group {
            for f in 0..FEATURE_COUNT {
                for &v in m.row(f) {
                    let d = v as f64 - mean[f];
                    var[f] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count as f64;
        }
        (mean, var)
    };
    let (ma, va) = stats(group_a);
    let (mb, vb) = stats(group_b);
    (0..FEATURE_COUNT)
        .map(|f| {
            let denom = va[f] + vb[f];
            if denom < 1e-12 {
                0.0
            } else {
                (((ma[f] - mb[f]) * (ma[f] - mb[f])) / denom) as f32
            }
        })
        .collect()
}

/// A ranked feature: catalog index plus its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedFeature {
    /// Index into [`CATALOG`].
    pub index: usize,
    /// Fisher score (higher = more discriminative).
    pub score: f32,
}

/// Ranks all features by descending Fisher score.
pub fn rank(scores: &[f32]) -> Vec<RankedFeature> {
    assert_eq!(scores.len(), FEATURE_COUNT, "expected 123 scores");
    let mut ranked: Vec<RankedFeature> = scores
        .iter()
        .enumerate()
        .map(|(index, &score)| RankedFeature { index, score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// Sums Fisher scores per modality — how much each sensor contributes to
/// the discrimination.
pub fn modality_totals(scores: &[f32]) -> [(Modality, f32); 3] {
    assert_eq!(scores.len(), FEATURE_COUNT, "expected 123 scores");
    let total = |m: Modality| -> f32 {
        CATALOG
            .iter()
            .zip(scores)
            .filter(|(d, _)| d.modality == m)
            .map(|(_, &s)| s)
            .sum()
    };
    [
        (Modality::Gsr, total(Modality::Gsr)),
        (Modality::Bvp, total(Modality::Bvp)),
        (Modality::Skt, total(Modality::Skt)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::FeatureMap;

    fn map_with(value: f32, hot_feature: usize, hot_value: f32) -> FeatureMap {
        let mut col = vec![value; FEATURE_COUNT];
        col[hot_feature] = hot_value;
        FeatureMap::from_columns(&[col.clone(), col])
    }

    #[test]
    fn fisher_score_peaks_on_the_separating_feature() {
        // Feature 7 separates the groups; everything else is identical
        // plus negligible jitter so variances stay nonzero.
        let a: Vec<FeatureMap> = (0..4)
            .map(|i| map_with(1.0 + 0.01 * i as f32, 7, 10.0 + 0.01 * i as f32))
            .collect();
        let b: Vec<FeatureMap> = (0..4)
            .map(|i| map_with(1.0 + 0.01 * i as f32, 7, -10.0 - 0.01 * i as f32))
            .collect();
        let ra: Vec<&FeatureMap> = a.iter().collect();
        let rb: Vec<&FeatureMap> = b.iter().collect();
        let scores = fisher_scores(&ra, &rb);
        let ranked = rank(&scores);
        assert_eq!(ranked[0].index, 7);
        assert!(ranked[0].score > 100.0 * ranked[1].score.max(1e-6));
    }

    #[test]
    fn identical_groups_score_zero() {
        let m = map_with(3.0, 0, 3.0);
        let scores = fisher_scores(&[&m], &[&m]);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn modality_totals_attribute_to_the_right_sensor() {
        // Hot feature inside the BVP block (jitter keeps variances nonzero
        // so the zero-variance guard does not zero the score).
        let bvp_idx = crate::catalog::modality_offset(Modality::Bvp) + 3;
        let a: Vec<FeatureMap> = (0..3)
            .map(|i| map_with(0.01 * i as f32, bvp_idx, 5.0 + 0.01 * i as f32))
            .collect();
        let b: Vec<FeatureMap> = (0..3)
            .map(|i| map_with(0.01 * i as f32, bvp_idx, -5.0 - 0.01 * i as f32))
            .collect();
        let ra: Vec<&FeatureMap> = a.iter().collect();
        let rb: Vec<&FeatureMap> = b.iter().collect();
        let scores = fisher_scores(&ra, &rb);
        let totals = modality_totals(&scores);
        assert_eq!(totals[1].0, Modality::Bvp);
        assert!(totals[1].1 > totals[0].1);
        assert!(totals[1].1 > totals[2].1);
    }

    #[test]
    fn rank_is_descending() {
        let mut scores = vec![0.0f32; FEATURE_COUNT];
        scores[5] = 3.0;
        scores[50] = 7.0;
        scores[100] = 1.0;
        let ranked = rank(&scores);
        assert_eq!(ranked[0].index, 50);
        assert_eq!(ranked[1].index, 5);
        assert_eq!(ranked[2].index, 100);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    #[should_panic(expected = "at least one feature map")]
    fn empty_group_panics() {
        let m = map_with(0.0, 0, 0.0);
        let _ = fisher_scores(&[&m], &[]);
    }
}
