//! Regenerates Table I: accuracy/F1 of every validation protocol
//! (General model, CL validation + RT, CLEAR w/o and w/ fine-tuning + RT).

use clear_bench::{cli_from_args, maybe_write_json, print_progress};
use clear_core::dataset::PreparedCohort;
use clear_core::experiments::run_table1;

fn main() {
    let cli = cli_from_args();
    let config = cli.config.clone();
    eprintln!(
        "table1: {} subjects, {} recordings, K = {}",
        config.cohort.total_subjects(),
        config.cohort.total_recordings(),
        config.k
    );
    let t0 = std::time::Instant::now();
    eprintln!("extracting feature maps...");
    let data = PreparedCohort::prepare(&config);
    eprintln!(
        "extracted {} feature maps (123 x {}) in {:.1?}",
        data.maps().len(),
        data.windows(),
        t0.elapsed()
    );
    let table = run_table1(&data, &config, print_progress);
    println!("{}", table.render());
    maybe_write_json(&cli, &table);
    let violations = table.shape_violations();
    if violations.is_empty() {
        println!("shape check: PASS (all qualitative orderings match the paper)");
    } else {
        println!("shape check: {} violation(s)", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
    }
    println!("total wall clock: {:.1?}", t0.elapsed());
}
