//! The stimulus protocol: emotion-eliciting video clips.
//!
//! WEMAC annotates its recordings with **ten** emotional labels, which the
//! paper collapses into fear / non-fear for the detection task. This
//! module models that richer protocol: a catalog of video stimuli, each
//! with a categorical emotion and an arousal level that scales the evoked
//! physiological response. [`StimulusProtocol::wemac_like`] builds a
//! session resembling the WEMAC design (balanced fear / non-fear,
//! arousal-varied clips); [`Cohort`](crate::Cohort) generation keeps its
//! original fast path, and
//! [`Cohort::generate_with_protocol`](crate::Cohort::generate_with_protocol)
//! uses an explicit protocol instead.

use crate::Emotion;
use serde::{Deserialize, Serialize};

/// The ten categorical emotion labels of the WEMAC annotation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmotionCategory {
    /// Fear — the detection target.
    Fear,
    /// Joy.
    Joy,
    /// Hope.
    Hope,
    /// Calm / relaxation.
    Calm,
    /// Tenderness.
    Tenderness,
    /// Gratitude.
    Gratitude,
    /// Sadness.
    Sadness,
    /// Disgust.
    Disgust,
    /// Anger.
    Anger,
    /// Surprise.
    Surprise,
}

impl EmotionCategory {
    /// All ten categories, fear first.
    pub fn all() -> [EmotionCategory; 10] {
        use EmotionCategory::*;
        [
            Fear, Joy, Hope, Calm, Tenderness, Gratitude, Sadness, Disgust, Anger, Surprise,
        ]
    }

    /// The paper's binary collapse: fear vs everything else.
    pub fn binary(self) -> Emotion {
        if self == EmotionCategory::Fear {
            Emotion::Fear
        } else {
            Emotion::NonFear
        }
    }

    /// Canonical arousal level of the category in `[0, 1]` — how strongly
    /// a typical clip of this category drives autonomic responses.
    /// (Values follow the usual circumplex placements.)
    pub fn arousal(self) -> f32 {
        use EmotionCategory::*;
        match self {
            Fear => 0.90,
            Anger => 0.80,
            Surprise => 0.75,
            Joy => 0.65,
            Disgust => 0.60,
            Hope => 0.45,
            Gratitude => 0.35,
            Sadness => 0.30,
            Tenderness => 0.25,
            Calm => 0.10,
        }
    }
}

impl std::fmt::Display for EmotionCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EmotionCategory::Fear => "fear",
            EmotionCategory::Joy => "joy",
            EmotionCategory::Hope => "hope",
            EmotionCategory::Calm => "calm",
            EmotionCategory::Tenderness => "tenderness",
            EmotionCategory::Gratitude => "gratitude",
            EmotionCategory::Sadness => "sadness",
            EmotionCategory::Disgust => "disgust",
            EmotionCategory::Anger => "anger",
            EmotionCategory::Surprise => "surprise",
        };
        f.write_str(name)
    }
}

/// One video clip in the session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stimulus {
    /// Categorical emotion the clip elicits.
    pub category: EmotionCategory,
    /// Clip-specific arousal multiplier around the category's canonical
    /// arousal (clip selection effects), typically near 1.
    pub arousal_gain: f32,
}

impl Stimulus {
    /// Binary label of the clip.
    pub fn label(&self) -> Emotion {
        self.category.binary()
    }

    /// Effective evoked intensity of this clip for an average subject.
    pub fn intensity(&self) -> f32 {
        (self.category.arousal() * self.arousal_gain).max(0.0)
    }
}

/// An ordered session of stimuli presented to every volunteer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StimulusProtocol {
    clips: Vec<Stimulus>,
}

impl StimulusProtocol {
    /// Builds a protocol from explicit clips.
    ///
    /// # Panics
    ///
    /// Panics if `clips` is empty.
    pub fn new(clips: Vec<Stimulus>) -> Self {
        assert!(!clips.is_empty(), "a protocol needs at least one stimulus");
        Self { clips }
    }

    /// A WEMAC-like session of `len` clips: alternating fear and non-fear,
    /// with the non-fear slots cycling through the other nine categories
    /// and mild deterministic arousal-gain variation per slot.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn wemac_like(len: usize) -> Self {
        assert!(len > 0, "a protocol needs at least one stimulus");
        let others: Vec<EmotionCategory> = EmotionCategory::all()[1..].to_vec();
        let clips = (0..len)
            .map(|i| {
                let category = if i % 2 == 0 {
                    EmotionCategory::Fear
                } else {
                    others[(i / 2) % others.len()]
                };
                // ±15 % deterministic clip-selection variation.
                let arousal_gain = 1.0 + 0.15 * ((i as f32 * 2.399).sin());
                Stimulus {
                    category,
                    arousal_gain,
                }
            })
            .collect();
        Self { clips }
    }

    /// The session's clips in presentation order.
    pub fn clips(&self) -> &[Stimulus] {
        &self.clips
    }

    /// Number of clips.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Whether the protocol is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Number of fear clips.
    pub fn fear_count(&self) -> usize {
        self.clips
            .iter()
            .filter(|c| c.label() == Emotion::Fear)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_categories_binary_collapse() {
        let all = EmotionCategory::all();
        assert_eq!(all.len(), 10);
        assert_eq!(
            all.iter().filter(|c| c.binary() == Emotion::Fear).count(),
            1
        );
        assert_eq!(EmotionCategory::Fear.binary(), Emotion::Fear);
        assert_eq!(EmotionCategory::Calm.binary(), Emotion::NonFear);
    }

    #[test]
    fn arousal_ordering_is_plausible() {
        assert!(EmotionCategory::Fear.arousal() > EmotionCategory::Joy.arousal());
        assert!(EmotionCategory::Joy.arousal() > EmotionCategory::Calm.arousal());
        for c in EmotionCategory::all() {
            assert!((0.0..=1.0).contains(&c.arousal()));
        }
    }

    #[test]
    fn wemac_like_protocol_is_balanced_and_diverse() {
        let p = StimulusProtocol::wemac_like(18);
        assert_eq!(p.len(), 18);
        assert_eq!(p.fear_count(), 9);
        // Non-fear slots cycle through multiple categories.
        let distinct: std::collections::HashSet<_> = p
            .clips()
            .iter()
            .filter(|c| c.label() == Emotion::NonFear)
            .map(|c| c.category)
            .collect();
        assert!(distinct.len() >= 5, "only {distinct:?}");
    }

    #[test]
    fn stimulus_intensity_scales_with_arousal() {
        let fear = Stimulus {
            category: EmotionCategory::Fear,
            arousal_gain: 1.0,
        };
        let calm = Stimulus {
            category: EmotionCategory::Calm,
            arousal_gain: 1.0,
        };
        assert!(fear.intensity() > calm.intensity());
        assert_eq!(fear.label(), Emotion::Fear);
        assert_eq!(calm.label(), Emotion::NonFear);
    }

    #[test]
    #[should_panic(expected = "at least one stimulus")]
    fn empty_protocol_panics() {
        let _ = StimulusProtocol::new(vec![]);
    }

    #[test]
    fn display_names() {
        assert_eq!(EmotionCategory::Tenderness.to_string(), "tenderness");
    }
}
