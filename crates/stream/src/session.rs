//! Per-user streaming ingestion sessions.
//!
//! A [`StreamSession`] owns the bounded multi-rate buffers of one user's
//! live signal: raw chunks go in (optionally resampled from device rates
//! onto the pipeline grid), feature windows come out incrementally through
//! [`clear_features::StreamingExtractor`] — bit-identical to running the
//! batch [`clear_features::FeatureExtractor`] over the concatenated
//! stream — and complete `123 × W` maps queue for prediction. A byte
//! budget sized from the `clear-edge` memory model bounds the session's
//! resident footprint; the [`ShedPolicy`] decides what gives when the
//! budget is hit.

use std::collections::VecDeque;

use clear_dsp::resample::StreamingResampler;
use clear_features::{FeatureMap, StreamingExtractor, WindowConfig, FEATURE_COUNT};
use clear_sim::SignalConfig;

/// What a session sheds when an incoming chunk would push its resident
/// bytes past the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the chunk with a typed [`StreamError::OverBudget`] — strict
    /// back-pressure to the producer; no buffered data is lost.
    RejectNewest,
    /// Skip the oldest pending windows (draining their samples) until the
    /// chunk fits, then accept it — fresh data wins, old windows are
    /// never computed. The session never rejects.
    DropOldest,
    /// Accept the chunk and halve temporal resolution while over budget:
    /// after each emitted window the next one is skipped, so the drain
    /// cursor advances twice as fast until the session is back under
    /// budget. Sheds future resolution rather than past data.
    DegradeToSparseHop,
}

/// Typed streaming-ingestion failures.
#[derive(Debug)]
pub enum StreamError {
    /// The chunk would exceed the session's byte budget and the shed
    /// policy ([`ShedPolicy::RejectNewest`]) refuses to drop buffered
    /// data. Nothing was ingested; retry after draining predictions.
    OverBudget {
        /// Bytes currently resident in the session.
        resident_bytes: usize,
        /// Size of the rejected chunk.
        chunk_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// The session was closed; no further chunks are accepted.
    Closed(String),
    /// No open session for this user on the pump.
    UnknownSession(String),
    /// A session is already open for this user.
    AlreadyOpen(String),
    /// The session configuration is unusable.
    BadConfig(&'static str),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OverBudget {
                resident_bytes,
                chunk_bytes,
                budget_bytes,
            } => write!(
                f,
                "chunk of {chunk_bytes} B rejected: {resident_bytes} B resident \
                 against a budget of {budget_bytes} B"
            ),
            StreamError::Closed(user) => write!(f, "session for '{user}' is closed"),
            StreamError::UnknownSession(user) => write!(f, "no open session for '{user}'"),
            StreamError::AlreadyOpen(user) => write!(f, "session for '{user}' already open"),
            StreamError::BadConfig(why) => write!(f, "bad session config: {why}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Configuration of one [`StreamSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Pipeline sampling rates the feature extractor expects.
    pub signal: SignalConfig,
    /// Analysis window geometry (must match the deployed bundle's).
    pub window: WindowConfig,
    /// Windows per assembled feature map (the deployed bundle's `windows`).
    pub windows_per_map: usize,
    /// Resident-byte budget; `0` disables budget enforcement.
    pub byte_budget: usize,
    /// What gives when a chunk would exceed the budget.
    pub shed: ShedPolicy,
    /// Device-side sampling rates, when the sensor records at rates other
    /// than the pipeline's. Chunks are resampled onto the pipeline grid
    /// ([`clear_dsp::resample::resample_grid`] semantics) before
    /// extraction; `None` ingests at pipeline rates directly.
    pub ingest_rates: Option<SignalConfig>,
}

impl SessionConfig {
    /// A budget-free config for a deployment serving `windows_per_map`
    /// windows per map at the given rates and geometry.
    pub fn new(signal: SignalConfig, window: WindowConfig, windows_per_map: usize) -> Self {
        Self {
            signal,
            window,
            windows_per_map,
            byte_budget: 0,
            shed: ShedPolicy::RejectNewest,
            ingest_rates: None,
        }
    }

    /// Sets the shed policy.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Sets an explicit byte budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = bytes;
        self
    }

    /// Sets device-side ingest rates (resampled onto the pipeline grid).
    pub fn with_ingest_rates(mut self, rates: SignalConfig) -> Self {
        self.ingest_rates = Some(rates);
        self
    }

    /// Sizes the byte budget from the `clear-edge` memory model: the
    /// device's activation budget divided across `concurrent_sessions`,
    /// floored at [`SessionConfig::min_resident_bytes`] so a session can
    /// always complete a window.
    pub fn sized_for_device(
        mut self,
        device: clear_edge::Device,
        concurrent_sessions: usize,
    ) -> Self {
        self.byte_budget = clear_edge::streaming_session_budget(
            device,
            concurrent_sessions,
            self.min_resident_bytes(),
        );
        self
    }

    /// The smallest resident footprint at which a session can still make
    /// progress: one analysis window plus one hop of samples across all
    /// modalities, a partially assembled map, and one ready map awaiting
    /// drain.
    pub fn min_resident_bytes(&self) -> usize {
        let span_secs = self.window.window_secs + self.window.step_secs;
        let rates = self.signal.fs_bvp + self.signal.fs_gsr + self.signal.fs_skt;
        let samples = (span_secs * rates).ceil() as usize + 3;
        let map_bytes = self.windows_per_map * FEATURE_COUNT * 4;
        samples * 4 + 2 * map_bytes
    }
}

/// Counters of one session's lifetime (monotone; never reset by drains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Feature windows extracted.
    pub windows_completed: u64,
    /// Full feature maps assembled.
    pub maps_completed: u64,
    /// Windows skipped by [`ShedPolicy::DropOldest`].
    pub shed_dropped_windows: u64,
    /// Chunks rejected by [`ShedPolicy::RejectNewest`].
    pub shed_rejected_chunks: u64,
    /// Windows skipped by [`ShedPolicy::DegradeToSparseHop`].
    pub shed_sparse_hop_windows: u64,
    /// Highest resident-byte watermark observed.
    pub peak_resident_bytes: usize,
}

/// What one [`StreamSession::ingest`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Feature windows completed by this chunk.
    pub windows: usize,
    /// Feature maps completed by this chunk.
    pub maps: usize,
    /// Windows shed (dropped or sparse-hopped) while ingesting it.
    pub shed_windows: usize,
}

/// One user's live ingestion state: draining sample buffers, incremental
/// window extraction, map assembly and budget enforcement.
#[derive(Debug)]
pub struct StreamSession {
    user: String,
    config: SessionConfig,
    extractor: StreamingExtractor,
    resamplers: Option<(StreamingResampler, StreamingResampler, StreamingResampler)>,
    /// Columns of the map currently being assembled.
    partial: Vec<Vec<f32>>,
    /// Completed maps awaiting a pump drain.
    ready: VecDeque<FeatureMap>,
    closed: bool,
    stats: SessionStats,
}

impl StreamSession {
    /// Opens a session for `user`.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadConfig`] when `windows_per_map == 0`, the window
    /// geometry is degenerate, or the ingest rates are not positive.
    pub fn new(user: impl Into<String>, config: SessionConfig) -> Result<Self, StreamError> {
        if config.windows_per_map == 0 {
            return Err(StreamError::BadConfig("windows_per_map must be at least 1"));
        }
        if !(config.window.window_secs > 0.0) || !(config.window.step_secs > 0.0) {
            return Err(StreamError::BadConfig("window geometry must be positive"));
        }
        let resamplers = match config.ingest_rates {
            None => None,
            Some(rates) => {
                let mk = |fs_in: f32, fs_out: f32| {
                    StreamingResampler::new(fs_in, fs_out)
                        .map_err(|_| StreamError::BadConfig("ingest rates must be positive"))
                };
                Some((
                    mk(rates.fs_bvp, config.signal.fs_bvp)?,
                    mk(rates.fs_gsr, config.signal.fs_gsr)?,
                    mk(rates.fs_skt, config.signal.fs_skt)?,
                ))
            }
        };
        Ok(Self {
            user: user.into(),
            extractor: StreamingExtractor::new(config.signal, config.window)
                .retain_columns(false),
            resamplers,
            partial: Vec::with_capacity(config.windows_per_map),
            ready: VecDeque::new(),
            closed: false,
            config,
            stats: SessionStats::default(),
        })
    }

    /// The session's user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Whether [`StreamSession::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Completed maps awaiting drain.
    pub fn ready_maps(&self) -> usize {
        self.ready.len()
    }

    /// Columns assembled toward the next (incomplete) map.
    pub fn pending_columns(&self) -> usize {
        self.partial.len()
    }

    /// Bytes currently resident: sample buffers (extractor + resamplers),
    /// the partial map, and ready maps awaiting drain.
    pub fn resident_bytes(&self) -> usize {
        let resampler_samples = self
            .resamplers
            .as_ref()
            .map(|(b, g, s)| b.buffered() + g.buffered() + s.buffered())
            .unwrap_or(0);
        let samples = self.extractor.buffered_samples() + resampler_samples;
        let col_bytes = FEATURE_COUNT * 4;
        let ready_bytes: usize = self
            .ready
            .iter()
            .map(|m| m.window_count() * col_bytes)
            .sum();
        samples * 4 + self.partial.len() * col_bytes + ready_bytes
    }

    /// Ingests one multi-rate chunk (any slice may be empty), enforcing
    /// the byte budget through the shed policy, and extracts every window
    /// the chunk completes.
    ///
    /// # Errors
    ///
    /// [`StreamError::Closed`] after [`StreamSession::close`];
    /// [`StreamError::OverBudget`] under [`ShedPolicy::RejectNewest`]
    /// when the chunk does not fit (nothing is ingested — retry after
    /// draining).
    pub fn ingest(
        &mut self,
        bvp: &[f32],
        gsr: &[f32],
        skt: &[f32],
    ) -> Result<IngestReport, StreamError> {
        if self.closed {
            return Err(StreamError::Closed(self.user.clone()));
        }
        let chunk_bytes = (bvp.len() + gsr.len() + skt.len()) * 4;
        let budget = self.config.byte_budget;
        let mut report = IngestReport::default();

        if budget > 0 && self.resident_bytes() + chunk_bytes > budget {
            match self.config.shed {
                ShedPolicy::RejectNewest => {
                    self.stats.shed_rejected_chunks += 1;
                    clear_obs::counter_add(clear_obs::counters::STREAM_SHED_REJECTED_CHUNKS, 1);
                    return Err(StreamError::OverBudget {
                        resident_bytes: self.resident_bytes(),
                        chunk_bytes,
                        budget_bytes: budget,
                    });
                }
                ShedPolicy::DropOldest => {
                    // Skip pending windows (draining their samples) until
                    // the chunk fits or nothing more can be reclaimed.
                    while self.resident_bytes() + chunk_bytes > budget {
                        let before = self.extractor.buffered_samples();
                        if before == 0 {
                            break;
                        }
                        self.extractor.skip_window();
                        self.stats.shed_dropped_windows += 1;
                        report.shed_windows += 1;
                        clear_obs::counter_add(
                            clear_obs::counters::STREAM_SHED_DROPPED_WINDOWS,
                            1,
                        );
                        if self.extractor.buffered_samples() == before {
                            break;
                        }
                    }
                }
                // Handled per emitted window below.
                ShedPolicy::DegradeToSparseHop => {}
            }
        }

        clear_obs::counter_add(clear_obs::counters::STREAM_CHUNKS, 1);
        clear_obs::counter_add(
            clear_obs::counters::STREAM_SAMPLES,
            (bvp.len() + gsr.len() + skt.len()) as u64,
        );

        // Resample device-rate chunks onto the pipeline grid if needed.
        let owned;
        let (b, g, s): (&[f32], &[f32], &[f32]) = match &mut self.resamplers {
            Some((rb, rg, rs)) => {
                owned = (rb.push(bvp), rg.push(gsr), rs.push(skt));
                (&owned.0, &owned.1, &owned.2)
            }
            None => (bvp, gsr, skt),
        };
        self.extractor.extend(b, g, s);

        while let Some(col) = self.extractor.try_emit_one() {
            self.complete_window(col, &mut report);
            if self.config.shed == ShedPolicy::DegradeToSparseHop
                && budget > 0
                && self.resident_bytes() > budget
            {
                self.extractor.skip_window();
                self.stats.shed_sparse_hop_windows += 1;
                report.shed_windows += 1;
                clear_obs::counter_add(clear_obs::counters::STREAM_SHED_SPARSE_HOP_WINDOWS, 1);
            }
        }

        let resident = self.resident_bytes();
        if resident > self.stats.peak_resident_bytes {
            self.stats.peak_resident_bytes = resident;
        }
        Ok(report)
    }

    fn complete_window(&mut self, col: Vec<f32>, report: &mut IngestReport) {
        self.partial.push(col);
        self.stats.windows_completed += 1;
        report.windows += 1;
        clear_obs::counter_add(clear_obs::counters::STREAM_WINDOWS, 1);
        if self.partial.len() == self.config.windows_per_map {
            let map = FeatureMap::from_columns(&self.partial);
            self.partial.clear();
            self.ready.push_back(map);
            self.stats.maps_completed += 1;
            report.maps += 1;
            clear_obs::counter_add(clear_obs::counters::STREAM_MAPS, 1);
        }
    }

    /// Removes and returns every completed map (the pump feeds these to
    /// `ServeEngine::predict_many`).
    pub fn take_ready(&mut self) -> Vec<FeatureMap> {
        self.ready.drain(..).collect()
    }

    /// Closes the session: no further chunks are accepted; maps already
    /// completed remain drainable. A partially assembled map is discarded
    /// (it cannot match the deployed bundle's shape).
    pub fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_features::FeatureExtractor;
    use clear_sim::{Cohort, CohortConfig};

    fn first_recording(seed: u64) -> (clear_sim::Recording, SignalConfig) {
        let config = CohortConfig::small(seed);
        let cohort = Cohort::generate(&config);
        (cohort.recordings()[0].clone(), config.signal)
    }

    #[test]
    fn session_assembles_maps_matching_batch_extraction() {
        let (rec, signal) = first_recording(11);
        let wcfg = WindowConfig::default();
        // 30 s stimulus → 4 windows; 2-window maps → 2 complete maps.
        let mut s = StreamSession::new("u", SessionConfig::new(signal, wcfg, 2)).unwrap();
        let report = s.ingest(&rec.bvp, &rec.gsr, &rec.skt).unwrap();
        assert_eq!(report.windows, 4);
        assert_eq!(report.maps, 2);
        let maps = s.take_ready();
        assert_eq!(maps.len(), 2);

        let batch = FeatureExtractor::new(signal, wcfg).feature_map(&rec);
        for (k, map) in maps.iter().enumerate() {
            for f in 0..map.feature_count() {
                for w in 0..map.window_count() {
                    assert_eq!(
                        map.get(f, w).to_bits(),
                        batch.get(f, k * 2 + w).to_bits(),
                        "map {k} feature {f} window {w}"
                    );
                }
            }
        }
        assert_eq!(s.pending_columns(), 0);
        assert_eq!(s.stats().maps_completed, 2);
    }

    #[test]
    fn reject_newest_returns_typed_over_budget_and_ingests_nothing() {
        let (rec, signal) = first_recording(3);
        let cfg = SessionConfig::new(signal, WindowConfig::default(), 2).with_budget(1024);
        let mut s = StreamSession::new("u", cfg).unwrap();
        let err = s.ingest(&rec.bvp, &rec.gsr, &rec.skt).unwrap_err();
        match err {
            StreamError::OverBudget {
                chunk_bytes,
                budget_bytes,
                ..
            } => {
                assert_eq!(budget_bytes, 1024);
                assert_eq!(
                    chunk_bytes,
                    (rec.bvp.len() + rec.gsr.len() + rec.skt.len()) * 4
                );
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        assert_eq!(s.resident_bytes(), 0, "rejected chunk must not buffer");
        assert_eq!(s.stats().shed_rejected_chunks, 1);
        // A chunk that fits still works afterwards.
        assert!(s.ingest(&rec.bvp[..64], &rec.gsr[..8], &rec.skt[..4]).is_ok());
    }

    #[test]
    fn drop_oldest_sheds_windows_and_never_rejects() {
        let (rec, signal) = first_recording(9);
        let cfg = SessionConfig::new(signal, WindowConfig::default(), 2);
        let budget = cfg.min_resident_bytes();
        let mut s = StreamSession::new("u", cfg.with_budget(budget).with_shed(ShedPolicy::DropOldest))
            .unwrap();
        // Stall SKT entirely: no window can ever complete, so without
        // shedding the buffers would grow unboundedly.
        let mut shed = 0usize;
        for chunk in rec.bvp.chunks(256) {
            let r = s.ingest(chunk, &[], &[]).unwrap();
            shed += r.shed_windows;
        }
        for chunk in rec.gsr.chunks(32) {
            let r = s.ingest(&[], chunk, &[]).unwrap();
            shed += r.shed_windows;
        }
        assert!(shed > 0, "expected dropped windows");
        assert_eq!(s.stats().shed_dropped_windows as usize, shed);
        assert!(
            s.resident_bytes() <= budget + 256 * 4,
            "resident {} vs budget {}",
            s.resident_bytes(),
            budget
        );
    }

    #[test]
    fn sparse_hop_halves_resolution_while_over_budget() {
        let (rec, signal) = first_recording(15);
        let cfg = SessionConfig::new(signal, WindowConfig::default(), 1);
        // A budget below one ready map keeps the session permanently over
        // budget once maps queue up (nothing drains them here), so every
        // emitted window is followed by a skipped one.
        let budget = 600 * 4;
        let mut s = StreamSession::new(
            "u",
            cfg.with_budget(budget).with_shed(ShedPolicy::DegradeToSparseHop),
        )
        .unwrap();
        let r = s.ingest(&rec.bvp, &rec.gsr, &rec.skt).unwrap();
        // 4 possible windows: emitted 0, skipped 1, emitted 2, skipped 3.
        assert_eq!(r.windows, 2);
        assert_eq!(r.shed_windows, 2);
        assert_eq!(s.stats().shed_sparse_hop_windows, 2);
    }

    #[test]
    fn closed_session_rejects_ingest_but_keeps_ready_maps() {
        let (rec, signal) = first_recording(27);
        let mut s =
            StreamSession::new("u", SessionConfig::new(signal, WindowConfig::default(), 2))
                .unwrap();
        s.ingest(&rec.bvp, &rec.gsr, &rec.skt).unwrap();
        s.close();
        assert!(matches!(
            s.ingest(&[1.0], &[], &[]),
            Err(StreamError::Closed(_))
        ));
        assert_eq!(s.take_ready().len(), 2);
    }

    #[test]
    fn resampled_ingest_matches_pipeline_rate_ingest() {
        let (rec, signal) = first_recording(31);
        // Device records BVP at half rate and GSR at double rate; the
        // pipeline-rate reference signal is the resample_grid output.
        let device = SignalConfig {
            fs_bvp: 32.0,
            fs_gsr: 16.0,
            ..signal
        };
        // Build device-rate traces by downsampling the pipeline signal
        // (contents are irrelevant — identity is what matters).
        let dev_bvp: Vec<f32> = rec.bvp.iter().step_by(2).copied().collect();
        let dev_gsr: Vec<f32> = rec
            .gsr
            .iter()
            .flat_map(|&v| [v, v + 0.125])
            .collect();
        let ref_bvp =
            clear_dsp::resample::resample_grid(&dev_bvp, device.fs_bvp, signal.fs_bvp).unwrap();
        let ref_gsr =
            clear_dsp::resample::resample_grid(&dev_gsr, device.fs_gsr, signal.fs_gsr).unwrap();

        let wcfg = WindowConfig::default();
        let mut direct =
            StreamSession::new("a", SessionConfig::new(signal, wcfg, 1)).unwrap();
        direct.ingest(&ref_bvp, &ref_gsr, &rec.skt).unwrap();

        let mut resampled = StreamSession::new(
            "b",
            SessionConfig::new(signal, wcfg, 1).with_ingest_rates(device),
        )
        .unwrap();
        // Feed the device stream in chunks to exercise the streaming path.
        let mut ob = 0;
        let mut og = 0;
        let mut os = 0;
        while ob < dev_bvp.len() || og < dev_gsr.len() || os < rec.skt.len() {
            let nb = (ob + 100).min(dev_bvp.len());
            let ng = (og + 37).min(dev_gsr.len());
            let ns = (os + 11).min(rec.skt.len());
            resampled
                .ingest(&dev_bvp[ob..nb], &dev_gsr[og..ng], &rec.skt[os..ns])
                .unwrap();
            ob = nb;
            og = ng;
            os = ns;
        }
        let a = direct.take_ready();
        let b = resampled.take_ready();
        assert!(!b.is_empty());
        assert_eq!(a.len(), b.len());
        for (ma, mb) in a.iter().zip(&b) {
            for f in 0..ma.feature_count() {
                for w in 0..ma.window_count() {
                    assert_eq!(ma.get(f, w).to_bits(), mb.get(f, w).to_bits());
                }
            }
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let signal = SignalConfig::default();
        assert!(matches!(
            StreamSession::new("u", SessionConfig::new(signal, WindowConfig::default(), 0)),
            Err(StreamError::BadConfig(_))
        ));
        let bad_rates = SignalConfig {
            fs_bvp: -1.0,
            ..signal
        };
        assert!(matches!(
            StreamSession::new(
                "u",
                SessionConfig::new(signal, WindowConfig::default(), 1).with_ingest_rates(bad_rates)
            ),
            Err(StreamError::BadConfig(_))
        ));
    }
}
