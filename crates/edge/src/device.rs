//! Device descriptors: precision, throughput, overheads, power.
//!
//! The constants below are calibrated once against the paper's Table II
//! (the only published measurements of this workload on these devices) and
//! then reused unchanged by every experiment. Timing is *computed* from
//! the deployed network's FLOPs, so a larger or smaller model yields
//! correspondingly different simulated measurements.

use clear_nn::quantize::Precision;
use serde::{Deserialize, Serialize};

/// A deployment target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// Workstation GPU — the paper's training/evaluation baseline.
    Gpu,
    /// Google Coral Edge TPU Dev Board (int8 accelerator).
    CoralTpu,
    /// Raspberry Pi + Intel Movidius Neural Compute Stick 2 (fp16, USB).
    PiNcs2,
}

impl Device {
    /// All simulated devices, baseline first.
    pub fn all() -> [Device; 3] {
        [Device::Gpu, Device::CoralTpu, Device::PiNcs2]
    }

    /// The device's performance/power descriptor.
    pub fn spec(self) -> DeviceSpec {
        match self {
            Device::Gpu => DeviceSpec {
                precision: Precision::Fp32,
                infer_overhead_s: 0.8e-3,
                infer_flops_per_s: 4.0e9,
                train_flops_per_s: 2.0e9,
                epoch_overhead_s: 2.0e-3,
                convergence_factor: 1.0,
                idle_w: 45.0,
                infer_delta_w: 65.0,
                train_delta_w: 120.0,
            },
            Device::CoralTpu => DeviceSpec {
                precision: Precision::Int8,
                // Table II: MTC test 47.31 ms for a ~1.5 MFLOP model —
                // runtime/IO overhead dominates tiny models.
                infer_overhead_s: 46.0e-3,
                infer_flops_per_s: 1.2e9,
                // Table II: MTC re-training 32.48 s.
                train_flops_per_s: 11.0e6,
                epoch_overhead_s: 0.12,
                // The paper notes the TPU "may converge faster during
                // training" thanks to 8-bit arithmetic.
                convergence_factor: 0.7,
                // Table II: MPC baseline 1.28 W, test 1.64 W, re-train 1.82 W.
                idle_w: 1.28,
                infer_delta_w: 0.36,
                train_delta_w: 0.54,
            },
            Device::PiNcs2 => DeviceSpec {
                precision: Precision::Fp16,
                // Table II: MTC test 239.70 ms — USB round trip dominates.
                infer_overhead_s: 236.0e-3,
                infer_flops_per_s: 0.6e9,
                // Table II: MTC re-training 78.52 s.
                train_flops_per_s: 6.5e6,
                epoch_overhead_s: 0.25,
                convergence_factor: 1.0,
                // Table II: MPC baseline 2.76 W, test 3.43 W, re-train 3.78 W.
                idle_w: 2.76,
                infer_delta_w: 0.67,
                train_delta_w: 1.02,
            },
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Device::Gpu => "GPU",
            Device::CoralTpu => "Coral TPU",
            Device::PiNcs2 => "Pi + NCS2",
        };
        f.write_str(name)
    }
}

/// Performance and power characteristics of a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Native weight/activation precision.
    pub precision: Precision,
    /// Fixed per-inference overhead (runtime dispatch, USB transfer), s.
    pub infer_overhead_s: f32,
    /// Effective inference throughput for this workload, FLOPs/s.
    pub infer_flops_per_s: f32,
    /// Effective training throughput (forward + backward), FLOPs/s.
    pub train_flops_per_s: f32,
    /// Fixed per-epoch overhead during on-device training, s.
    pub epoch_overhead_s: f32,
    /// Multiplier on epochs-to-convergence (< 1 converges faster).
    pub convergence_factor: f32,
    /// Idle ("baseline") power draw, W.
    pub idle_w: f32,
    /// Additional power draw while running inference, W.
    pub infer_delta_w: f32,
    /// Additional power draw while re-training, W.
    pub train_delta_w: f32,
}

impl DeviceSpec {
    /// Simulated wall-clock of a single inference of `flops` FLOPs, seconds.
    pub fn inference_time_s(&self, flops: u64) -> f32 {
        self.infer_overhead_s + flops as f32 / self.infer_flops_per_s
    }

    /// Simulated wall-clock of on-device re-training, seconds.
    ///
    /// `epochs` is the number of epochs the training loop actually ran,
    /// `samples` the training-set size, and `flops` the forward cost per
    /// sample (backward counted as 2× forward).
    pub fn retraining_time_s(&self, epochs: usize, samples: usize, flops: u64) -> f32 {
        let step_flops = 3.0 * flops as f32;
        let effective_epochs = epochs as f32 * self.convergence_factor;
        effective_epochs
            * (self.epoch_overhead_s + samples as f32 * step_flops / self.train_flops_per_s)
    }

    /// Mean power during inference, W.
    pub fn test_power_w(&self) -> f32 {
        self.idle_w + self.infer_delta_w
    }

    /// Mean power during re-training, W.
    pub fn retraining_power_w(&self) -> f32 {
        self.idle_w + self.train_delta_w
    }

    /// Energy of one inference, joules.
    pub fn inference_energy_j(&self, flops: u64) -> f32 {
        self.inference_time_s(flops) * self.test_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FLOP count of the paper-scale CNN-LSTM (123×9 input), used to check
    /// the calibration against Table II.
    fn paper_flops() -> u64 {
        let net = clear_nn::network::cnn_lstm(123, 9, 2, 1);
        clear_nn::summary::summarize(&net, &[1, 123, 9]).total_flops()
    }

    #[test]
    fn tpu_inference_time_matches_table2_scale() {
        let t = Device::CoralTpu.spec().inference_time_s(paper_flops()) * 1000.0;
        assert!(
            (35.0..65.0).contains(&t),
            "TPU test {t} ms, table says 47.31"
        );
    }

    #[test]
    fn ncs2_inference_time_matches_table2_scale() {
        let t = Device::PiNcs2.spec().inference_time_s(paper_flops()) * 1000.0;
        assert!(
            (190.0..290.0).contains(&t),
            "NCS2 test {t} ms, table says 239.70"
        );
    }

    #[test]
    fn tpu_is_faster_and_leaner_than_ncs2() {
        let flops = paper_flops();
        let tpu = Device::CoralTpu.spec();
        let ncs2 = Device::PiNcs2.spec();
        assert!(tpu.inference_time_s(flops) < ncs2.inference_time_s(flops));
        assert!(tpu.retraining_time_s(25, 4, flops) < ncs2.retraining_time_s(25, 4, flops));
        assert!(tpu.test_power_w() < ncs2.test_power_w());
        assert!(tpu.retraining_power_w() < ncs2.retraining_power_w());
        assert!(tpu.idle_w < ncs2.idle_w);
    }

    #[test]
    fn gpu_is_fastest() {
        let flops = paper_flops();
        let gpu = Device::Gpu.spec();
        for dev in [Device::CoralTpu, Device::PiNcs2] {
            assert!(gpu.inference_time_s(flops) < dev.spec().inference_time_s(flops));
        }
    }

    #[test]
    fn retraining_time_scales_with_work() {
        let spec = Device::CoralTpu.spec();
        let f = paper_flops();
        assert!(spec.retraining_time_s(20, 4, f) < spec.retraining_time_s(40, 4, f));
        assert!(spec.retraining_time_s(20, 4, f) < spec.retraining_time_s(20, 8, f));
    }

    #[test]
    fn retraining_time_matches_table2_scale() {
        // Paper setup ≈ 20 % of ~18 maps (4 samples) to convergence.
        let f = paper_flops();
        let tpu = Device::CoralTpu.spec().retraining_time_s(25, 4, f);
        let ncs2 = Device::PiNcs2.spec().retraining_time_s(25, 4, f);
        assert!(
            (18.0..50.0).contains(&tpu),
            "TPU retrain {tpu} s, table says 32.48"
        );
        assert!(
            (55.0..110.0).contains(&ncs2),
            "NCS2 retrain {ncs2} s, table says 78.52"
        );
    }

    #[test]
    fn power_ordering_baseline_test_train() {
        for dev in Device::all() {
            let s = dev.spec();
            assert!(s.idle_w < s.test_power_w());
            assert!(s.test_power_w() < s.retraining_power_w());
        }
    }

    #[test]
    fn precisions_match_hardware() {
        assert_eq!(Device::Gpu.spec().precision, Precision::Fp32);
        assert_eq!(Device::CoralTpu.spec().precision, Precision::Int8);
        assert_eq!(Device::PiNcs2.spec().precision, Precision::Fp16);
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::CoralTpu.to_string(), "Coral TPU");
        assert_eq!(Device::PiNcs2.to_string(), "Pi + NCS2");
        assert_eq!(Device::Gpu.to_string(), "GPU");
    }

    #[test]
    fn energy_is_time_times_power() {
        let spec = Device::CoralTpu.spec();
        let e = spec.inference_energy_j(1_000_000);
        let expected = spec.inference_time_s(1_000_000) * spec.test_power_w();
        assert!((e - expected).abs() < 1e-6);
    }
}
