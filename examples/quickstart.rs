//! Quickstart: the whole CLEAR pipeline in one page.
//!
//! Generates a small synthetic cohort, runs the cloud stage (clustering +
//! per-cluster pre-training), then onboards the last volunteer as a brand
//! new user: cold-start cluster assignment from unlabeled data, followed
//! by fine-tuning with a handful of labeled recordings.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::pipeline::CloudTraining;
use clear::nn::train;

fn main() {
    // 1. A reproducible synthetic cohort (the WEMAC stand-in) and its
    //    123-feature maps. `quick` keeps this example fast; use
    //    `ClearConfig::paper(seed)` for the full 44-volunteer setup.
    let config = ClearConfig::quick(42);
    let data = PreparedCohort::prepare(&config);
    println!(
        "cohort: {} volunteers, {} recordings -> {} feature maps (123 x {})",
        data.subject_ids().len(),
        data.cohort().recordings().len(),
        data.maps().len(),
        data.windows()
    );

    // 2. Cloud stage: cluster the initial population and pre-train one
    //    CNN-LSTM per cluster. The last volunteer plays the "new user".
    let subjects = data.subject_ids();
    let (&new_user, initial) = subjects.split_last().expect("cohort is non-empty");
    let cloud = CloudTraining::fit(&data, initial, &config);
    println!(
        "cloud stage: K = {} clusters with sizes {:?}",
        cloud.cluster_count(),
        (0..cloud.cluster_count())
            .map(|c| cloud.members_of(c).len())
            .collect::<Vec<_>>()
    );

    // 3. Cold start: assign the new user from ~10 % *unlabeled* data.
    let indices = data.indices_of(new_user);
    let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
    let assigned = cloud.assign_user(&data, &indices[..ca_n]);
    let cold = cloud.evaluate(&data, assigned, &indices[ca_n..]);
    println!(
        "cold start: user {new_user} assigned to cluster {assigned}; accuracy without any labels: {:.1} %",
        cold.accuracy * 100.0
    );

    // 4. Personalization: fine-tune the cluster model with ~20 % labeled
    //    data and test on the rest.
    let ft_n = ((indices.len() as f32 * config.ft_fraction).ceil() as usize).max(1);
    let ft_ds = cloud.user_dataset(&data, &indices[ca_n..ca_n + ft_n]);
    let test_ds = cloud.user_dataset(&data, &indices[ca_n + ft_n..]);
    let personalized = cloud.fine_tune(assigned, &ft_ds, &config.finetune);
    let tuned = train::evaluate(&personalized, &test_ds);
    println!(
        "fine-tuned with {ft_n} labeled recordings: accuracy {:.1} % (f1 {:.1} %)",
        tuned.accuracy * 100.0,
        tuned.f1 * 100.0
    );
}
