//! Concurrency stress: eight scoped threads interleave onboard /
//! predict / personalize / offboard on six overlapping users, then the
//! per-user operation logs are replayed through fresh sequential
//! `ClearDeployment`s. Every logged result — predictions, outcomes and
//! errors alike — must match the replay exactly.

mod common;

use clear_core::deployment::{ClearDeployment, Onboarding, Prediction};
use clear_serve::{EngineConfig, ServeEngine};
use common::{fixture, labeled_of, lenient, maps_of, nan_map, outcome_key, Fixture};
use parking_lot::Mutex;

const USERS: usize = 6;
const THREADS: usize = 8;
const ROUNDS: usize = 6;

#[derive(Debug, Clone, Copy)]
enum Op {
    Onboard,
    Predict(usize),
    PredictDegraded,
    Personalize,
    Offboard,
}

/// An operation's observable outcome. Errors are compared as display
/// strings: `ServeError::Deploy` renders identically to the underlying
/// `DeployError`, so engine and deployment failures unify here.
/// Personalization outcomes are stored as their NaN-safe bit key (the
/// unvalidated path reports a NaN baseline accuracy).
#[derive(Debug, PartialEq)]
enum OpResult {
    Onboard(Result<Onboarding, String>),
    Predict(Result<Vec<Prediction>, String>),
    Personalize(Result<(bool, bool, u32, u32), String>),
    Offboard(bool),
}

/// Deterministic schedule: round 0 onboards everyone, later rounds mix
/// the remaining operations so re-onboarding, offboarded-user errors and
/// degraded batches all occur under contention.
fn op_for(thread: usize, round: usize) -> Op {
    if round == 0 {
        return Op::Onboard;
    }
    match (thread * 7 + round * 3) % 10 {
        0 | 1 => Op::Onboard,
        2 => Op::Personalize,
        3 => Op::Offboard,
        4 => Op::PredictDegraded,
        k => Op::Predict(k % 3),
    }
}

fn op_maps(f: &Fixture, idx: usize, op: Op) -> Vec<clear_features::FeatureMap> {
    match op {
        Op::Onboard => maps_of(f, idx, 0, 2),
        Op::Predict(k) => maps_of(f, idx, 3 + k, 5 + k),
        Op::PredictDegraded => {
            let mut maps = maps_of(f, idx, 3, 4);
            maps.push(nan_map(f));
            maps
        }
        Op::Personalize | Op::Offboard => Vec::new(),
    }
}

fn apply_engine(engine: &ServeEngine, user: &str, idx: usize, op: Op) -> OpResult {
    let f = fixture();
    match op {
        Op::Onboard => OpResult::Onboard(
            engine
                .onboard(user, &op_maps(f, idx, op))
                .map_err(|e| e.to_string()),
        ),
        Op::Predict(_) | Op::PredictDegraded => OpResult::Predict(
            engine
                .predict(user, &op_maps(f, idx, op))
                .map_err(|e| e.to_string()),
        ),
        Op::Personalize => OpResult::Personalize(
            engine
                .personalize(user, &labeled_of(f, idx, 2, 4), &f.config.finetune)
                .map(|o| outcome_key(&o))
                .map_err(|e| e.to_string()),
        ),
        Op::Offboard => OpResult::Offboard(
            engine
                .offboard(user)
                .expect("non-durable offboard cannot fail"),
        ),
    }
}

fn apply_dep(dep: &mut ClearDeployment, user: &str, idx: usize, op: Op) -> OpResult {
    let f = fixture();
    match op {
        Op::Onboard => OpResult::Onboard(
            dep.onboard(user, &op_maps(f, idx, op))
                .map_err(|e| e.to_string()),
        ),
        Op::Predict(_) | Op::PredictDegraded => OpResult::Predict(
            dep.predict_batch(user, &op_maps(f, idx, op))
                .map_err(|e| e.to_string()),
        ),
        Op::Personalize => OpResult::Personalize(
            dep.personalize(user, &labeled_of(f, idx, 2, 4), &f.config.finetune)
                .map(|o| outcome_key(&o))
                .map_err(|e| e.to_string()),
        ),
        Op::Offboard => OpResult::Offboard(dep.offboard(user)),
    }
}

#[test]
fn interleaved_multi_user_ops_replay_sequentially() {
    let f = fixture();
    let engine = ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig {
            shards: 2,
            cache_capacity: 2,
            max_queue_depth: 64,
            ..EngineConfig::default()
        },
    );

    // One log per user. Holding the user's log mutex across the engine
    // call serializes that user's operations (so the log order IS the
    // engine-observed order) while different users still run truly
    // concurrently across shards.
    let logs: Vec<Mutex<Vec<(Op, OpResult)>>> =
        (0..USERS).map(|_| Mutex::new(Vec::new())).collect();

    crossbeam::thread::scope(|scope| {
        for thread in 0..THREADS {
            let logs = &logs;
            let engine = &engine;
            scope.spawn(move |_| {
                for round in 0..ROUNDS {
                    let idx = (thread + round) % USERS;
                    let user = format!("user-{idx}");
                    let op = op_for(thread, round);
                    let mut log = logs[idx].lock();
                    let result = apply_engine(engine, &user, idx, op);
                    log.push((op, result));
                }
            });
        }
    })
    .expect("a stress thread panicked");

    // Replay: each user's log against a fresh sequential deployment.
    for (idx, log) in logs.iter().enumerate() {
        let user = format!("user-{idx}");
        let mut dep = ClearDeployment::with_policy(f.bundle.clone(), lenient());
        for (step, (op, got)) in log.lock().iter().enumerate() {
            let want = apply_dep(&mut dep, &user, idx, *op);
            assert_eq!(
                got, &want,
                "{user} step {step} ({op:?}): engine diverged from sequential replay"
            );
        }
        assert_eq!(
            engine.cluster_of(&user).ok(),
            dep.cluster_of(&user).ok(),
            "{user}: terminal cluster diverged"
        );
        assert_eq!(
            engine.is_personalized(&user),
            dep.is_personalized(&user),
            "{user}: terminal personalization flag diverged"
        );
        assert_eq!(
            engine.quarantined_count(&user),
            dep.quarantined_count(&user),
            "{user}: terminal quarantine count diverged"
        );
    }

    let stats = engine.cache_stats();
    assert!(
        stats.resident <= stats.capacity,
        "cache bound violated after stress: {stats:?}"
    );
}
