//! Radix-2 iterative fast Fourier transform and spectrum helpers.
//!
//! The CLEAR feature extractor needs magnitude/power spectra of short signal
//! windows (GSR and BVP frequency-domain features). A minimal complex type
//! and an in-place iterative Cooley-Tukey FFT cover that; inputs whose
//! length is not a power of two are zero-padded by the convenience wrappers.

use crate::DspError;

/// A complex number in `f32`, sufficient for short-window spectra.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Creates a complex number from rectangular coordinates.
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Magnitude `sqrt(re² + im²)`.
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root).
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
}

impl std::ops::Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place forward FFT of a power-of-two-length complex buffer.
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when `buf.len()` is not a power of two
/// (zero counts as invalid).
pub fn fft_in_place(buf: &mut [Complex32]) -> Result<(), DspError> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex32]) -> Result<(), DspError> {
    transform(buf, true)?;
    let n = buf.len() as f32;
    for v in buf.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex32], inverse: bool) -> Result<(), DspError> {
    let n = buf.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(DspError::BadLength {
            expected: "a nonzero power of two",
            actual: n,
        });
    }
    if n == 1 {
        return Ok(()); // the length-1 transform is the identity
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex32::new(ang.cos(), ang.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex32::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Next power of two that is `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_pow2(x.len())`.
pub fn fft_real(x: &[f32]) -> Vec<Complex32> {
    let n = next_pow2(x.len());
    let mut buf: Vec<Complex32> = x.iter().map(|&v| Complex32::new(v, 0.0)).collect();
    buf.resize(n, Complex32::default());
    fft_in_place(&mut buf).expect("length is a power of two by construction");
    buf
}

/// Magnitude spectrum `|X[k]|` of a real signal (zero-padded, full length).
pub fn magnitude_spectrum(x: &[f32]) -> Vec<f32> {
    fft_real(x).into_iter().map(Complex32::abs).collect()
}

/// One-sided power spectrum of a real signal.
///
/// Returns `n/2 + 1` bins, `|X[k]|² / n`, with interior bins doubled to
/// account for the mirrored negative frequencies.
pub fn power_spectrum(x: &[f32]) -> Vec<f32> {
    let spec = fft_real(x);
    let n = spec.len();
    let half = n / 2;
    let norm = 1.0 / n as f32;
    (0..=half)
        .map(|k| {
            let p = spec[k].norm_sqr() * norm;
            if k == 0 || k == half {
                p
            } else {
                2.0 * p
            }
        })
        .collect()
}

/// Frequency in Hz of one-sided spectrum bin `k` for a signal of padded
/// length `n` sampled at `fs` Hz.
pub fn bin_frequency(k: usize, n: usize, fs: f32) -> f32 {
    k as f32 * fs / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex32::default(); 6];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(DspError::BadLength { .. })
        ));
        let mut empty: Vec<Complex32> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn length_one_fft_is_identity() {
        let mut buf = vec![Complex32::new(3.5, -1.25)];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex32::new(3.5, -1.25));
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex32::new(3.5, -1.25));
        // The real-signal helpers are total over length-1 input too.
        assert_eq!(fft_real(&[2.0]).len(), 1);
        assert_eq!(power_spectrum(&[2.0]).len(), 1);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex32::default(); 8];
        buf[0] = Complex32::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for v in &buf {
            assert!(close(v.re, 1.0, 1e-5));
            assert!(close(v.im, 0.0, 1e-5));
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let mut buf = vec![Complex32::new(1.0, 0.0); 16];
        fft_in_place(&mut buf).unwrap();
        assert!(close(buf[0].re, 16.0, 1e-4));
        for v in &buf[1..] {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<f32> = (0..32)
            .map(|i| (i as f32 * 0.37).sin() + 0.1 * i as f32)
            .collect();
        let mut buf: Vec<Complex32> = x.iter().map(|&v| Complex32::new(v, 0.0)).collect();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, rec) in x.iter().zip(&buf) {
            assert!(close(*orig, rec.re, 1e-4));
            assert!(close(rec.im, 0.0, 1e-4));
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let fs = 128.0;
        let f0 = 12.0;
        let x: Vec<f32> = (0..128)
            .map(|n| (2.0 * std::f32::consts::PI * f0 * n as f32 / fs).cos())
            .collect();
        let ps = power_spectrum(&x);
        let peak = crate::stats::argmax(&ps).unwrap();
        assert_eq!(peak, 12);
        assert!(close(bin_frequency(peak, 128, fs), 12.0, 1e-6));
    }

    #[test]
    fn parseval_energy_identity() {
        let x: Vec<f32> = (0..64).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.3).collect();
        let time_energy: f32 = x.iter().map(|v| v * v).sum();
        let spec = fft_real(&x);
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / 64.0;
        assert!(close(time_energy, freq_energy, 1e-3 * time_energy.max(1.0)));
    }

    #[test]
    fn one_sided_power_sums_to_signal_power() {
        // For a zero-mean tone of amplitude A, total one-sided power = A²/2.
        let x: Vec<f32> = (0..256)
            .map(|n| 3.0 * (2.0 * std::f32::consts::PI * 10.0 * n as f32 / 256.0).sin())
            .collect();
        let total: f32 = power_spectrum(&x).iter().sum::<f32>() / 256.0;
        assert!(close(total, 4.5, 0.05));
    }

    #[test]
    fn zero_padding_keeps_length_pow2() {
        let x = vec![1.0f32; 100];
        assert_eq!(fft_real(&x).len(), 128);
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(129), 256);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        assert_eq!(a + b, Complex32::new(4.0, 1.0));
        assert_eq!(a - b, Complex32::new(-2.0, 3.0));
        assert_eq!(a * b, Complex32::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
        assert!(close(a.abs(), 5.0f32.sqrt(), 1e-6));
        assert!(close(a.norm_sqr(), 5.0, 1e-6));
    }
}
