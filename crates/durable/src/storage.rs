//! The injectable byte-level backend beneath the WAL and snapshots.
//!
//! Durability code never opens files directly; it goes through
//! [`Storage`], so the same WAL/snapshot/recovery logic runs against a
//! real filesystem ([`FsStorage`]), an in-memory store for fast tests
//! ([`MemStorage`]), and a deterministic crash simulator
//! ([`FaultStorage`]) that fails — optionally mid-write, leaving a torn
//! prefix — at any chosen write boundary. The crash-injection suite in
//! `clear-serve` sweeps that boundary across a whole operation script,
//! which is how the recovery invariant is proven without killing real
//! processes.

use crate::DurableError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A minimal durable byte store: named blobs with appends, atomic
/// replacement and removal. Every write method is expected to be durable
/// (synced) when it returns `Ok`.
pub trait Storage: Send + Sync {
    /// Reads a blob, `None` when it does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on read failure.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError>;

    /// Appends `bytes` to a blob (creating it if missing) and syncs.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on write/sync failure; a failed
    /// append may leave a *prefix* of `bytes` behind (a torn write),
    /// never interleaved or reordered bytes.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;

    /// Atomically replaces a blob's contents and syncs: after a crash
    /// the blob holds either the old bytes or the new bytes, never a
    /// mixture.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on write/sync failure (the old
    /// contents survive).
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;

    /// Removes a blob; succeeds if it was already absent.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on removal failure.
    fn remove(&self, name: &str) -> Result<(), DurableError>;
}

fn io_err(context: &str, e: std::io::Error) -> DurableError {
    DurableError::Io(format!("{context}: {e}"))
}

/// Real-filesystem storage rooted at one directory. Appends open the
/// file in append mode and `sync_all` before returning; atomic writes
/// go through a temporary file, `sync_all`, rename, and a best-effort
/// directory sync so the rename itself is durable.
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Opens (creating if needed) a storage directory.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] when the directory cannot be
    /// created.
    pub fn open(root: &Path) -> Result<Self, DurableError> {
        std::fs::create_dir_all(root).map_err(|e| io_err("create storage dir", e))?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) {
        // Directory fsync makes renames durable on Linux; on platforms
        // where directories cannot be synced this is best-effort.
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl Storage for FsStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        match std::fs::read(self.path_of(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_of(name))
            .map_err(|e| io_err("open for append", e))?;
        file.write_all(bytes).map_err(|e| io_err("append", e))?;
        file.sync_all().map_err(|e| io_err("sync", e))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let tmp = self.path_of(&format!("{name}.tmp"));
        let target = self.path_of(name);
        {
            let mut file =
                std::fs::File::create(&tmp).map_err(|e| io_err("create temp file", e))?;
            file.write_all(bytes).map_err(|e| io_err("write temp", e))?;
            file.sync_all().map_err(|e| io_err("sync temp", e))?;
        }
        std::fs::rename(&tmp, &target).map_err(|e| io_err("publish rename", e))?;
        self.sync_dir();
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), DurableError> {
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", e)),
        }
    }
}

/// In-memory storage: a thread-safe blob map with filesystem-append
/// semantics. The reference backend for tests and the substrate behind
/// [`FaultStorage`].
#[derive(Default)]
pub struct MemStorage {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store seeded with `blobs` — e.g. the surviving bytes captured
    /// from a [`FaultStorage`] crash, handed to recovery.
    pub fn from_blobs(blobs: HashMap<String, Vec<u8>>) -> Self {
        Self {
            blobs: Mutex::new(blobs),
        }
    }

    /// A copy of every blob — "what the disk holds right now".
    pub fn dump(&self) -> HashMap<String, Vec<u8>> {
        self.blobs.lock().clone()
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        Ok(self.blobs.lock().get(name).cloned())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        self.blobs
            .lock()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        self.blobs.lock().insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), DurableError> {
        self.blobs.lock().remove(name);
        Ok(())
    }
}

/// Where a [`FaultStorage`] crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index of the write boundary (append or atomic write)
    /// at which the simulated crash happens. Boundaries are counted
    /// across the store's lifetime; reads never count.
    pub kill_at: usize,
    /// For a killed *append*: how many bytes of the attempted write land
    /// before the crash (clamped to the write's length). Atomic writes
    /// ignore this — they leave the old contents, by contract.
    pub torn_bytes: usize,
}

/// Where a [`FaultStorage`] misbehaves on the *read* path. Unlike the
/// write plan (a crash kills every later write), read faults are
/// per-boundary: recovery and snapshot-transfer code must turn one bad
/// read into a typed error, not die forever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadFaultPlan {
    /// Zero-based read boundary at which `read` fails with an I/O error.
    pub fail_at: Option<usize>,
    /// Zero-based read boundary whose returned bytes come back corrupted
    /// (one bit flipped in the middle of the blob) — simulated bit rot
    /// that the checksummed formats must catch.
    pub corrupt_at: Option<usize>,
}

/// A crash-simulating wrapper over [`MemStorage`]: write boundary
/// `kill_at` fails (tearing appends at `torn_bytes`), and every write
/// after it fails too — the process is "dead". Reads keep working so the
/// test can capture the surviving bytes via [`FaultStorage::surviving`] —
/// unless a [`ReadFaultPlan`] injects an I/O error or corrupted bytes at
/// a chosen read boundary, which is how recovery and snapshot-transfer
/// paths are fault-tested.
pub struct FaultStorage {
    inner: MemStorage,
    plan: FaultPlan,
    read_plan: ReadFaultPlan,
    writes: AtomicUsize,
    reads: AtomicUsize,
}

impl FaultStorage {
    /// A store that crashes according to `plan` (reads are reliable).
    pub fn new(plan: FaultPlan) -> Self {
        Self::seeded(HashMap::new(), plan, ReadFaultPlan::default())
    }

    /// A store with both a write crash plan and a read fault plan,
    /// starting from `blobs` — typically the dump of a healthy store,
    /// handed to recovery.
    pub fn seeded(
        blobs: HashMap<String, Vec<u8>>,
        plan: FaultPlan,
        read_plan: ReadFaultPlan,
    ) -> Self {
        Self {
            inner: MemStorage::from_blobs(blobs),
            plan,
            read_plan,
            writes: AtomicUsize::new(0),
            reads: AtomicUsize::new(0),
        }
    }

    /// Write boundaries attempted so far (including failed ones).
    pub fn write_boundaries(&self) -> usize {
        self.writes.load(Ordering::SeqCst)
    }

    /// Read boundaries attempted so far (including faulted ones).
    pub fn read_boundaries(&self) -> usize {
        self.reads.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has happened.
    pub fn crashed(&self) -> bool {
        self.writes.load(Ordering::SeqCst) > self.plan.kill_at
    }

    /// The surviving bytes, as a fresh [`MemStorage`] for recovery.
    pub fn surviving(&self) -> Arc<MemStorage> {
        Arc::new(MemStorage::from_blobs(self.inner.dump()))
    }

    /// Claims the next write boundary; `true` means this write crashes.
    fn next_write_fails(&self) -> bool {
        self.writes.fetch_add(1, Ordering::SeqCst) >= self.plan.kill_at
    }

    fn dead() -> DurableError {
        DurableError::Io("simulated crash".to_string())
    }
}

impl Storage for FaultStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        let boundary = self.reads.fetch_add(1, Ordering::SeqCst);
        if self.read_plan.fail_at == Some(boundary) {
            return Err(DurableError::Io(format!(
                "simulated read fault at boundary {boundary}"
            )));
        }
        let out = self.inner.read(name)?;
        if self.read_plan.corrupt_at == Some(boundary) {
            if let Some(mut bytes) = out {
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                }
                return Ok(Some(bytes));
            }
        }
        Ok(out)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        if self.next_write_fails() {
            // Exactly the kill boundary tears; later writes are from a
            // process that no longer exists and land nothing.
            if self.writes.load(Ordering::SeqCst) == self.plan.kill_at + 1 {
                let torn = self.plan.torn_bytes.min(bytes.len());
                self.inner.append(name, &bytes[..torn])?;
            }
            return Err(Self::dead());
        }
        self.inner.append(name, bytes)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        if self.next_write_fails() {
            return Err(Self::dead());
        }
        self.inner.write_atomic(name, bytes)
    }

    fn remove(&self, name: &str) -> Result<(), DurableError> {
        if self.next_write_fails() {
            return Err(Self::dead());
        }
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clear-durable-{tag}-{}", std::process::id()))
    }

    #[test]
    fn fs_storage_round_trips_appends_and_atomic_writes() {
        let root = temp_root("fs");
        let storage = FsStorage::open(&root).unwrap();
        assert_eq!(storage.read("wal").unwrap(), None);
        storage.append("wal", b"one").unwrap();
        storage.append("wal", b"two").unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"onetwo");
        storage.write_atomic("wal", b"fresh").unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"fresh");
        storage.write_atomic("snap", b"state").unwrap();
        assert_eq!(storage.read("snap").unwrap().unwrap(), b"state");
        storage.remove("wal").unwrap();
        storage.remove("wal").unwrap(); // idempotent
        assert_eq!(storage.read("wal").unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mem_storage_matches_fs_semantics() {
        let storage = MemStorage::new();
        assert_eq!(storage.read("x").unwrap(), None);
        storage.append("x", b"ab").unwrap();
        storage.append("x", b"cd").unwrap();
        assert_eq!(storage.read("x").unwrap().unwrap(), b"abcd");
        storage.write_atomic("x", b"z").unwrap();
        assert_eq!(storage.read("x").unwrap().unwrap(), b"z");
        storage.remove("x").unwrap();
        assert_eq!(storage.read("x").unwrap(), None);
    }

    #[test]
    fn fault_storage_kills_at_the_chosen_boundary_with_a_torn_prefix() {
        let storage = FaultStorage::new(FaultPlan {
            kill_at: 2,
            torn_bytes: 2,
        });
        storage.append("wal", b"aaaa").unwrap(); // boundary 0
        storage.append("wal", b"bbbb").unwrap(); // boundary 1
        assert!(!storage.crashed());
        let err = storage.append("wal", b"cccc").unwrap_err(); // boundary 2: crash
        assert!(matches!(err, DurableError::Io(_)));
        assert!(storage.crashed());
        // Later writes land nothing at all.
        assert!(storage.append("wal", b"dddd").is_err());
        assert!(storage.write_atomic("snap", b"s").is_err());
        let survivor = storage.surviving();
        assert_eq!(survivor.read("wal").unwrap().unwrap(), b"aaaabbbbcc");
        assert_eq!(survivor.read("snap").unwrap(), None);
    }

    #[test]
    fn fault_storage_injects_read_failure_at_the_chosen_boundary() {
        let mut blobs = HashMap::new();
        blobs.insert("wal".to_string(), b"healthy bytes".to_vec());
        let storage = FaultStorage::seeded(
            blobs,
            FaultPlan {
                kill_at: usize::MAX,
                torn_bytes: 0,
            },
            ReadFaultPlan {
                fail_at: Some(1),
                corrupt_at: None,
            },
        );
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"healthy bytes");
        let err = storage.read("wal").unwrap_err();
        assert!(matches!(err, DurableError::Io(_)));
        // Read faults are per-boundary, not fatal: the next read works.
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"healthy bytes");
        assert_eq!(storage.read_boundaries(), 3);
    }

    #[test]
    fn fault_storage_corrupts_exactly_one_read() {
        let mut blobs = HashMap::new();
        blobs.insert("snap".to_string(), vec![0u8; 9]);
        let storage = FaultStorage::seeded(
            blobs,
            FaultPlan {
                kill_at: usize::MAX,
                torn_bytes: 0,
            },
            ReadFaultPlan {
                fail_at: None,
                corrupt_at: Some(0),
            },
        );
        let corrupted = storage.read("snap").unwrap().unwrap();
        assert_eq!(corrupted[4], 0x40, "middle byte must be flipped");
        // The underlying blob is untouched — corruption happened on the
        // wire, and only at the planned boundary.
        assert_eq!(storage.read("snap").unwrap().unwrap(), vec![0u8; 9]);
    }

    #[test]
    fn fault_storage_atomic_write_failure_keeps_old_contents() {
        let storage = FaultStorage::new(FaultPlan {
            kill_at: 1,
            torn_bytes: 0,
        });
        storage.write_atomic("snap", b"old").unwrap();
        assert!(storage.write_atomic("snap", b"new").is_err());
        assert_eq!(storage.surviving().read("snap").unwrap().unwrap(), b"old");
    }
}
