//! End-to-end observability: the serving stack is instrumented with
//! clear-obs spans and counters, so running the cloud-fit → onboard →
//! predict flow with a fake-clock registry installed yields a complete,
//! deterministic, JSON-exportable snapshot.
//!
//! This test owns the process-global registry slot for its binary; it is
//! the only test here precisely so installation cannot race another test.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::deployment::{deploy, Onboarding};
use clear::features::FeatureMap;
use clear::obs::{self, FakeClock, Registry};
use std::sync::Arc;

#[test]
fn serving_flow_populates_counters_and_stage_histograms() {
    let registry = Arc::new(Registry::with_clock(Box::new(FakeClock::new(1_000))));
    obs::install(Arc::clone(&registry));

    let config = ClearConfig::quick(17);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&newcomer, initial) = subjects.split_last().expect("cohort is non-empty");
    let mut dep = deploy(&data, initial, &config);

    let indices = data.indices_of(newcomer);
    let maps: Vec<FeatureMap> = indices[..2]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    let outcome = dep.onboard("carol", &maps).expect("maps are non-empty");
    assert!(matches!(outcome, Onboarding::Assigned { .. }));

    // Four clean windows plus one all-NaN window: the latter must take
    // the quarantine path and show up in the quarantine counter.
    let mut batch: Vec<FeatureMap> = indices[2..6]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    let template = &batch[0];
    let nan_columns = vec![vec![f32::NAN; template.feature_count()]; template.window_count()];
    batch.push(FeatureMap::from_columns(&nan_columns));
    let predictions = dep
        .predict_batch("carol", &batch)
        .expect("carol onboarded above");
    assert_eq!(predictions.len(), 5);

    obs::uninstall();
    let snap = registry.snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Serving counters balance: every batched window was either served,
    // abstained on, or quarantined.
    assert_eq!(c(obs::counters::BATCHES), 1);
    assert_eq!(c(obs::counters::BATCH_WINDOWS), 5);
    assert_eq!(c(obs::counters::QUARANTINES), 1);
    assert_eq!(
        c(obs::counters::PREDICTIONS) + c(obs::counters::ABSTENTIONS),
        4
    );
    assert_eq!(c(obs::counters::ONBOARD_ASSIGNED), 1);
    assert!(c(obs::counters::TRAIN_EPOCHS) > 0, "cloud fit trains");

    // Stage histograms: the cloud fit, the onboarding assignment, and one
    // span per served window all recorded.
    for key in [
        "stage.core.cloud_fit",
        "stage.cluster.fit",
        "stage.cluster.assign",
        "stage.serve.onboard",
        "stage.serve.predict",
        "stage.serve.predict_batch",
        "stage.nn.forward",
        "stage.features.map",
    ] {
        assert!(snap.histograms.contains_key(key), "missing histogram {key}");
    }
    assert_eq!(snap.histograms["stage.serve.predict"].count, 5);
    assert_eq!(snap.histograms["stage.serve.predict_batch"].count, 1);
    assert_eq!(snap.histograms[obs::BATCH_SIZE_HISTOGRAM].count, 1);
    // Fake-clock latencies are exact step multiples, never zero.
    assert!(snap.histograms["stage.serve.predict_batch"].sum >= 1_000);

    // The JSON export reflects the same snapshot, deterministically.
    let json = snap.to_json_pretty();
    assert!(json.contains("\"serve.batches\": 1"));
    assert!(json.contains("\"stage.serve.predict\""));
    assert_eq!(json, registry.snapshot().to_json_pretty());
}
