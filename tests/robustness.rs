//! Robustness: the pipeline under realistic sensor artifacts.
//!
//! The paper targets "real-world usability" on wearables; these tests
//! corrupt recordings with motion bursts, dropouts and wideband noise and
//! check that (a) feature extraction stays total and finite, and (b) the
//! trained classifier degrades gracefully rather than collapsing.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::deployment::{deploy, ClearDeployment, DeployError, ServingPolicy};
use clear::core::pipeline::CloudTraining;
use clear::edge::fault::{FaultConfig, ResilientDeployment, RetryPolicy};
use clear::edge::{Device, EdgeDeployment};
use clear::features::{FeatureExtractor, FeatureMap, Modality, WindowConfig, FEATURE_COUNT};
use clear::nn::tensor::Tensor;
use clear::sim::artifacts::{corrupt, ArtifactConfig};
use clear::sim::{Cohort, CohortConfig, Emotion};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

#[test]
fn features_stay_finite_under_heavy_artifacts() {
    let config = CohortConfig::small(21);
    let cohort = Cohort::generate(&config);
    let extractor = FeatureExtractor::new(config.signal, WindowConfig::default());
    let heavy = ArtifactConfig {
        motion_bursts_per_min: 10.0,
        burst_gain: 8.0,
        dropout_probability: 1.0,
        dropout_secs: 5.0,
        noise_fraction: 0.4,
        ..ArtifactConfig::default()
    };
    for rec in cohort.recordings().iter().take(8) {
        let bad = corrupt(
            rec,
            config.signal.fs_bvp,
            config.signal.fs_gsr,
            config.signal.fs_skt,
            &heavy,
        );
        let map = extractor.feature_map(&bad);
        assert!(map.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(map.feature_count(), 123);
    }
}

#[test]
fn classifier_degrades_gracefully_not_catastrophically() {
    let config = ClearConfig::quick(55);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&vx, initial) = subjects.split_last().unwrap();
    let cloud = CloudTraining::fit(&data, initial, &config);
    let indices = data.indices_of(vx);
    let assigned = cloud.assign_user(&data, &indices[..1]);

    // Clean accuracy.
    let clean = cloud.evaluate(&data, assigned, &indices[1..]).accuracy;

    // Mildly corrupted copies of the same recordings, run through the same
    // feature extractor and classifier path.
    let sig = config.cohort.signal;
    let extractor = FeatureExtractor::new(sig, config.window);
    let mild = ArtifactConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    let net = cloud.model(assigned);
    let mut ws = clear::nn::workspace::Workspace::new();
    let baseline = data.subject_baseline(vx);
    for &i in &indices[1..] {
        let rec = &data.cohort().recordings()[i];
        let bad = corrupt(rec, sig.fs_bvp, sig.fs_gsr, sig.fs_skt, &mild);
        let map = extractor.feature_map(&bad);
        // Manual corrected-normalized path mirroring user_dataset.
        let w = map.window_count();
        let columns: Vec<Vec<f32>> = (0..w)
            .map(|c| (0..123).map(|f| map.get(f, c) - baseline[f]).collect())
            .collect();
        let mut corrected_map = clear::features::FeatureMap::from_columns(&columns);
        corrected_map.normalize(cloud.clf_normalizer());
        let x = Tensor::from_vec(&[1, 123, w], corrected_map.as_slice().to_vec());
        let logits = net.forward(&x, false, &mut ws);
        if clear::nn::loss::predict_class(logits) == rec.emotion.class_index() {
            correct += 1;
        }
        total += 1;
    }
    let corrupted_acc = correct as f32 / total as f32;
    // Graceful degradation: stay within 35 accuracy points of clean and
    // above chance-minus-noise on this small sample.
    assert!(
        corrupted_acc >= clean - 0.35,
        "collapsed under artifacts: clean {clean}, corrupted {corrupted_acc}"
    );
    assert!(corrupted_acc >= 0.3, "corrupted accuracy {corrupted_acc}");
}

/// One trained deployment shared by the serving-robustness tests below —
/// cloud training is the expensive part and none of these tests mutate
/// the bundle itself, only per-user state under distinct user names.
fn shared_deployment() -> &'static Mutex<(ClearConfig, PreparedCohort, ClearDeployment, Vec<usize>)>
{
    static DEPLOYMENT: OnceLock<Mutex<(ClearConfig, PreparedCohort, ClearDeployment, Vec<usize>)>> =
        OnceLock::new();
    DEPLOYMENT.get_or_init(|| {
        let config = ClearConfig::quick(77);
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (&newcomer, initial) = subjects.split_last().unwrap();
        let dep = deploy(&data, initial, &config);
        let indices = data.indices_of(newcomer);
        Mutex::new((config, data, dep, indices))
    })
}

/// A policy that abstains only on quality, never on confidence — so tests
/// that need a label deterministically get one on servable input.
fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

#[test]
fn quality_gate_quarantines_flatlined_recording() {
    let guard = shared_deployment().lock().unwrap();
    let (config, data, dep, indices) = &*guard;
    let mut dep = dep.clone();
    dep.set_policy(lenient());
    dep.onboard("qg-user", &[data.maps()[indices[0]].clone()])
        .unwrap();

    // Every channel lost: the wearable came off entirely.
    let sig = config.cohort.signal;
    let dead_sensor = ArtifactConfig {
        channel_loss_probability: 1.0,
        ..ArtifactConfig::clean(3)
    };
    let extractor = FeatureExtractor::new(sig, config.window);
    let rec = &data.cohort().recordings()[indices[1]];
    let flat = corrupt(rec, sig.fs_bvp, sig.fs_gsr, sig.fs_skt, &dead_sensor);
    let map = extractor.feature_map(&flat);

    let pred = dep.predict("qg-user", &map).unwrap();
    assert!(
        pred.abstained(),
        "fully flatlined recording must not get a label"
    );
    assert_eq!(pred.served_by, None, "nothing should have run");
    assert_eq!(dep.quarantined_count("qg-user"), 1);

    // The same recording uncorrupted serves normally.
    let pred = dep.predict("qg-user", &data.maps()[indices[1]]).unwrap();
    assert!(pred.emotion.is_some(), "clean data must serve");
}

#[test]
fn missing_modality_is_imputed_not_fatal() {
    let guard = shared_deployment().lock().unwrap();
    let (config, data, dep, indices) = &*guard;
    let mut dep = dep.clone();
    dep.set_policy(lenient());
    dep.onboard("mm-user", &[data.maps()[indices[0]].clone()])
        .unwrap();

    // BVP sensor died mid-session: the channel froze at its last value.
    let sig = config.cohort.signal;
    let extractor = FeatureExtractor::new(sig, config.window);
    let mut rec = data.cohort().recordings()[indices[2]].clone();
    let frozen = rec.bvp[0];
    for v in &mut rec.bvp {
        *v = frozen;
    }
    let map = extractor.feature_map(&rec);

    let pred = dep.predict("mm-user", &map).unwrap();
    assert!(
        pred.emotion.is_some(),
        "two healthy modalities must still serve"
    );
    assert!(
        pred.imputed.contains(&Modality::Bvp),
        "dead BVP block must be imputed, got {:?}",
        pred.imputed
    );
    assert!(
        pred.quality < 1.0,
        "quality must reflect the missing modality"
    );
}

#[test]
fn personalization_rolls_back_on_adversarial_labels() {
    let guard = shared_deployment().lock().unwrap();
    let (config, data, dep, indices) = &*guard;
    let mut dep = dep.clone();
    dep.set_policy(lenient());
    dep.onboard("pr-user", &[data.maps()[indices[0]].clone()])
        .unwrap();

    // Label every map with the deployment's own current prediction, then
    // invert the labels of the training slice. The held-out (trailing)
    // validation slice stays self-consistent, so the cluster checkpoint
    // scores 1.0 on it and fine-tuning on inverted labels can only hurt.
    let eval = &indices[1..8];
    let mut labeled: Vec<(FeatureMap, Emotion)> = Vec::new();
    for &i in eval {
        let map = data.maps()[i].clone();
        let own = dep
            .predict("pr-user", &map)
            .unwrap()
            .emotion
            .expect("lenient policy labels clean maps");
        labeled.push((map, own));
    }
    let n_val = (labeled.len() as f32 * dep.policy().validation_fraction).ceil() as usize;
    let n_train = labeled.len() - n_val;
    for (_, label) in labeled.iter_mut().take(n_train) {
        *label = Emotion::from_class_index(1 - label.class_index());
    }

    let adversarial = clear::nn::train::TrainConfig {
        epochs: 25,
        batch_size: 4,
        ..config.finetune
    };
    let outcome = dep.personalize("pr-user", &labeled, &adversarial).unwrap();
    assert!(outcome.validated, "7 labeled maps must trigger validation");
    assert!(
        (outcome.baseline_accuracy - 1.0).abs() < 1e-6,
        "cluster model must agree with its own labels, got {}",
        outcome.baseline_accuracy
    );
    assert!(
        !outcome.adopted,
        "fine-tuning on inverted labels must roll back (val acc {} vs {})",
        outcome.personalized_accuracy, outcome.baseline_accuracy
    );
    assert!(
        !dep.is_personalized("pr-user"),
        "rolled-back user keeps the cluster checkpoint"
    );
}

#[test]
fn edge_retry_recovers_from_transient_faults() {
    let guard = shared_deployment().lock().unwrap();
    let (_, data, dep, indices) = &*guard;
    let windows = dep.bundle().windows;
    let model = dep.bundle().models[0].clone();
    let shape = [1usize, FEATURE_COUNT, windows];

    let primary = EdgeDeployment::new(model.clone(), Device::CoralTpu, &shape);
    let fallback = EdgeDeployment::new(model, Device::CoralTpu, &shape);
    let mut resilient = ResilientDeployment::new(
        primary,
        FaultConfig::transient(0.10, 1234),
        RetryPolicy::default(),
    )
    .with_fallback(fallback);

    let map = &data.maps()[indices[0]];
    let x = Tensor::from_vec(&shape, map.as_slice().to_vec());
    for _ in 0..300 {
        let outcome = resilient.serve(&x);
        if let Some(logits) = outcome.logits {
            assert_eq!(logits.shape(), [2]);
        }
    }
    let stats = resilient.stats();
    assert_eq!(stats.requests, 300);
    assert!(stats.faults_absorbed > 0, "faults must actually fire");
    assert!(
        stats.availability() >= 0.99,
        "retry must hold availability >= 0.99 at 10% transients, got {}",
        stats.availability()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The public serving surface must never panic, whatever the shape or
    /// contents of the feature map — garbage in, `Err`/abstention out.
    #[test]
    fn serving_never_panics_on_arbitrary_maps(
        windows in 1usize..8,
        fill in prop_oneof![
            (-1.0e6f32..1.0e6f32).boxed(),
            Just(f32::NAN).boxed(),
            Just(f32::INFINITY).boxed(),
            Just(f32::NEG_INFINITY).boxed(),
            Just(0.0f32).boxed(),
        ],
        jitter in proptest::collection::vec(-1.0f32..1.0, FEATURE_COUNT),
    ) {
        let guard = shared_deployment().lock().unwrap();
        let (_, data, dep, indices) = &*guard;
        let mut dep = dep.clone();
        dep.onboard("fuzz-user", &[data.maps()[indices[0]].clone()]).unwrap();

        let columns: Vec<Vec<f32>> = (0..windows)
            .map(|c| {
                (0..FEATURE_COUNT)
                    .map(|f| fill + jitter[f] * (c as f32 + 1.0))
                    .collect()
            })
            .collect();
        let map = FeatureMap::from_columns(&columns);

        // Any outcome is acceptable except a panic; wrong shapes must
        // surface as BadInput, not index errors.
        match dep.predict("fuzz-user", &map) {
            Ok(p) => prop_assert!(p.quality.is_finite()),
            Err(DeployError::BadInput(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
        let _ = dep.onboard("fuzz-onboard", &[map.clone()]);
        let _ = dep.personalize(
            "fuzz-user",
            &[(map, Emotion::Fear)],
            &ClearConfig::quick(1).finetune,
        );
    }
}
