//! # clear-clustering — clustering substrate for CLEAR
//!
//! Implements the clustering machinery of the CLEAR methodology:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding and multiple
//!   restarts, the base clusterer;
//! * [`refine`] — the iterative subset-resampling refinement of
//!   Gutiérrez-Martín et al. [19] used for Global Clustering (paper
//!   §III-A2): training subsets are repeatedly sampled, centroids
//!   recomputed, and users reassigned when their cluster is no longer
//!   closest;
//! * [`hierarchy`] — per-cluster internal sub-centroids and the cold-start
//!   Cluster Assignment rule (paper §III-B1): a new, unlabeled user joins
//!   the cluster minimizing the summed distance to that cluster's internal
//!   centroids;
//! * [`quality`] — WCSS/elbow, silhouette, Davies-Bouldin, plus external
//!   agreement indices (adjusted Rand index, purity) for scoring recovered
//!   clusters against ground-truth archetypes.
//!
//! Points are `&[f32]` slices of equal dimension; all algorithms are
//! deterministic given their seed.
//!
//! ## Example
//!
//! ```
//! use clear_clustering::kmeans::{KMeans, KMeansConfig};
//!
//! // Two obvious blobs on a line.
//! let points: Vec<Vec<f32>> = (0..10)
//!     .map(|i| vec![if i < 5 { 0.0 } else { 10.0 } + i as f32 * 0.01])
//!     .collect();
//! let model = KMeans::new(KMeansConfig { k: 2, ..Default::default() }).fit(&points);
//! assert_eq!(model.centroids().len(), 2);
//! let a = model.predict(&points[0]);
//! let b = model.predict(&points[9]);
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod kmeans;
pub mod quality;
pub mod refine;

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
pub fn distance_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    distance_sq(a, b).sqrt()
}

/// Mean of a set of points (dimension taken from the first point).
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn centroid_of(points: &[&[f32]]) -> Vec<f32> {
    assert!(!points.is_empty(), "centroid of zero points is undefined");
    let dim = points[0].len();
    let mut c = vec![0.0f32; dim];
    for p in points {
        for (acc, v) in c.iter_mut().zip(*p) {
            *acc += v;
        }
    }
    for v in &mut c {
        *v /= points.len() as f32;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn centroid_mean() {
        let a = [0.0f32, 0.0];
        let b = [2.0f32, 4.0];
        assert_eq!(centroid_of(&[&a, &b]), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn centroid_empty_panics() {
        let _ = centroid_of(&[]);
    }
}
