//! Deployment memory accounting.
//!
//! Edge accelerators are memory-bound as much as compute-bound: the Coral
//! Edge TPU has 8 MB of on-chip SRAM for parameters, and the NCS2 streams
//! activations through 512 KB slices. This module computes a deployed
//! model's memory footprint — parameter bytes at device precision plus
//! peak activation residency — and checks it against each device's budget,
//! so a user scaling the CLEAR architecture up learns *before* flashing
//! that the model no longer fits.

use crate::device::Device;
use clear_nn::network::Network;
use clear_nn::summary::summarize;
use serde::{Deserialize, Serialize};

/// Memory footprint of one deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Parameter bytes at the device's weight precision.
    pub parameter_bytes: usize,
    /// Peak simultaneous activation bytes during a forward pass (input +
    /// output of the widest layer, activations kept at fp32 on every
    /// simulated runtime).
    pub peak_activation_bytes: usize,
}

impl MemoryFootprint {
    /// Total resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.parameter_bytes + self.peak_activation_bytes
    }
}

/// Memory budget of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Bytes available for parameters (on-chip where applicable).
    pub parameter_budget_bytes: usize,
    /// Bytes available for activations.
    pub activation_budget_bytes: usize,
}

/// The published memory budgets of the simulated devices.
pub fn budget_of(device: Device) -> MemoryBudget {
    match device {
        // Workstation GPU: effectively unconstrained for this model class.
        Device::Gpu => MemoryBudget {
            parameter_budget_bytes: 8 << 30,
            activation_budget_bytes: 8 << 30,
        },
        // Coral Edge TPU: 8 MB on-chip parameter SRAM.
        Device::CoralTpu => MemoryBudget {
            parameter_budget_bytes: 8 << 20,
            activation_budget_bytes: 8 << 20,
        },
        // Intel NCS2: 512 KB CMX slices + 512 MB LPDDR; parameters stream
        // from DDR, activations must tile through CMX.
        Device::PiNcs2 => MemoryBudget {
            parameter_budget_bytes: 512 << 20,
            activation_budget_bytes: 512 << 10,
        },
    }
}

/// Computes the footprint of `network` on `device` for `input_shape`
/// inputs.
///
/// # Panics
///
/// Panics if `input_shape` is incompatible with the network.
pub fn footprint(network: &Network, device: Device, input_shape: &[usize]) -> MemoryFootprint {
    let spec = device.spec();
    let parameter_bytes = network.param_count() * spec.precision.bytes_per_weight();
    let summary = summarize(network, input_shape);
    // Peak residency: a layer's input plus its output must coexist.
    let mut prev: usize = input_shape.iter().product();
    let mut peak = 0usize;
    for layer in &summary.layers {
        let out: usize = layer.output_shape.iter().product();
        peak = peak.max(prev + out);
        prev = out;
    }
    MemoryFootprint {
        parameter_bytes,
        peak_activation_bytes: peak * 4, // fp32 activations
    }
}

/// How many personalized forks of `network` a serving cache can keep
/// resident on `device` after reserving room for `resident_models`
/// always-loaded checkpoints (the shared cluster models).
///
/// The bound divides the device's *parameter* budget — personalized
/// forks share the activation workspace, so parameters are the resource
/// that scales with cached users. The floor is 1: a cache that cannot
/// hold even one fork would make personalization pointless, so the
/// smallest device still caches a single model and evicts on every
/// switch.
pub fn personalized_cache_capacity(
    network: &Network,
    device: Device,
    resident_models: usize,
) -> usize {
    let spec = device.spec();
    let per_model = (network.param_count() * spec.precision.bytes_per_weight()).max(1);
    let budget = budget_of(device).parameter_budget_bytes;
    let free = budget.saturating_sub(per_model * resident_models);
    (free / per_model).max(1)
}

/// Per-session byte budget for streaming ingestion buffers on `device`
/// when `concurrent_sessions` sessions share it.
///
/// Streaming buffers are activation-like transient state, so the bound
/// divides the device's *activation* budget evenly across sessions. The
/// result never drops below `floor_bytes` — the caller passes the minimum
/// a session needs to hold one analysis window plus one hop of samples
/// and a partially assembled feature map; a budget below that could never
/// emit a window, making the session pointless.
pub fn streaming_session_budget(
    device: Device,
    concurrent_sessions: usize,
    floor_bytes: usize,
) -> usize {
    let budget = budget_of(device).activation_budget_bytes;
    (budget / concurrent_sessions.max(1)).max(floor_bytes.max(1))
}

/// Whether the model fits the device's budgets.
pub fn fits(network: &Network, device: Device, input_shape: &[usize]) -> bool {
    let fp = footprint(network, device, input_shape);
    let budget = budget_of(device);
    fp.parameter_bytes <= budget.parameter_budget_bytes
        && fp.peak_activation_bytes <= budget.activation_budget_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_nn::network::{cnn_lstm, cnn_lstm_compact, cnn_lstm_custom};

    #[test]
    fn paper_model_fits_every_device() {
        let net = cnn_lstm(123, 9, 2, 1);
        for device in Device::all() {
            assert!(fits(&net, device, &[1, 123, 9]), "does not fit {device}");
        }
    }

    #[test]
    fn compact_model_is_smaller_everywhere() {
        let big = cnn_lstm(123, 9, 2, 1);
        let small = cnn_lstm_compact(123, 9, 2, 1);
        for device in Device::all() {
            let fb = footprint(&big, device, &[1, 123, 9]);
            let fs = footprint(&small, device, &[1, 123, 9]);
            assert!(fs.parameter_bytes < fb.parameter_bytes);
            assert!(fs.total_bytes() < fb.total_bytes());
        }
    }

    #[test]
    fn int8_parameters_are_quarter_of_fp32() {
        let net = cnn_lstm(123, 9, 2, 1);
        let gpu = footprint(&net, Device::Gpu, &[1, 123, 9]);
        let tpu = footprint(&net, Device::CoralTpu, &[1, 123, 9]);
        assert_eq!(gpu.parameter_bytes, 4 * tpu.parameter_bytes);
        // Activations identical (fp32 runtime on all).
        assert_eq!(gpu.peak_activation_bytes, tpu.peak_activation_bytes);
    }

    #[test]
    fn oversized_model_exceeds_tpu_sram() {
        // A deliberately bloated variant: 64/128 channels, 1024 LSTM units
        // (≈ 18 MB of int8 parameters, past the TPU's 8 MB SRAM).
        let huge = cnn_lstm_custom(123, 9, 2, 64, 128, 2, 2, 1024, 0.3, 1);
        let fp = footprint(&huge, Device::CoralTpu, &[1, 123, 9]);
        assert!(
            fp.parameter_bytes > budget_of(Device::CoralTpu).parameter_budget_bytes,
            "bloated model unexpectedly fits ({} B)",
            fp.parameter_bytes
        );
        assert!(!fits(&huge, Device::CoralTpu, &[1, 123, 9]));
        // It still fits the GPU.
        assert!(fits(&huge, Device::Gpu, &[1, 123, 9]));
    }

    #[test]
    fn cache_capacity_scales_with_device_memory() {
        let net = cnn_lstm(123, 9, 2, 1);
        let gpu = personalized_cache_capacity(&net, Device::Gpu, 4);
        let tpu = personalized_cache_capacity(&net, Device::CoralTpu, 4);
        assert!(gpu > tpu, "gpu {gpu} vs tpu {tpu}");
        // TPU: 8 MB SRAM over ~72.9 kB int8 checkpoints, minus 4 shared
        // cluster models — dozens of forks, not thousands.
        assert!((10..1000).contains(&tpu), "tpu capacity {tpu}");
    }

    #[test]
    fn streaming_budget_scales_down_with_sessions_and_floors() {
        let floor = 16 << 10;
        let few = streaming_session_budget(Device::Gpu, 10, floor);
        let many = streaming_session_budget(Device::Gpu, 10_000, floor);
        assert!(few > many, "few {few} vs many {many}");
        // GPU activation budget over 10k sessions still leaves generous
        // per-session room (≈ 858 KB).
        assert!(many > 512 << 10, "many {many}");
        // A starved device clamps to the caller's floor, never below.
        let starved = streaming_session_budget(Device::PiNcs2, 1_000_000, floor);
        assert_eq!(starved, floor);
        assert_eq!(streaming_session_budget(Device::Gpu, 0, floor), 8 << 30);
    }

    #[test]
    fn cache_capacity_never_drops_below_one() {
        let huge = cnn_lstm_custom(123, 9, 2, 64, 128, 2, 2, 1024, 0.3, 1);
        let cap = personalized_cache_capacity(&huge, Device::CoralTpu, 1000);
        assert_eq!(cap, 1, "floor must hold under absurd reservations");
    }

    #[test]
    fn peak_activation_covers_widest_layer_pair() {
        let net = cnn_lstm(123, 9, 2, 1);
        let fp = footprint(&net, Device::Gpu, &[1, 123, 9]);
        // Conv1 output is 6×119×7 = 4998 floats; with its 1107-float input
        // that's ≥ 6105 floats ≈ 24.4 kB.
        assert!(fp.peak_activation_bytes >= 6105 * 4);
        assert!(fp.peak_activation_bytes < 1 << 20, "implausibly large peak");
    }
}
