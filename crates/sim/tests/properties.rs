//! Property-based tests of the cohort simulator.

use clear_sim::signals::{synth_bvp, synth_gsr, synth_skt, Evocation};
use clear_sim::subject::IdiosyncrasyScale;
use clear_sim::{ArchetypeId, Cohort, CohortConfig, Emotion, SignalConfig, SubjectProfile};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Signals are finite and length-correct for any archetype, seed,
    /// emotion and intensity.
    #[test]
    fn signals_total_over_generator_space(
        arch in 0usize..4,
        seed in 0u64..1000,
        fear in proptest::bool::ANY,
        intensity in 0.1f32..1.8,
        overlap in 0.0f32..0.6,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let subject = SubjectProfile::sample(
            0,
            ArchetypeId(arch),
            IdiosyncrasyScale::default(),
            &mut rng,
        );
        let evocation = Evocation {
            emotion: if fear { Emotion::Fear } else { Emotion::NonFear },
            intensity,
        };
        let config = SignalConfig {
            stimulus_secs: 20.0,
            ..SignalConfig::default()
        };
        let bvp = synth_bvp(&subject, &evocation, overlap, &config, &mut rng);
        let gsr = synth_gsr(&subject, &evocation, overlap, &config, &mut rng);
        let skt = synth_skt(&subject, &evocation, overlap, &config, &mut rng);
        prop_assert_eq!(bvp.len(), config.bvp_len());
        prop_assert_eq!(gsr.len(), config.gsr_len());
        prop_assert_eq!(skt.len(), config.skt_len());
        prop_assert!(bvp.iter().all(|v| v.is_finite()));
        prop_assert!(gsr.iter().all(|v| v.is_finite() && *v > 0.0));
        prop_assert!(skt.iter().all(|v| v.is_finite() && (*v > 20.0 && *v < 45.0)));
    }

    /// Cohort shape follows the configuration for arbitrary archetype
    /// splits.
    #[test]
    fn cohort_shape_follows_config(
        a in 1usize..4,
        b in 1usize..4,
        c in 1usize..4,
        d in 1usize..4,
        recs in 2usize..6,
        seed in 0u64..100,
    ) {
        let config = CohortConfig {
            subjects_per_archetype: [a, b, c, d],
            recordings_per_subject: recs,
            signal: SignalConfig { stimulus_secs: 15.0, ..SignalConfig::default() },
            ..CohortConfig::small(seed)
        };
        let cohort = Cohort::generate(&config);
        prop_assert_eq!(cohort.subjects().len(), a + b + c + d);
        prop_assert_eq!(cohort.recordings().len(), (a + b + c + d) * recs);
        let mut counts = [0usize; 4];
        for s in cohort.subjects() {
            counts[s.archetype.0] += 1;
        }
        prop_assert_eq!(counts, [a, b, c, d]);
    }
}
