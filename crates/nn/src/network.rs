//! Sequential network container, checkpointing, and the canonical CNN-LSTM.
//!
//! A [`Network`] is weights only: forward and backward passes take `&self`
//! and write all mutable state into a caller-owned
//! [`Workspace`](crate::workspace::Workspace). One network can therefore be
//! shared read-only across threads (LOSO folds, concurrent users), each
//! holding its own workspace.

use crate::backend::{InferenceBackend, ScalarRef};
use crate::layers::{Conv2d, Dense, Dropout, Layer, Lstm, MapToSequence, MaxPool2d, Relu};
use crate::tensor::Tensor;
use crate::workspace::{LayerState, Workspace};
use crate::NnError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global weight-stamp source. Stamps start at 1 so the
/// zero-initialized scratch stamp always reads as "never prepared".
static WEIGHT_STAMPS: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    WEIGHT_STAMPS.fetch_add(1, Ordering::Relaxed)
}

/// A sequential stack of [`Layer`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
    /// Weight stamp: a process-unique value reassigned on every `&mut`
    /// parameter access, letting workspaces detect stale prepared weight
    /// forms (transposed copies, quantized tensors) in O(1). Not
    /// serialized — a deserialized network gets a fresh stamp. A clone
    /// keeps its source's stamp, which is sound: its weights are
    /// identical until its own first mutation bumps it.
    #[serde(skip, default = "next_stamp")]
    stamp: u64,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Self {
            layers,
            stamp: next_stamp(),
        }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by quantization).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        self.stamp = next_stamp();
        &mut self.layers
    }

    /// The current weight stamp (see the field docs).
    pub fn weights_stamp(&self) -> u64 {
        self.stamp
    }

    /// Full forward pass into `ws`, returning the output activation.
    /// `train` enables dropout. The workspace binds to this network on
    /// first use and is reused allocation-free on subsequent same-shaped
    /// calls; results are identical whether the workspace is fresh or
    /// reused.
    pub fn forward<'w>(&self, x: &Tensor, train: bool, ws: &'w mut Workspace) -> &'w Tensor {
        self.forward_tapped(x, train, ws, &mut |_| {})
    }

    /// [`Network::forward`] through an explicit inference backend (see
    /// [`crate::backend`]). The plain `forward` is this with
    /// [`ScalarRef`]; training and the backward pass always use the
    /// scalar kernels regardless of what inference dispatches here.
    pub fn forward_with<'w>(
        &self,
        x: &Tensor,
        train: bool,
        ws: &'w mut Workspace,
        backend: &dyn InferenceBackend,
    ) -> &'w Tensor {
        self.forward_tapped_with(x, train, ws, backend, &mut |_| {})
    }

    /// Forward pass that invokes `tap` on every activation as it is
    /// produced (the input copy first, then each layer output), allowing
    /// in-place observation or modification — the edge runtime uses this
    /// to emulate reduced-precision activation storage without extra
    /// buffers.
    pub fn forward_tapped<'w>(
        &self,
        x: &Tensor,
        train: bool,
        ws: &'w mut Workspace,
        tap: &mut dyn FnMut(&mut Tensor),
    ) -> &'w Tensor {
        self.forward_tapped_with(x, train, ws, &ScalarRef, tap)
    }

    /// [`Network::forward_tapped`] through an explicit inference backend.
    pub fn forward_tapped_with<'w>(
        &self,
        x: &Tensor,
        train: bool,
        ws: &'w mut Workspace,
        backend: &dyn InferenceBackend,
        tap: &mut dyn FnMut(&mut Tensor),
    ) -> &'w Tensor {
        ws.bind(&self.layers);
        ws.acts[0].copy_from(x);
        tap(&mut ws.acts[0]);
        for (i, layer) in self.layers.iter().enumerate() {
            let (ins, outs) = ws.acts.split_at_mut(i + 1);
            ws.kernels[i].ensure_stamp(self.stamp);
            layer.forward_ws(
                &ins[i],
                &mut outs[0],
                &mut ws.states[i],
                &mut ws.kernels[i],
                train,
                backend,
            );
            tap(&mut outs[0]);
        }
        ws.output()
    }

    /// Full backward pass from the loss gradient, accumulating parameter
    /// gradients in the workspace. Must follow a `forward` call on the
    /// same workspace.
    ///
    /// # Panics
    ///
    /// Panics when called on a workspace that has not run a matching
    /// forward pass (backward before forward).
    pub fn backward(&self, grad: &Tensor, ws: &mut Workspace) {
        let n = self.layers.len();
        assert!(
            ws.acts.len() == n + 1 && ws.states.len() == n,
            "backward before forward: workspace holds no activations"
        );
        if ws.grads.len() != n {
            ws.grads.resize_with(n, || Tensor::zeros(&[1]));
        }
        for i in (0..n).rev() {
            let (gleft, gright) = ws.grads.split_at_mut(i + 1);
            let gout: &Tensor = if i == n - 1 { grad } else { &gright[0] };
            self.layers[i].backward_ws(gout, &ws.acts[i], &mut gleft[i], &mut ws.states[i]);
        }
    }

    /// Zeroes the workspace gradients of every parameterized layer except
    /// the last `tail` ones — the transfer-learning freeze: with gradients
    /// pinned to zero, optimizers (including Adam) leave the frozen
    /// weights untouched.
    ///
    /// A `tail` of 1 trains only the dense head; 2 adds the LSTM.
    pub fn mask_grads_to_tail(&self, ws: &mut Workspace, tail: usize) {
        assert_eq!(
            ws.states.len(),
            self.layers.len(),
            "workspace not bound to this network"
        );
        let parameterized = self.layers.iter().filter(|l| l.param_count() > 0).count();
        let frozen = parameterized.saturating_sub(tail);
        let mut seen = 0usize;
        for (layer, state) in self.layers.iter().zip(ws.states.iter_mut()) {
            if layer.param_count() == 0 {
                continue;
            }
            if seen < frozen {
                state.zero_grads();
            }
            seen += 1;
        }
    }

    /// Visits every parameter slice (read-only), in layer order.
    pub fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits every parameter slice mutably, in layer order.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.stamp = next_stamp();
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Visits every (parameter, gradient) slice pair, pairing this
    /// network's weights with the gradients accumulated in `ws` (used by
    /// the optimizer and L2-SP regularization).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is not bound to this network's layer structure.
    pub fn visit_params_grads(
        &mut self,
        ws: &mut Workspace,
        f: &mut dyn FnMut(&mut [f32], &mut [f32]),
    ) {
        assert_eq!(
            ws.states.len(),
            self.layers.len(),
            "workspace not bound to this network"
        );
        self.stamp = next_stamp();
        for (layer, state) in self.layers.iter_mut().zip(ws.states.iter_mut()) {
            match (layer, state) {
                (Layer::Conv2d(l), LayerState::Conv2d { gw, gb }) => {
                    f(&mut l.w, gw);
                    f(&mut l.b, gb);
                }
                (Layer::Lstm(l), LayerState::Lstm { gwx, gwh, gb, .. }) => {
                    f(&mut l.wx, gwx);
                    f(&mut l.wh, gwh);
                    f(&mut l.b, gb);
                }
                (Layer::Dense(l), LayerState::Dense { gw, gb }) => {
                    f(&mut l.w, gw);
                    f(&mut l.b, gb);
                }
                (Layer::Relu(_), LayerState::Relu)
                | (Layer::MaxPool2d(_), LayerState::MaxPool2d { .. })
                | (Layer::MapToSequence(_), LayerState::MapToSequence)
                | (Layer::Dropout(_), LayerState::Dropout { .. }) => {}
                _ => panic!("workspace not bound to this network"),
            }
        }
    }

    /// Copies the live dropout draw counters from `ws` back into the
    /// layers, so the serialized checkpoint (and any later training run)
    /// continues the same mask stream. The trainer calls this once at the
    /// end of a run.
    pub(crate) fn sync_dropout_counters(&mut self, ws: &Workspace) {
        for (layer, state) in self.layers.iter_mut().zip(ws.states.iter()) {
            if let (Layer::Dropout(l), LayerState::Dropout { counter, .. }) = (layer, state) {
                l.counter = *counter;
            }
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Whether every parameter is finite (no NaN or infinity). Artifact
    /// loaders use this to reject checkpoints that parsed structurally
    /// but would poison every downstream forward pass.
    pub fn all_finite(&self) -> bool {
        let mut finite = true;
        self.visit_params(&mut |p| finite &= p.iter().all(|v| v.is_finite()));
        finite
    }

    /// Serializes the network (weights only) to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] when serialization fails.
    pub fn to_json(&self) -> Result<String, NnError> {
        serde_json::to_string(self).map_err(|e| NnError::Checkpoint(e.to_string()))
    }

    /// Restores a network from [`Network::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] when parsing fails.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        serde_json::from_str(json).map_err(|e| NnError::Checkpoint(e.to_string()))
    }

    /// Flattens all parameters into one vector (used by tests and the edge
    /// precision simulator).
    pub fn parameters_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p));
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Network::parameters_flat`].
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the parameter count.
    pub fn set_parameters_flat(&mut self, flat: &[f32]) {
        let mut offset = 0usize;
        self.visit_params_mut(&mut |p| {
            p.copy_from_slice(&flat[offset..offset + p.len()]);
            offset += p.len();
        });
        assert_eq!(offset, flat.len(), "flat parameter length mismatch");
    }
}

/// Fully parameterized CNN-LSTM builder: two conv blocks (`c1`, `c2`
/// output channels, 5×3 then feature-axis pooling `p1`, `p2`) feeding an
/// LSTM of `hidden` units and a dense head.
///
/// [`cnn_lstm`] and [`cnn_lstm_compact`] are presets of this builder.
///
/// # Panics
///
/// Panics when the input is too small for the convolution/pooling chain or
/// any size is zero.
#[allow(clippy::too_many_arguments)]
pub fn cnn_lstm_custom(
    features: usize,
    windows: usize,
    classes: usize,
    c1: usize,
    c2: usize,
    p1: usize,
    p2: usize,
    hidden: usize,
    dropout: f32,
    seed: u64,
) -> Network {
    assert!(classes >= 2, "need at least two classes");
    let h1 = features
        .checked_sub(4)
        .expect("feature axis too small for conv1");
    let w1 = windows
        .checked_sub(2)
        .expect("window axis too small for conv1");
    let h1p = h1 / p1;
    let h2 = h1p
        .checked_sub(4)
        .expect("feature axis too small for conv2");
    let w2 = w1.checked_sub(2).expect("window axis too small for conv2");
    assert!(w2 >= 1, "architecture collapsed the temporal axis");
    let h2p = h2 / p2;
    assert!(h2p >= 1, "feature axis too small after pooling");
    let lstm_input = c2 * h2p;
    Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, c1, 5, 3, seed.wrapping_add(1))),
        Layer::Relu(Relu::new()),
        Layer::MaxPool2d(MaxPool2d::new(p1, 1)),
        Layer::Conv2d(Conv2d::new(c1, c2, 5, 3, seed.wrapping_add(2))),
        Layer::Relu(Relu::new()),
        Layer::MaxPool2d(MaxPool2d::new(p2, 1)),
        Layer::MapToSequence(MapToSequence::new()),
        Layer::Lstm(Lstm::new(lstm_input, hidden, seed.wrapping_add(3))),
        Layer::Dropout(Dropout::new(dropout, seed.wrapping_add(4))),
        Layer::Dense(Dense::new(hidden, classes, seed.wrapping_add(5))),
    ])
}

/// A compute-lean preset of the same architecture (4/8 channels, harder
/// feature pooling, 24 LSTM units) used by the single-core experiment
/// harness; ~3× fewer FLOPs than [`cnn_lstm`] at nearly the same accuracy
/// on the CLEAR task.
pub fn cnn_lstm_compact(features: usize, windows: usize, classes: usize, seed: u64) -> Network {
    cnn_lstm_custom(features, windows, classes, 4, 8, 2, 3, 24, 0.3, seed)
}

/// The paper's CNN-LSTM classifier (Fig. 2) for `features × windows`
/// feature maps:
///
/// ```text
/// [1, F, W] → Conv2d(1→6, 5×3) → ReLU → MaxPool(2×1)
///           → Conv2d(6→12, 5×3) → ReLU → MaxPool(2×1)
///           → MapToSequence → LSTM(48) → Dropout(0.3) → Dense(classes)
/// ```
///
/// Pooling shrinks the feature axis only, preserving the temporal (window)
/// axis for the LSTM.
///
/// # Panics
///
/// Panics if the input is too small for the two 5×3 convolutions
/// (`features >= 26`, `windows >= 5`).
pub fn cnn_lstm(features: usize, windows: usize, classes: usize, seed: u64) -> Network {
    assert!(
        features >= 26,
        "feature axis too small for the architecture"
    );
    assert!(windows >= 5, "window axis too small for the architecture");
    cnn_lstm_custom(features, windows, classes, 6, 12, 2, 2, 48, 0.3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;

    #[test]
    fn cnn_lstm_forward_shape() {
        let net = cnn_lstm(123, 9, 2, 1);
        let mut ws = Workspace::new();
        let x = Tensor::zeros(&[1, 123, 9]);
        let y = net.forward(&x, false, &mut ws);
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn cnn_lstm_param_count_is_stable() {
        let net = cnn_lstm(123, 9, 2, 1);
        // Conv1: 6·1·5·3 + 6 = 96; Conv2: 12·6·5·3 + 12 = 1092.
        // h1=119, h1p=59, h2=55, h2p=27 → lstm_in=324.
        // LSTM: 4·48·324 + 4·48·48 + 4·48 = 62208 + 9216 + 192 = 71616.
        // Dense: 2·48 + 2 = 98. Total 72902.
        assert_eq!(net.param_count(), 96 + 1092 + 71616 + 98);
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let net = cnn_lstm(40, 6, 2, 7);
        let x = Tensor::from_vec(&[1, 40, 6], (0..240).map(|v| (v as f32).sin()).collect());
        let mut reused = Workspace::new();
        let a = net.forward(&x, false, &mut reused).clone();
        let b = net.forward(&x, false, &mut reused).clone();
        let mut fresh = Workspace::new();
        let c = net.forward(&x, false, &mut fresh).clone();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn workspace_rebinds_across_networks() {
        let small = cnn_lstm_compact(30, 5, 2, 1);
        let big = cnn_lstm(40, 6, 3, 2);
        let mut ws = Workspace::new();
        let y1 = net_out(&small, &Tensor::zeros(&[1, 30, 5]), &mut ws);
        assert_eq!(y1.shape(), &[2]);
        let y2 = net_out(&big, &Tensor::zeros(&[1, 40, 6]), &mut ws);
        assert_eq!(y2.shape(), &[3]);
        let y3 = net_out(&small, &Tensor::zeros(&[1, 30, 5]), &mut ws);
        assert_eq!(y3.shape(), &[2]);
    }

    fn net_out(net: &Network, x: &Tensor, ws: &mut Workspace) -> Tensor {
        net.forward(x, false, ws).clone()
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let mut net = cnn_lstm(30, 5, 2, 3);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150)
                .map(|v| ((v * 13 % 17) as f32 - 8.0) / 8.0)
                .collect(),
        );
        let target = 1usize;
        let logits = net.forward(&x, true, &mut ws).clone();
        let (loss0, grad) = cross_entropy(&logits, target);
        ws.zero_grads();
        net.backward(&grad, &mut ws);
        // Manual SGD step.
        let lr = 0.05f32;
        net.visit_params_grads(&mut ws, &mut |p, g| {
            for (pv, gv) in p.iter_mut().zip(g.iter()) {
                *pv -= lr * gv;
            }
        });
        let logits1 = net.forward(&x, false, &mut ws);
        let (loss1, _) = cross_entropy(logits1, target);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_before_forward_panics() {
        let net = cnn_lstm(30, 5, 2, 3);
        let mut ws = Workspace::new();
        net.backward(&Tensor::zeros(&[2]), &mut ws);
    }

    #[test]
    fn checkpoint_round_trip_preserves_outputs() {
        let net = cnn_lstm(30, 5, 2, 11);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150).map(|v| (v as f32 * 0.13).cos()).collect(),
        );
        let before = net.forward(&x, false, &mut ws).clone();
        let json = net.to_json().unwrap();
        let restored = Network::from_json(&json).unwrap();
        let after = restored.forward(&x, false, &mut ws);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn checkpoint_format_still_carries_dropout_counter() {
        // The weights-only refactor must not change the serialized format:
        // the dropout draw counter stays a layer field in checkpoints.
        let net = cnn_lstm(30, 5, 2, 11);
        let json = net.to_json().unwrap();
        assert!(json.contains("\"counter\":0"), "dropout counter missing");
    }

    #[test]
    fn parameters_flat_round_trip() {
        let mut net = cnn_lstm(30, 5, 2, 5);
        let flat = net.parameters_flat();
        assert_eq!(flat.len(), net.param_count());
        let mut altered = flat.clone();
        altered[0] += 1.0;
        net.set_parameters_flat(&altered);
        assert_eq!(net.parameters_flat()[0], flat[0] + 1.0);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        assert!(Network::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = Network::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_input_panics() {
        let _ = cnn_lstm(10, 9, 2, 0);
    }
}
