//! Streaming monitor: pseudo-real-time on-device operation.
//!
//! Simulates what the firmware of a CLEAR wearable does: samples arrive
//! continuously at three different rates, the streaming extractor emits a
//! feature column per 6-second hop, and once enough windows accumulate the
//! deployment classifies the latest map for the wearer — all through the
//! persisted `ClearBundle` a cloud would ship.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::deployment::{deploy, ClearBundle, ClearDeployment, Onboarding};
use clear::features::{FeatureMap, StreamingExtractor};

fn main() {
    // Cloud side: train and serialize the bundle (normally done offline).
    let config = ClearConfig::quick(27);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&wearer, initial) = subjects.split_last().expect("cohort is non-empty");
    let cloud_deployment = deploy(&data, initial, &config);
    let bundle_json = cloud_deployment
        .bundle()
        .to_json()
        .expect("bundle serializes");
    println!(
        "cloud bundle: {} clusters, {:.1} kB serialized",
        cloud_deployment.bundle().cluster_count(),
        bundle_json.len() as f32 / 1024.0
    );

    // Device side: restore the bundle and onboard the wearer from their
    // first unlabeled recording.
    let bundle = ClearBundle::from_json(&bundle_json).expect("bundle restores");
    let mut device = ClearDeployment::new(bundle);
    let indices = data.indices_of(wearer);
    // The CA budget: a couple of *unlabeled* recordings. They double as
    // the wearer's personal baseline, so a mix of stimuli matters — a
    // single clip would bias the baseline towards its own response.
    let ca_maps: Vec<_> = indices[..2]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    let cluster = match device.onboard("wearer", &ca_maps).expect("onboarding") {
        Onboarding::Assigned { cluster } => cluster,
        Onboarding::Deferred {
            accumulated,
            required,
        } => panic!("clean data deferred onboarding ({accumulated}/{required} maps)"),
    };
    println!("wearer onboarded cold-start into cluster {cluster}\n");

    // Stream the remaining recordings sample-chunk by sample-chunk.
    let sig = config.cohort.signal;
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>8}",
        "rec", "windows", "truth", "predicted", "ok"
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for &idx in &indices[2..] {
        let rec = &data.cohort().recordings()[idx];
        let mut extractor = StreamingExtractor::new(sig, config.window);
        // 1-second chunks, as a radio link would deliver them.
        let chunk_b = sig.fs_bvp as usize;
        let chunk_g = sig.fs_gsr as usize;
        let chunk_s = sig.fs_skt as usize;
        let mut offset = 0usize;
        loop {
            let b0 = (offset * chunk_b).min(rec.bvp.len());
            let b1 = ((offset + 1) * chunk_b).min(rec.bvp.len());
            let g0 = (offset * chunk_g).min(rec.gsr.len());
            let g1 = ((offset + 1) * chunk_g).min(rec.gsr.len());
            let s0 = (offset * chunk_s).min(rec.skt.len());
            let s1 = ((offset + 1) * chunk_s).min(rec.skt.len());
            extractor.push(&rec.bvp[b0..b1], &rec.gsr[g0..g1], &rec.skt[s0..s1]);
            offset += 1;
            if b1 == rec.bvp.len() && g1 == rec.gsr.len() && s1 == rec.skt.len() {
                break;
            }
        }
        let map: FeatureMap = extractor.feature_map().expect("windows available");
        // Serving is quality-gated: the deployment may abstain (low
        // quality or low confidence) instead of emitting a label.
        let prediction = device.predict("wearer", &map).expect("wearer onboarded");
        let (shown, ok) = match prediction.emotion {
            Some(predicted) => {
                let ok = predicted == rec.emotion;
                correct += usize::from(ok);
                total += 1;
                (predicted.to_string(), if ok { "yes" } else { "no" })
            }
            None => ("(abstain)".to_string(), "-"),
        };
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>8}",
            idx,
            map.window_count(),
            rec.emotion.to_string(),
            shown,
            ok
        );
    }
    println!(
        "\nstreaming cold-start accuracy: {:.1} % ({correct}/{total})",
        correct as f32 / total as f32 * 100.0
    );
}
