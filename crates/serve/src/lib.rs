//! # clear-serve — multi-tenant serving engine
//!
//! The paper's end state is CLEAR running as an always-on service: K
//! shared cluster models serving a population, with per-user
//! personalized forks created on demand. The single-tenant
//! [`clear_core::deployment::ClearDeployment`] holds every user behind
//! one `&mut self`, so concurrent users serialize and every personalized
//! user pins a full network forever. This crate scales that design out
//! without changing a single served bit:
//!
//! * [`ServeEngine`] — sharded user registry (`RwLock` per shard,
//!   `shard = hash(user) % N`), every operation `&self`, so distinct
//!   users proceed concurrently from scoped threads;
//! * cross-user batching — [`ServeEngine::predict_many`] groups a
//!   request set by assigned cluster and serves each group through one
//!   reused workspace;
//! * bounded personalized-model cache — adopted forks persist as sparse
//!   [`clear_nn::delta::WeightDelta`]s and hydrate through a bounded
//!   LRU; eviction/rehydration is bit-exact and invisible to callers;
//! * admission control — per-shard in-flight caps with a typed
//!   [`ServeError::Overloaded`] rejection instead of unbounded queueing;
//! * crash-consistent durability (opt-in) — [`ServeEngine::recover`]
//!   opens an engine over a `clear_durable` write-ahead log plus
//!   periodic atomic snapshots; after a crash the same call rebuilds a
//!   registry bit-identical to a never-crashed engine
//!   (`tests/durability.rs` sweeps every write boundary).
//!
//! The load-bearing invariant, enforced by `tests/equivalence.rs`,
//! `tests/stress.rs` and `tests/properties.rs`: for any request set and
//! any (shards, cache bound ≥ 1, threads) configuration, the engine's
//! per-request output is bit-identical to a sequential per-user
//! `ClearDeployment` serving the same operations. Sharding, batching and
//! caching change throughput and memory — never predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod engine;

pub use engine::{CacheStats, EngineConfig, ImportReport, ServeEngine, ServeError, ServeRequest};
