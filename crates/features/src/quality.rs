//! Signal- and feature-level quality assessment.
//!
//! Wearable channels fail in characteristic ways — electrode lift-off
//! freezes a trace, amplifier rails clip it, loose contacts inject NaNs or
//! physically impossible values. This module quantifies those failure
//! modes **before** the pipeline spends compute on a window, and again at
//! the feature-map level where the serving layer has no access to raw
//! samples. [`crate::map::FeatureExtractor`] stays total under garbage;
//! quality assessment is what lets `ClearDeployment` decide whether the
//! resulting features *mean* anything.
//!
//! Two layers:
//!
//! * **Signal level** ([`assess_window`], [`QualityAssessor`]): per-channel
//!   indices — flatline run length, saturation fraction, dropout fraction,
//!   NaN / out-of-physiological-range rate — rolled into a per-window
//!   [`QualityReport`] aligned with the extractor's sliding windows.
//! * **Feature-map level** ([`assess_map`]): per-modality block health of
//!   an already-extracted [`FeatureMap`] (non-finite rate, dead constant
//!   rows), for gating at serving time.

use crate::catalog::{modality_count, modality_offset, Modality};
use crate::extract::WindowConfig;
use crate::map::FeatureMap;
use clear_sim::{Recording, SignalConfig};
use serde::{Deserialize, Serialize};

/// Thresholds and physiological plausibility ranges of the assessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityConfig {
    /// A run of samples counts as *flat* while its total excursion stays
    /// below this fraction of the channel's standard deviation.
    pub flatline_excursion_fraction: f32,
    /// Minimum duration (seconds) of a flat run before it is counted.
    pub min_flat_run_secs: f32,
    /// Samples within this fraction of the channel's observed range of
    /// its min/max count as sitting on an amplifier rail.
    pub rail_margin_fraction: f32,
    /// Plausible BVP range (arbitrary photoplethysmograph units).
    pub bvp_range: (f32, f32),
    /// Plausible GSR range, microsiemens.
    pub gsr_range: (f32, f32),
    /// Plausible skin-temperature range, degrees Celsius.
    pub skt_range: (f32, f32),
    /// A channel scoring below this is treated as missing/dead.
    pub min_channel_score: f32,
    /// A window scoring below this overall is unusable.
    pub min_window_quality: f32,
}

impl Default for QualityConfig {
    fn default() -> Self {
        Self {
            flatline_excursion_fraction: 0.02,
            min_flat_run_secs: 1.0,
            rail_margin_fraction: 0.002,
            bvp_range: (-30.0, 30.0),
            gsr_range: (0.0, 80.0),
            skt_range: (18.0, 45.0),
            min_channel_score: 0.5,
            min_window_quality: 0.4,
        }
    }
}

impl QualityConfig {
    fn range_of(&self, modality: Modality) -> (f32, f32) {
        match modality {
            Modality::Bvp => self.bvp_range,
            Modality::Gsr => self.gsr_range,
            Modality::Skt => self.skt_range,
        }
    }
}

/// Quality indices of one channel over one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelQuality {
    /// Which channel this describes.
    pub modality: Modality,
    /// Fraction of samples inside counted flat runs (stuck sensor).
    pub flatline_fraction: f32,
    /// Longest flat run, seconds.
    pub longest_flat_run_secs: f32,
    /// Fraction of samples in runs of *exactly* repeated values (frozen
    /// ADC output — the classic dropout signature).
    pub dropout_fraction: f32,
    /// Fraction of samples piled onto the observed min/max rails.
    pub saturation_fraction: f32,
    /// Fraction of samples that are NaN, infinite, or outside the
    /// physiologically plausible range.
    pub bad_sample_fraction: f32,
    /// Roll-up score in `[0, 1]`; 1 is pristine.
    pub score: f32,
}

impl ChannelQuality {
    /// Whether this channel is healthy enough to trust, under `config`.
    pub fn usable(&self, config: &QualityConfig) -> bool {
        self.score >= config.min_channel_score
    }
}

/// Per-window roll-up of all three channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Channel indices in catalog modality order (GSR, BVP, SKT).
    pub channels: Vec<ChannelQuality>,
    /// Overall window score: the *worst* channel bounds it from above,
    /// softened by the mean (a single dead channel should hurt but not
    /// zero a window whose other channels are pristine).
    pub score: f32,
}

impl QualityReport {
    /// Whether the window clears the serving floor.
    pub fn usable(&self, config: &QualityConfig) -> bool {
        self.score >= config.min_window_quality
    }

    /// Channels considered missing/dead under `config`.
    pub fn missing(&self, config: &QualityConfig) -> Vec<Modality> {
        self.channels
            .iter()
            .filter(|c| !c.usable(config))
            .map(|c| c.modality)
            .collect()
    }

    /// The report of one channel.
    pub fn channel(&self, modality: Modality) -> Option<&ChannelQuality> {
        self.channels.iter().find(|c| c.modality == modality)
    }
}

/// Assesses one channel's samples at sampling rate `fs`.
pub fn assess_channel(
    x: &[f32],
    fs: f32,
    modality: Modality,
    config: &QualityConfig,
) -> ChannelQuality {
    let n = x.len();
    if n == 0 {
        return ChannelQuality {
            modality,
            flatline_fraction: 1.0,
            longest_flat_run_secs: 0.0,
            dropout_fraction: 1.0,
            saturation_fraction: 0.0,
            bad_sample_fraction: 1.0,
            score: 0.0,
        };
    }

    // Finite/in-range screening; all other statistics are computed over
    // the finite samples only (a NaN would otherwise poison them).
    let (lo, hi) = config.range_of(modality);
    let mut bad = 0usize;
    let mut finite: Vec<f32> = Vec::with_capacity(n);
    for &v in x {
        if !v.is_finite() || v < lo || v > hi {
            bad += 1;
        }
        if v.is_finite() {
            finite.push(v);
        }
    }
    let bad_sample_fraction = bad as f32 / n as f32;
    if finite.is_empty() {
        return ChannelQuality {
            modality,
            flatline_fraction: 1.0,
            longest_flat_run_secs: n as f32 / fs.max(1e-6),
            dropout_fraction: 1.0,
            saturation_fraction: 0.0,
            bad_sample_fraction,
            score: 0.0,
        };
    }

    let mean = finite.iter().sum::<f32>() / finite.len() as f32;
    let sd =
        (finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / finite.len() as f32).sqrt();

    // Flat runs: a run stays flat while its min-max excursion is within
    // the threshold; a constant channel (sd = 0) is one full-length run.
    let min_run = ((config.min_flat_run_secs * fs) as usize).max(2);
    let excursion = config.flatline_excursion_fraction * sd;
    let mut flat_samples = 0usize;
    let mut longest_run = 0usize;
    let mut run_start = 0usize;
    let mut run_min = finite[0];
    let mut run_max = finite[0];
    for i in 1..=finite.len() {
        let extended = if i < finite.len() {
            let lo2 = run_min.min(finite[i]);
            let hi2 = run_max.max(finite[i]);
            if hi2 - lo2 <= excursion {
                run_min = lo2;
                run_max = hi2;
                true
            } else {
                false
            }
        } else {
            false
        };
        if !extended {
            let len = i - run_start;
            if len >= min_run {
                flat_samples += len;
                longest_run = longest_run.max(len);
            }
            if i < finite.len() {
                run_start = i;
                run_min = finite[i];
                run_max = finite[i];
            }
        }
    }
    let flatline_fraction = flat_samples as f32 / finite.len() as f32;
    let longest_flat_run_secs = longest_run as f32 / fs.max(1e-6);

    // Dropout: runs of exactly repeated values (frozen output).
    let mut dropout_samples = 0usize;
    let mut eq_run = 1usize;
    for i in 1..=finite.len() {
        if i < finite.len() && finite[i] == finite[i - 1] {
            eq_run += 1;
        } else {
            if eq_run >= min_run {
                dropout_samples += eq_run;
            }
            eq_run = 1;
        }
    }
    let dropout_fraction = dropout_samples as f32 / finite.len() as f32;

    // Saturation: sample mass on the observed rails. Only meaningful when
    // the channel actually spans a range.
    let omin = finite.iter().cloned().fold(f32::INFINITY, f32::min);
    let omax = finite.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let width = omax - omin;
    let saturation_fraction = if width > 1e-9 {
        let margin = config.rail_margin_fraction * width;
        let railed = finite
            .iter()
            .filter(|&&v| v >= omax - margin || v <= omin + margin)
            .count();
        // A handful of honest extrema always touch the rails; subtract a
        // small allowance so clean periodic signals score ~0 here.
        ((railed as f32 / finite.len() as f32) - 0.02).max(0.0)
    } else {
        0.0
    };

    let score = ((1.0 - flatline_fraction.max(dropout_fraction))
        * (1.0 - saturation_fraction)
        * (1.0 - bad_sample_fraction))
        .clamp(0.0, 1.0);

    ChannelQuality {
        modality,
        flatline_fraction,
        longest_flat_run_secs,
        dropout_fraction,
        saturation_fraction,
        bad_sample_fraction,
        score,
    }
}

/// Assesses one time-aligned window of the three raw channels.
pub fn assess_window(
    bvp: &[f32],
    gsr: &[f32],
    skt: &[f32],
    signal: &SignalConfig,
    config: &QualityConfig,
) -> QualityReport {
    let channels = vec![
        assess_channel(gsr, signal.fs_gsr, Modality::Gsr, config),
        assess_channel(bvp, signal.fs_bvp, Modality::Bvp, config),
        assess_channel(skt, signal.fs_skt, Modality::Skt, config),
    ];
    let worst = channels
        .iter()
        .map(|c| c.score)
        .fold(f32::INFINITY, f32::min);
    let mean = channels.iter().map(|c| c.score).sum::<f32>() / channels.len() as f32;
    QualityReport {
        channels,
        score: 0.5 * worst + 0.5 * mean,
    }
}

/// Stateful assessor mirroring [`crate::map::FeatureExtractor`]'s sliding
/// windows, so report `i` describes the raw samples behind feature-map
/// column `i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityAssessor {
    signal: SignalConfig,
    window: WindowConfig,
    config: QualityConfig,
}

impl QualityAssessor {
    /// Creates an assessor for recordings produced under `signal`,
    /// windowed per `window`.
    pub fn new(signal: SignalConfig, window: WindowConfig, config: QualityConfig) -> Self {
        Self {
            signal,
            window,
            config,
        }
    }

    /// The thresholds in use.
    pub fn config(&self) -> &QualityConfig {
        &self.config
    }

    /// Per-window reports for one recording, aligned with
    /// [`crate::map::FeatureExtractor::feature_map`] columns. Returns an
    /// empty vector for recordings shorter than one window (where the
    /// extractor would panic — callers should treat that as unusable).
    pub fn assess_recording(&self, recording: &Recording) -> Vec<QualityReport> {
        let duration = recording.bvp.len() as f32 / self.signal.fs_bvp;
        let count = self.window.window_count(duration);
        let mut reports = Vec::with_capacity(count);
        for w in 0..count {
            let t0 = w as f32 * self.window.step_secs;
            let t1 = t0 + self.window.window_secs;
            let slice = |x: &[f32], fs: f32| -> &[f32] {
                let a = (t0 * fs) as usize;
                let b = ((t1 * fs) as usize).min(x.len());
                &x[a.min(b)..b]
            };
            reports.push(assess_window(
                slice(&recording.bvp, self.signal.fs_bvp),
                slice(&recording.gsr, self.signal.fs_gsr),
                slice(&recording.skt, self.signal.fs_skt),
                &self.signal,
                &self.config,
            ));
        }
        reports
    }

    /// One report over the recording's full duration.
    pub fn assess_whole(&self, recording: &Recording) -> QualityReport {
        assess_window(
            &recording.bvp,
            &recording.gsr,
            &recording.skt,
            &self.signal,
            &self.config,
        )
    }
}

/// Feature-map-level quality: per-modality block health of an extracted
/// map, for serving layers that never see raw samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapQuality {
    /// `(modality, non-finite fraction, dead-row fraction, score)` per
    /// catalog block.
    pub blocks: Vec<MapBlockQuality>,
    /// Feature-count-weighted overall score in `[0, 1]`.
    pub score: f32,
}

/// Health of one modality's feature rows within a map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapBlockQuality {
    /// The modality of this catalog block.
    pub modality: Modality,
    /// Fraction of non-finite entries in the block.
    pub nonfinite_fraction: f32,
    /// Fraction of the block's rows that are constant across all windows
    /// (the signature of a flat/lost channel propagated through the
    /// extractor).
    pub dead_row_fraction: f32,
    /// Block score in `[0, 1]`.
    pub score: f32,
}

impl MapQuality {
    /// Modalities whose block score falls below `min_score`.
    pub fn dead_modalities(&self, min_score: f32) -> Vec<Modality> {
        self.blocks
            .iter()
            .filter(|b| b.score < min_score)
            .map(|b| b.modality)
            .collect()
    }

    /// The block of one modality.
    pub fn block(&self, modality: Modality) -> Option<&MapBlockQuality> {
        self.blocks.iter().find(|b| b.modality == modality)
    }
}

/// Assesses an extracted feature map per modality block.
///
/// Single-window maps cannot distinguish "flat" from "short", so dead-row
/// detection only engages for maps with at least two windows.
pub fn assess_map(map: &FeatureMap) -> MapQuality {
    let w = map.window_count();
    let mut blocks = Vec::with_capacity(3);
    let mut weighted = 0.0f32;
    let mut weight = 0.0f32;
    for modality in [Modality::Gsr, Modality::Bvp, Modality::Skt] {
        let offset = modality_offset(modality);
        let count = modality_count(modality);
        let mut nonfinite = 0usize;
        let mut dead_rows = 0usize;
        for f in offset..offset + count {
            let row = map.row(f);
            let mut row_nonfinite = 0usize;
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in row {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                } else {
                    row_nonfinite += 1;
                }
            }
            nonfinite += row_nonfinite;
            let finite_n = row.len() - row_nonfinite;
            if w >= 2 && finite_n >= 2 {
                let scale = hi.abs().max(lo.abs()).max(1.0);
                if hi - lo <= 1e-6 * scale {
                    dead_rows += 1;
                }
            } else if finite_n == 0 {
                dead_rows += 1;
            }
        }
        let nonfinite_fraction = nonfinite as f32 / (count * w) as f32;
        let dead_row_fraction = dead_rows as f32 / count as f32;
        // A few constant rows are normal (count-valued features often do
        // not change between adjacent windows); only a block that is
        // *mostly* constant indicates a dead channel.
        let dead_penalty = if dead_row_fraction >= 0.75 {
            dead_row_fraction
        } else {
            0.0
        };
        let score = ((1.0 - nonfinite_fraction) * (1.0 - dead_penalty)).clamp(0.0, 1.0);
        blocks.push(MapBlockQuality {
            modality,
            nonfinite_fraction,
            dead_row_fraction,
            score,
        });
        weighted += score * count as f32;
        weight += count as f32;
    }
    MapQuality {
        blocks,
        score: if weight > 0.0 { weighted / weight } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FEATURE_COUNT;
    use crate::map::FeatureExtractor;
    use clear_sim::{Cohort, CohortConfig};

    fn sample() -> (Recording, SignalConfig) {
        let config = CohortConfig::small(31);
        let cohort = Cohort::generate(&config);
        (cohort.recordings()[0].clone(), config.signal)
    }

    #[test]
    fn clean_recording_scores_high() {
        let (rec, signal) = sample();
        let assessor =
            QualityAssessor::new(signal, WindowConfig::default(), QualityConfig::default());
        let reports = assessor.assess_recording(&rec);
        assert!(!reports.is_empty());
        for r in &reports {
            assert!(
                r.usable(assessor.config()),
                "clean window scored {}",
                r.score
            );
            assert!(r.missing(assessor.config()).is_empty());
        }
    }

    #[test]
    fn constant_channel_is_flagged_flat() {
        let (mut rec, signal) = sample();
        let stuck = rec.bvp[0];
        for v in &mut rec.bvp {
            *v = stuck;
        }
        let assessor =
            QualityAssessor::new(signal, WindowConfig::default(), QualityConfig::default());
        let report = assessor.assess_whole(&rec);
        let bvp = report.channel(Modality::Bvp).unwrap();
        assert!(
            bvp.flatline_fraction > 0.95,
            "flat {}",
            bvp.flatline_fraction
        );
        assert!(bvp.dropout_fraction > 0.95);
        assert!(!bvp.usable(assessor.config()));
        assert!(report.missing(assessor.config()).contains(&Modality::Bvp));
        // The other channels are untouched.
        assert!(report
            .channel(Modality::Gsr)
            .unwrap()
            .usable(assessor.config()));
    }

    #[test]
    fn fully_flat_recording_is_unusable() {
        let (mut rec, signal) = sample();
        for v in &mut rec.bvp {
            *v = 1.0;
        }
        for v in &mut rec.gsr {
            *v = 2.0;
        }
        for v in &mut rec.skt {
            *v = 33.0;
        }
        let assessor =
            QualityAssessor::new(signal, WindowConfig::default(), QualityConfig::default());
        for report in assessor.assess_recording(&rec) {
            assert!(!report.usable(assessor.config()));
            assert!(report.score < 0.1);
        }
    }

    #[test]
    fn nan_and_out_of_range_are_bad_samples() {
        let (mut rec, signal) = sample();
        let n = rec.gsr.len();
        for v in rec.gsr.iter_mut().take(n / 2) {
            *v = f32::NAN;
        }
        let q = assess_channel(
            &rec.gsr,
            signal.fs_gsr,
            Modality::Gsr,
            &QualityConfig::default(),
        );
        assert!(q.bad_sample_fraction >= 0.49);
        assert!(q.score < 0.6);
        let skt = vec![900.0f32; 120];
        let q = assess_channel(
            &skt,
            signal.fs_skt,
            Modality::Skt,
            &QualityConfig::default(),
        );
        assert!(q.bad_sample_fraction > 0.99);
        assert!(q.score < 0.05);
    }

    #[test]
    fn clipped_channel_registers_saturation() {
        let (mut rec, signal) = sample();
        // Hard-clip BVP to a narrow band: a large sample mass lands
        // exactly on the rails.
        let mean = rec.bvp.iter().sum::<f32>() / rec.bvp.len() as f32;
        for v in &mut rec.bvp {
            *v = v.clamp(mean - 0.05, mean + 0.05);
        }
        let q = assess_channel(
            &rec.bvp,
            signal.fs_bvp,
            Modality::Bvp,
            &QualityConfig::default(),
        );
        assert!(q.saturation_fraction > 0.1, "sat {}", q.saturation_fraction);
    }

    #[test]
    fn map_quality_flags_dead_block() {
        let (mut rec, signal) = sample();
        let extractor = FeatureExtractor::new(signal, WindowConfig::default());
        let clean_q = assess_map(&extractor.feature_map(&rec));
        assert!(clean_q.score > 0.8, "clean map scored {}", clean_q.score);
        assert!(clean_q.dead_modalities(0.5).is_empty());

        let stuck = rec.bvp[0];
        for v in &mut rec.bvp {
            *v = stuck;
        }
        let q = assess_map(&extractor.feature_map(&rec));
        let bvp = q.block(Modality::Bvp).unwrap();
        assert!(
            bvp.dead_row_fraction > 0.75,
            "dead rows {}",
            bvp.dead_row_fraction
        );
        assert!(q.dead_modalities(0.5).contains(&Modality::Bvp));
        assert!(q.block(Modality::Gsr).unwrap().score > 0.8);
    }

    #[test]
    fn nonfinite_map_entries_are_counted() {
        let mut columns = vec![vec![0.5f32; FEATURE_COUNT]; 4];
        for col in &mut columns {
            for v in col.iter_mut().take(10) {
                *v = f32::NAN;
            }
            // Vary the remaining entries so rows are not constant.
            for (i, v) in col.iter_mut().enumerate().skip(10) {
                *v += (i % 7) as f32 * 0.01;
            }
        }
        // Make rows vary across windows too.
        for (w, col) in columns.iter_mut().enumerate() {
            for v in col.iter_mut().skip(10) {
                *v += w as f32 * 0.1;
            }
        }
        let map = FeatureMap::from_columns(&columns);
        let q = assess_map(&map);
        let gsr = q.block(Modality::Gsr).unwrap();
        assert!(
            gsr.nonfinite_fraction > 0.25,
            "nf {}",
            gsr.nonfinite_fraction
        );
        assert!(gsr.score < 0.75);
    }

    #[test]
    fn empty_and_short_inputs_do_not_panic() {
        let cfg = QualityConfig::default();
        let q = assess_channel(&[], 64.0, Modality::Bvp, &cfg);
        assert_eq!(q.score, 0.0);
        let q = assess_channel(&[1.0], 64.0, Modality::Bvp, &cfg);
        assert!(q.score.is_finite());
        let all_nan = vec![f32::NAN; 32];
        let q = assess_channel(&all_nan, 64.0, Modality::Bvp, &cfg);
        assert_eq!(q.score, 0.0);
        assert!(q.bad_sample_fraction > 0.99);
    }
}
