//! Deploying, evaluating and fine-tuning networks on simulated devices.

use crate::device::{Device, DeviceSpec};
use clear_nn::backend::BackendKind;
use clear_nn::data::Dataset;
use clear_nn::loss::predict_class;
use clear_nn::metrics::{ConfusionMatrix, FoldScore};
use clear_nn::network::Network;
use clear_nn::quantize::{lower_network, quantize_in_place, Precision};
use clear_nn::summary::summarize;
use clear_nn::tensor::Tensor;
use clear_nn::train::{self, TrainConfig};
use clear_nn::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// The Table II measurement block of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean time consumption of re-training, seconds.
    pub mtc_retraining_s: f32,
    /// Mean power consumption during re-training, watts.
    pub mpc_retraining_w: f32,
    /// Mean time consumption of one test inference, milliseconds.
    pub mtc_test_ms: f32,
    /// Mean power consumption during test, watts.
    pub mpc_test_w: f32,
    /// Baseline (idle) power consumption, watts.
    pub mpc_baseline_w: f32,
}

/// Result of an on-device fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneOutcome {
    /// Post-fine-tuning score on the held-out data.
    pub score: FoldScore,
    /// Epochs the training loop actually ran.
    pub epochs_run: usize,
    /// Simulated re-training wall-clock, seconds.
    pub retraining_time_s: f32,
    /// Simulated re-training energy, joules.
    pub retraining_energy_j: f32,
}

/// A network deployed on a simulated edge device.
///
/// Construction maps the device's [`Precision`] onto an inference
/// backend: int8 devices keep the fp32 checkpoint and execute the real
/// quantized kernels ([`BackendKind::Int8`]), while fp16/fp32 devices
/// lower the stored weights and run the vectorized f32 path. The model
/// size and FLOP count are frozen at deployment time.
#[derive(Debug, Clone)]
pub struct EdgeDeployment {
    device: Device,
    spec: DeviceSpec,
    network: Network,
    flops: u64,
    model_bytes: usize,
    // Reused execution state: steady-state inference allocates nothing.
    ws: Workspace,
}

impl EdgeDeployment {
    /// Deploys `network` (a cloud checkpoint) onto `device`.
    ///
    /// `input_shape` is the feature-map shape the model will serve (e.g.
    /// `[1, 123, 9]`), needed for FLOP accounting.
    ///
    /// # Panics
    ///
    /// Panics if `input_shape` is incompatible with the network.
    pub fn new(mut network: Network, device: Device, input_shape: &[usize]) -> Self {
        let spec = device.spec();
        let flops = summarize(&network, input_shape).total_flops();
        let model_bytes = network.param_count() * spec.precision.bytes_per_weight();
        // Int8 devices execute the real quantized kernels against the
        // fp32 checkpoint — the backend quantizes weights and activations
        // itself, so lowering here would only round the master weights
        // twice. fp16/fp32 devices keep up-front weight lowering.
        if spec.precision != Precision::Int8 {
            lower_network(&mut network, spec.precision);
        }
        Self {
            device,
            spec,
            network,
            flops,
            model_bytes,
            ws: Workspace::new(),
        }
    }

    /// The target device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The device descriptor.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Deployed model size in bytes (after precision lowering).
    pub fn model_bytes(&self) -> usize {
        self.model_bytes
    }

    /// Forward FLOPs of one inference.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The deployed (lowered) network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Runs one inference under the device's numeric precision. The Edge
    /// TPU runs the whole graph through the real int8 kernels (quantized
    /// weights, quantized activations, i32 accumulation — where most of
    /// its accuracy loss comes from); the NCS2 runs fp16-lowered weights
    /// with every activation rounded through fp16 between layers; the GPU
    /// baseline is plain vectorized f32. All per-call state lives in the
    /// reused workspace, so steady-state inference allocates nothing but
    /// the returned tensor; use [`EdgeDeployment::predict_batch`] to
    /// avoid even that.
    pub fn infer(&mut self, input: &Tensor) -> Tensor {
        self.infer_ws(input).clone()
    }

    /// Allocation-free inference core: runs the device-precision forward
    /// pass in the deployment's workspace and returns a reference to the
    /// output activation (valid until the next inference).
    fn infer_ws(&mut self, input: &Tensor) -> &Tensor {
        let _span = clear_obs::span(clear_obs::Stage::EdgeInfer);
        match self.spec.precision {
            // Real quantized execution: the backend quantizes weights
            // (cached per weight stamp) and activations itself, so no
            // lowering or inter-layer taps are involved.
            Precision::Int8 => {
                self.network
                    .forward_with(input, false, &mut self.ws, BackendKind::Int8.instance())
            }
            // fp16 emulation keeps lowered weights plus a rounding tap on
            // every activation; under fp32 the tap is a no-op.
            precision => self.network.forward_tapped_with(
                input,
                false,
                &mut self.ws,
                BackendKind::Blocked.instance(),
                &mut |t| quantize_in_place(t.as_mut_slice(), precision),
            ),
        }
    }

    /// Classifies a batch of feature maps in one pass over the reused
    /// workspace, returning the predicted class per window. This is the
    /// steady-state serving path: per-window costs (workspace binding,
    /// activation buffers) are amortized across the batch and no per-window
    /// tensors are allocated.
    pub fn predict_batch(&mut self, inputs: &[Tensor]) -> Vec<usize> {
        let mut out = Vec::with_capacity(inputs.len());
        for input in inputs {
            out.push(predict_class(self.infer_ws(input)));
        }
        out
    }

    /// Evaluates the deployment on a dataset through the device's numeric
    /// path (see [`EdgeDeployment::infer`]).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn evaluate(&mut self, data: &Dataset) -> FoldScore {
        assert!(!data.is_empty(), "evaluation set is empty");
        let mut cm = ConfusionMatrix::new(2);
        for sample in data.iter() {
            let predicted = predict_class(self.infer_ws(&sample.input));
            cm.record(sample.label, predicted);
        }
        FoldScore {
            accuracy: cm.accuracy(),
            f1: cm.f1(1),
        }
    }

    /// Simulated single-inference latency, milliseconds.
    pub fn test_time_ms(&self) -> f32 {
        self.spec.inference_time_s(self.flops) * 1000.0
    }

    /// Fine-tunes on-device: trains with the given config, re-lowering the
    /// weights to device precision after every epoch (the device cannot
    /// hold fp32 weights), then evaluates on `test`.
    ///
    /// # Panics
    ///
    /// Panics if either dataset is empty.
    pub fn fine_tune(
        &mut self,
        train_set: &Dataset,
        test_set: &Dataset,
        config: &TrainConfig,
    ) -> FineTuneOutcome {
        let _span = clear_obs::span(clear_obs::Stage::EdgeFineTune);
        // Epoch-wise loop so precision lowering interleaves with updates.
        let mut epochs_run = 0usize;
        let mut best_acc = f32::NEG_INFINITY;
        let mut stale = 0usize;
        let mut best_weights = self.network.parameters_flat();
        for epoch in 0..config.epochs {
            let mut one = *config;
            one.epochs = 1;
            one.seed = config.seed.wrapping_add(epoch as u64);
            one.patience = 0;
            train::train(&mut self.network, train_set, None, &one);
            lower_network(&mut self.network, self.spec.precision);
            epochs_run += 1;
            let score = self.evaluate(train_set);
            if score.accuracy >= best_acc {
                best_acc = score.accuracy;
                best_weights = self.network.parameters_flat();
                stale = 0;
            } else {
                stale += 1;
                if config.patience > 0 && stale >= config.patience {
                    break;
                }
            }
        }
        self.network.set_parameters_flat(&best_weights);
        lower_network(&mut self.network, self.spec.precision);

        let score = self.evaluate(test_set);
        let retraining_time_s =
            self.spec
                .retraining_time_s(epochs_run, train_set.len(), self.flops);
        FineTuneOutcome {
            score,
            epochs_run,
            retraining_time_s,
            retraining_energy_j: retraining_time_s * self.spec.retraining_power_w(),
        }
    }

    /// The Table II measurement block for this deployment, given a
    /// representative fine-tuning run.
    pub fn measurement(&self, outcome: &FineTuneOutcome) -> Measurement {
        Measurement {
            mtc_retraining_s: outcome.retraining_time_s,
            mpc_retraining_w: self.spec.retraining_power_w(),
            mtc_test_ms: self.test_time_ms(),
            mpc_test_w: self.spec.test_power_w(),
            mpc_baseline_w: self.spec.idle_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_nn::network::cnn_lstm;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn toy_maps(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..n {
            let label = i % 2;
            let mut data = vec![0.0f32; 30 * 5];
            for v in &mut data {
                *v = rng.gen_range(-0.3..0.3);
            }
            if label == 1 {
                for r in 0..10 {
                    for c in 0..5 {
                        data[r * 5 + c] += 1.2;
                    }
                }
            }
            d.push(Tensor::from_vec(&[1, 30, 5], data), label);
        }
        d
    }

    fn trained_net(seed: u64) -> Network {
        let mut net = cnn_lstm(30, 5, 2, seed);
        let config = TrainConfig {
            epochs: 12,
            batch_size: 8,
            ..Default::default()
        };
        train::train(&mut net, &toy_maps(40, 1), None, &config);
        net
    }

    #[test]
    fn deployment_lowers_weights_to_device_precision() {
        let net = trained_net(3);
        let tpu = EdgeDeployment::new(net.clone(), Device::CoralTpu, &[1, 30, 5]);
        assert_eq!(tpu.model_bytes(), net.param_count());
        // Int8 devices keep the fp32 master checkpoint: quantization
        // happens inside the backend at execution time.
        assert_eq!(tpu.network().parameters_flat(), net.parameters_flat());
        let gpu = EdgeDeployment::new(net.clone(), Device::Gpu, &[1, 30, 5]);
        assert_eq!(gpu.model_bytes(), 4 * net.param_count());
        let ncs2 = EdgeDeployment::new(net.clone(), Device::PiNcs2, &[1, 30, 5]);
        assert_eq!(ncs2.model_bytes(), 2 * net.param_count());
        // fp16 devices still lower the stored weights up front.
        assert_ne!(ncs2.network().parameters_flat(), net.parameters_flat());
    }

    #[test]
    fn accuracy_ordering_gpu_ge_ncs2_ge_tpu() {
        let net = trained_net(5);
        let test = toy_maps(30, 9);
        let mut scores = Vec::new();
        for device in Device::all() {
            let mut dep = EdgeDeployment::new(net.clone(), device, &[1, 30, 5]);
            scores.push((device, dep.evaluate(&test).accuracy));
        }
        // On an easy task all should stay high; int8 must not beat fp32.
        let gpu = scores[0].1;
        let tpu = scores[1].1;
        let ncs2 = scores[2].1;
        assert!(gpu >= tpu - 1e-6, "gpu {gpu} vs tpu {tpu}");
        assert!(ncs2 >= tpu - 1e-6, "ncs2 {ncs2} vs tpu {tpu}");
        assert!(gpu > 0.85);
    }

    #[test]
    fn timing_ordering_matches_table2() {
        let net = trained_net(7);
        let gpu = EdgeDeployment::new(net.clone(), Device::Gpu, &[1, 30, 5]);
        let tpu = EdgeDeployment::new(net.clone(), Device::CoralTpu, &[1, 30, 5]);
        let ncs2 = EdgeDeployment::new(net, Device::PiNcs2, &[1, 30, 5]);
        assert!(gpu.test_time_ms() < tpu.test_time_ms());
        assert!(tpu.test_time_ms() < ncs2.test_time_ms());
    }

    #[test]
    fn fine_tune_improves_on_new_distribution() {
        // Shifted task: same structure, different noise seed and offset.
        let net = trained_net(11);
        let mut dep = EdgeDeployment::new(net, Device::PiNcs2, &[1, 30, 5]);
        let user_train = toy_maps(16, 21);
        let user_test = toy_maps(20, 22);
        let before = dep.evaluate(&user_test).accuracy;
        let outcome = dep.fine_tune(
            &user_train,
            &user_test,
            &TrainConfig {
                epochs: 8,
                batch_size: 4,
                ..Default::default()
            },
        );
        assert!(outcome.score.accuracy >= before - 0.05);
        assert!(outcome.epochs_run >= 1 && outcome.epochs_run <= 8);
        assert!(outcome.retraining_time_s > 0.0);
        assert!(outcome.retraining_energy_j > outcome.retraining_time_s); // power > 1 W
    }

    #[test]
    fn measurement_block_is_consistent() {
        let net = trained_net(13);
        let mut dep = EdgeDeployment::new(net, Device::CoralTpu, &[1, 30, 5]);
        let outcome = dep.fine_tune(
            &toy_maps(8, 31),
            &toy_maps(8, 32),
            &TrainConfig {
                epochs: 3,
                batch_size: 4,
                ..Default::default()
            },
        );
        let m = dep.measurement(&outcome);
        assert_eq!(m.mtc_retraining_s, outcome.retraining_time_s);
        assert!(m.mpc_baseline_w < m.mpc_test_w);
        assert!(m.mpc_test_w < m.mpc_retraining_w);
        assert!(m.mtc_test_ms > 0.0);
    }

    #[test]
    fn inference_is_deterministic() {
        let net = trained_net(17);
        let mut dep = EdgeDeployment::new(net, Device::CoralTpu, &[1, 30, 5]);
        let x = Tensor::zeros(&[1, 30, 5]);
        let a = dep.infer(&x);
        let b = dep.infer(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn predict_batch_matches_single_inference() {
        let net = trained_net(19);
        let mut dep = EdgeDeployment::new(net, Device::CoralTpu, &[1, 30, 5]);
        let windows: Vec<Tensor> = toy_maps(12, 23).iter().map(|s| s.input.clone()).collect();
        let singles: Vec<usize> = windows
            .iter()
            .map(|w| predict_class(&dep.infer(w)))
            .collect();
        let batched = dep.predict_batch(&windows);
        assert_eq!(batched, singles);
    }
}
