//! Regenerates the §IV-A cluster-count selection: the paper picks K = 4
//! from "the best balance between intra-cluster similarity and
//! inter-cluster separation". This binary sweeps K over 2..=8 on the
//! per-user feature vectors and prints WCSS (elbow), silhouette and
//! Davies-Bouldin, plus the elbow rule's selection.

use clear_bench::config_from_args;
use clear_clustering::kmeans::{KMeans, KMeansConfig};
use clear_clustering::quality::{davies_bouldin, elbow_k, silhouette};
use clear_core::dataset::PreparedCohort;

fn main() {
    let config = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let normalizer = data.fit_normalizer(&subjects);
    let vectors: Vec<Vec<f32>> = subjects
        .iter()
        .map(|&s| data.user_vector(&data.indices_of(s), &normalizer))
        .collect();

    println!("CLUSTER-COUNT SELECTION (paper §IV-A: K = 4 chosen)\n");
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>16}",
        "K", "WCSS", "silhouette", "davies-bouldin", "cluster sizes"
    );
    let k_min = 2usize;
    let k_max = 8.min(subjects.len());
    let mut wcss_curve = Vec::new();
    for k in k_min..=k_max {
        let model = KMeans::new(KMeansConfig {
            k,
            max_iter: 100,
            n_init: 8,
            seed: config.seed,
        })
        .fit(&vectors);
        let sil = silhouette(&vectors, model.assignments());
        let db = davies_bouldin(&vectors, model.assignments(), model.centroids());
        let mut sizes: Vec<usize> = (0..k).map(|c| model.members(c).len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        wcss_curve.push(model.inertia());
        println!(
            "{:>3} {:>12.2} {:>12.3} {:>14.3} {:>16}",
            k,
            model.inertia(),
            sil,
            db,
            format!("{sizes:?}")
        );
    }
    let chosen = elbow_k(&wcss_curve, k_min);
    println!("\nelbow rule selects K = {chosen} (paper: K = 4)");
    println!(
        "ground-truth archetype sizes: {:?}",
        config.cohort.subjects_per_archetype
    );
}
