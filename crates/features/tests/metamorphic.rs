//! Metamorphic properties of the 123-feature extractor: known input
//! transformations must produce exactly-predictable output changes. Unlike
//! golden vectors these need no reference values — the *relation* between
//! two extractor runs is the oracle, so they hold for whole input families.

use clear_features::catalog::{index_of, BVP_COUNT, GSR_COUNT};
use clear_features::extract_window;
use clear_sim::SignalConfig;
use proptest::prelude::*;

const WINDOW_SECS: f32 = 12.0;

fn sig() -> SignalConfig {
    SignalConfig::default()
}

/// A clean BVP pulse train at the given heart rate.
fn bvp_at(bpm: f32, fs: f32) -> Vec<f32> {
    let n = (WINDOW_SECS * fs) as usize;
    let period = 60.0 / bpm;
    (0..n)
        .map(|i| {
            let t = i as f32 / fs;
            let phase = (t % period) / period;
            (-(phase * 8.0)).exp() + 0.2 * (-((phase - 0.4) * 12.0).powi(2)).exp()
        })
        .collect()
}

/// A GSR trace with `events` triangular SCR bumps on a flat tonic level.
/// Each bump rises 0.4 µS over one second and decays back over two — far
/// above the detector's 0.04 µS criterion, well separated in time.
fn gsr_with(events: usize, tonic: f32, fs: f32) -> Vec<f32> {
    let n = (WINDOW_SECS * fs) as usize;
    let mut out = vec![tonic; n];
    for e in 0..events {
        let t0 = 1.5 + 3.0 * e as f32;
        for (i, v) in out.iter_mut().enumerate() {
            let dt = i as f32 / fs - t0;
            if (0.0..1.0).contains(&dt) {
                *v += 0.4 * dt;
            } else if (1.0..3.0).contains(&dt) {
                *v += 0.4 * (1.0 - (dt - 1.0) / 2.0);
            }
        }
    }
    out
}

/// A gently warming SKT trace with a small oscillation so spread-sensitive
/// features (std, slope, range) are non-degenerate.
fn skt_trace(base: f32, fs: f32) -> Vec<f32> {
    let n = (WINDOW_SECS * fs) as usize;
    (0..n)
        .map(|i| {
            let t = i as f32 / fs;
            base + 0.02 * t + 0.05 * (0.7 * t).sin()
        })
        .collect()
}

fn feat(v: &[f32], name: &str) -> f32 {
    v[index_of(name).unwrap_or_else(|| panic!("unknown feature {name}"))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adding a constant to the skin-temperature channel shifts its
    /// location features (mean, min, max) by exactly that constant, leaves
    /// its dispersion features (std, slope) unchanged, and — because the
    /// modalities are extracted independently — leaves every GSR and BVP
    /// feature bit-identical.
    #[test]
    fn skt_offset_shifts_location_features_and_nothing_else(c in -5.0f32..5.0) {
        let s = sig();
        let bvp = bvp_at(72.0, s.fs_bvp);
        let gsr = gsr_with(2, 3.0, s.fs_gsr);
        let skt = skt_trace(33.0, s.fs_skt);
        let shifted: Vec<f32> = skt.iter().map(|v| v + c).collect();

        let v0 = extract_window(&bvp, &gsr, &skt, &s);
        let v1 = extract_window(&bvp, &gsr, &shifted, &s);

        // GSR and BVP blocks precede the SKT block in catalog order and
        // must not move at all.
        prop_assert_eq!(
            &v0[..GSR_COUNT + BVP_COUNT],
            &v1[..GSR_COUNT + BVP_COUNT]
        );
        for name in ["skt_mean", "skt_min", "skt_max"] {
            let delta = feat(&v1, name) - feat(&v0, name);
            prop_assert!(
                (delta - c).abs() < 1e-3,
                "{name} moved by {delta}, offset was {c}"
            );
        }
        for name in ["skt_std", "skt_slope"] {
            let delta = feat(&v1, name) - feat(&v0, name);
            prop_assert!((delta).abs() < 1e-3, "{name} drifted by {delta}");
        }
    }

    /// Adding a constant to the GSR channel moves only its location
    /// features: the tonic/phasic split re-centres on the window mean, so
    /// the phasic component — and with it every SCR event feature — is
    /// unchanged up to float rounding.
    #[test]
    fn gsr_offset_leaves_phasic_event_features_unchanged(c in 0.5f32..4.0) {
        let s = sig();
        let bvp = bvp_at(72.0, s.fs_bvp);
        let skt = skt_trace(33.0, s.fs_skt);
        let gsr = gsr_with(2, 3.0, s.fs_gsr);
        let shifted: Vec<f32> = gsr.iter().map(|v| v + c).collect();

        let v0 = extract_window(&bvp, &gsr, &skt, &s);
        let v1 = extract_window(&bvp, &shifted, &skt, &s);

        let d_mean = feat(&v1, "gsr_mean") - feat(&v0, "gsr_mean");
        prop_assert!((d_mean - c).abs() < 1e-3, "gsr_mean moved by {d_mean}");
        prop_assert!((feat(&v1, "gsr_std") - feat(&v0, "gsr_std")).abs() < 1e-3);
        // Event scoring sees the same phasic signal: identical count, and
        // amplitude statistics equal to rounding.
        prop_assert_eq!(feat(&v1, "gsr_scr_count"), feat(&v0, "gsr_scr_count"));
        prop_assert_eq!(feat(&v1, "gsr_scr_rate"), feat(&v0, "gsr_scr_rate"));
        for name in ["gsr_scr_amp_mean", "gsr_scr_amp_max", "gsr_scr_amp_sum"] {
            let (a, b) = (feat(&v0, name), feat(&v1, name));
            prop_assert!((a - b).abs() < 1e-2, "{name}: {a} vs {b}");
        }
    }
}

/// Injecting more SCR bumps never decreases the detected count, and the
/// rate feature is locked to the count by the window duration: for a 12 s
/// window, rate (per minute) = count × 5.
#[test]
fn scr_rate_responds_monotonically_to_injected_bumps() {
    let s = sig();
    let bvp = bvp_at(72.0, s.fs_bvp);
    let skt = skt_trace(33.0, s.fs_skt);
    let mut last_count = 0.0f32;
    for k in 0..=3usize {
        let v = extract_window(&bvp, &gsr_with(k, 3.0, s.fs_gsr), &skt, &s);
        let count = feat(&v, "gsr_scr_count");
        let rate = feat(&v, "gsr_scr_rate");
        assert!(
            count >= k as f32,
            "{k} injected bumps but only {count} detected"
        );
        assert!(
            count >= last_count,
            "count fell from {last_count} to {count} at k = {k}"
        );
        assert!(
            (rate - count * 5.0).abs() < 1e-3,
            "rate {rate} decoupled from count {count}"
        );
        last_count = count;
    }
    // A flat trace has no events at all.
    let quiet = extract_window(&bvp, &gsr_with(0, 3.0, s.fs_gsr), &skt, &s);
    assert_eq!(feat(&quiet, "gsr_scr_count"), 0.0);
}
