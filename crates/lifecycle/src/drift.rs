//! Drift detection over the serving engine's own telemetry.
//!
//! The monitor never touches the serving path. It periodically diffs the
//! cumulative counters of the installed [`clear_obs`] registry (or takes
//! direct [`WindowSample`]s in tests) into per-interval rate samples,
//! keeps them in a bounded sliding window split into a *reference* span
//! (the oldest samples — what "healthy" looked like) and a *recent* span
//! (the newest), and raises typed [`DriftSignal`]s when the recent span
//! departs from the reference by more than the configured steps.
//!
//! Degenerate inputs are first-class: with fewer samples than both spans
//! need, or with zero traffic on either side, the monitor stays silent
//! rather than guessing — `tests/properties.rs` drives this with
//! arbitrary window sizes and orderings.

use std::collections::VecDeque;

/// Thresholds and window geometry of the drift monitor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// Samples forming the healthy reference span (floor 1).
    pub reference_windows: usize,
    /// Samples forming the recent span under judgment (floor 1).
    pub recent_windows: usize,
    /// Minimum absolute rise of the abstention rate (abstained / served)
    /// between the spans to raise [`DriftSignal::AbstentionStep`].
    pub abstention_step: f64,
    /// Minimum absolute drop of the mean served-window quality score to
    /// raise [`DriftSignal::QualityDrop`].
    pub quality_drop: f64,
    /// Minimum absolute rise of the mean cluster-assignment distance to
    /// raise [`DriftSignal::AffinityDrop`].
    pub affinity_drop: f64,
    /// Minimum served windows on *each* side before any judgment; spans
    /// below this are treated as no-traffic and never signal.
    pub min_traffic: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            reference_windows: 4,
            recent_windows: 4,
            abstention_step: 0.10,
            quality_drop: 0.08,
            affinity_drop: 0.15,
            min_traffic: 16,
        }
    }
}

/// One observation interval's aggregate serving outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowSample {
    /// Windows served (predictions emitted, including abstentions).
    pub served: u64,
    /// Windows the gate abstained on (includes quarantines).
    pub abstained: u64,
    /// Sum of served-window quality scores (mean = `quality_sum / quality_count`).
    pub quality_sum: f64,
    /// Observations contributing to `quality_sum`.
    pub quality_count: u64,
    /// Sum of cluster-assignment distances of newly observed users.
    pub affinity_sum: f64,
    /// Observations contributing to `affinity_sum`.
    pub affinity_count: u64,
}

impl WindowSample {
    // Saturating: callers may feed pathological counters (tests do, on
    // purpose) and the monitor must degrade, never panic.
    fn merge(&mut self, other: &WindowSample) {
        self.served = self.served.saturating_add(other.served);
        self.abstained = self.abstained.saturating_add(other.abstained);
        self.quality_sum += other.quality_sum;
        self.quality_count = self.quality_count.saturating_add(other.quality_count);
        self.affinity_sum += other.affinity_sum;
        self.affinity_count = self.affinity_count.saturating_add(other.affinity_count);
    }
}

/// A typed drift verdict: which served-quality aggregate moved, from
/// where to where. Rates are per-window averages over the two spans.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DriftSignal {
    /// The abstention rate rose by at least `abstention_step`.
    AbstentionStep {
        /// Reference-span abstention rate.
        reference: f64,
        /// Recent-span abstention rate.
        recent: f64,
    },
    /// The mean served-window quality fell by at least `quality_drop`.
    QualityDrop {
        /// Reference-span mean quality.
        reference: f64,
        /// Recent-span mean quality.
        recent: f64,
    },
    /// The mean assignment distance rose by at least `affinity_drop` —
    /// new users land ever farther from every calibration centroid.
    AffinityDrop {
        /// Reference-span mean assignment distance.
        reference: f64,
        /// Recent-span mean assignment distance.
        recent: f64,
    },
}

/// Cumulative serve-counter readings the monitor diffs between scans.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CounterBase {
    predictions: u64,
    abstentions: u64,
    quarantines: u64,
}

/// Sliding-window drift detector over serving telemetry.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    samples: VecDeque<WindowSample>,
    base: Option<CounterBase>,
}

impl DriftMonitor {
    /// A monitor with the given thresholds and window geometry.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            samples: VecDeque::new(),
            base: None,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Number of samples currently held.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    fn capacity(&self) -> usize {
        self.config.reference_windows.max(1) + self.config.recent_windows.max(1)
    }

    /// Pushes one interval sample, evicting the oldest beyond the window
    /// capacity. Pure bookkeeping — no telemetry, no thresholds.
    pub fn observe(&mut self, sample: WindowSample) {
        self.samples.push_back(sample);
        while self.samples.len() > self.capacity() {
            self.samples.pop_front();
        }
    }

    /// Diffs `snapshot`'s cumulative serve counters against the previous
    /// scan into one [`WindowSample`] and pushes it. The first call only
    /// establishes the baseline (counters are cumulative since process
    /// start; the interval before the monitor existed is nobody's).
    pub fn observe_counters(&mut self, snapshot: &clear_obs::Snapshot) {
        let get = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let now = CounterBase {
            predictions: get(clear_obs::counters::PREDICTIONS),
            abstentions: get(clear_obs::counters::ABSTENTIONS),
            quarantines: get(clear_obs::counters::QUARANTINES),
        };
        if let Some(prev) = self.base.replace(now) {
            let served = now.predictions.saturating_sub(prev.predictions);
            let abstained = now
                .abstentions
                .saturating_sub(prev.abstentions)
                .saturating_add(now.quarantines.saturating_sub(prev.quarantines));
            self.observe(WindowSample {
                served: served + abstained,
                abstained,
                ..WindowSample::default()
            });
        }
    }

    /// Judges the recent span against the reference span. Empty when the
    /// window has not filled, either side lacks `min_traffic`, or nothing
    /// crossed a threshold.
    pub fn assess(&self) -> Vec<DriftSignal> {
        let reference_len = self.config.reference_windows.max(1);
        let recent_len = self.config.recent_windows.max(1);
        if self.samples.len() < reference_len + recent_len {
            return Vec::new();
        }
        let mut reference = WindowSample::default();
        let mut recent = WindowSample::default();
        for (i, s) in self.samples.iter().enumerate() {
            if i < reference_len {
                reference.merge(s);
            } else {
                recent.merge(s);
            }
        }
        if reference.served < self.config.min_traffic || recent.served < self.config.min_traffic {
            return Vec::new();
        }
        let mut signals = Vec::new();
        let rate = |s: &WindowSample| s.abstained as f64 / s.served as f64;
        let (ref_rate, rec_rate) = (rate(&reference), rate(&recent));
        if rec_rate - ref_rate >= self.config.abstention_step {
            signals.push(DriftSignal::AbstentionStep {
                reference: ref_rate,
                recent: rec_rate,
            });
        }
        let mean = |sum: f64, n: u64| if n == 0 { None } else { Some(sum / n as f64) };
        if let (Some(rq), Some(cq)) = (
            mean(reference.quality_sum, reference.quality_count),
            mean(recent.quality_sum, recent.quality_count),
        ) {
            if rq - cq >= self.config.quality_drop {
                signals.push(DriftSignal::QualityDrop {
                    reference: rq,
                    recent: cq,
                });
            }
        }
        if let (Some(ra), Some(ca)) = (
            mean(reference.affinity_sum, reference.affinity_count),
            mean(recent.affinity_sum, recent.affinity_count),
        ) {
            if ca - ra >= self.config.affinity_drop {
                signals.push(DriftSignal::AffinityDrop {
                    reference: ra,
                    recent: ca,
                });
            }
        }
        signals
    }

    /// One monitoring tick: snapshot the installed registry, diff it into
    /// a sample, and judge. This is the production entry point — it spans
    /// the scan and feeds the lifecycle counters; `observe`/`assess` stay
    /// pure for property tests.
    pub fn scan(&mut self) -> Vec<DriftSignal> {
        let _span = clear_obs::span(clear_obs::Stage::LifecycleDriftScan);
        let Some(registry) = clear_obs::installed() else {
            return Vec::new();
        };
        self.observe_counters(&registry.snapshot());
        clear_obs::counter_add(clear_obs::counters::LIFECYCLE_WINDOWS_OBSERVED, 1);
        let signals = self.assess();
        if !signals.is_empty() {
            clear_obs::counter_add(
                clear_obs::counters::LIFECYCLE_DRIFT_SIGNALS,
                signals.len() as u64,
            );
        }
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(served: u64) -> WindowSample {
        WindowSample {
            served,
            abstained: served / 10,
            ..WindowSample::default()
        }
    }

    fn degraded(served: u64) -> WindowSample {
        WindowSample {
            served,
            abstained: served / 2,
            ..WindowSample::default()
        }
    }

    #[test]
    fn empty_monitor_is_silent() {
        let m = DriftMonitor::new(DriftConfig::default());
        assert!(m.assess().is_empty());
    }

    #[test]
    fn stationary_stream_never_signals() {
        let mut m = DriftMonitor::new(DriftConfig::default());
        for _ in 0..50 {
            m.observe(healthy(100));
            assert!(m.assess().is_empty());
        }
    }

    #[test]
    fn abstention_step_is_detected() {
        let mut m = DriftMonitor::new(DriftConfig::default());
        for _ in 0..4 {
            m.observe(healthy(100));
        }
        for _ in 0..4 {
            m.observe(degraded(100));
        }
        let signals = m.assess();
        assert!(
            signals
                .iter()
                .any(|s| matches!(s, DriftSignal::AbstentionStep { .. })),
            "expected an abstention step, got {signals:?}"
        );
    }

    #[test]
    fn step_fully_in_the_past_is_the_new_normal() {
        // Once the degraded regime fills the reference span too, the
        // monitor stops signalling: drift is a *change*, not a level.
        let mut m = DriftMonitor::new(DriftConfig::default());
        for _ in 0..20 {
            m.observe(degraded(100));
        }
        assert!(m.assess().is_empty());
    }

    #[test]
    fn low_traffic_spans_never_signal() {
        let mut m = DriftMonitor::new(DriftConfig::default());
        for _ in 0..4 {
            m.observe(healthy(2));
        }
        for _ in 0..4 {
            m.observe(degraded(2));
        }
        assert!(m.assess().is_empty());
    }

    #[test]
    fn quality_and_affinity_signals_fire() {
        let mut m = DriftMonitor::new(DriftConfig {
            min_traffic: 1,
            ..DriftConfig::default()
        });
        for _ in 0..4 {
            m.observe(WindowSample {
                served: 50,
                abstained: 0,
                quality_sum: 45.0,
                quality_count: 50,
                affinity_sum: 10.0,
                affinity_count: 10,
            });
        }
        for _ in 0..4 {
            m.observe(WindowSample {
                served: 50,
                abstained: 0,
                quality_sum: 30.0,
                quality_count: 50,
                affinity_sum: 20.0,
                affinity_count: 10,
            });
        }
        let signals = m.assess();
        assert!(signals
            .iter()
            .any(|s| matches!(s, DriftSignal::QualityDrop { .. })));
        assert!(signals
            .iter()
            .any(|s| matches!(s, DriftSignal::AffinityDrop { .. })));
    }

    #[test]
    fn counter_diffing_skips_the_pre_monitor_interval() {
        let mut m = DriftMonitor::new(DriftConfig::default());
        let mut snap = clear_obs::Snapshot {
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Default::default(),
        };
        snap.counters
            .insert(clear_obs::counters::PREDICTIONS.to_string(), 1000);
        m.observe_counters(&snap);
        assert_eq!(m.sample_count(), 0, "first scan only sets the baseline");
        snap.counters
            .insert(clear_obs::counters::PREDICTIONS.to_string(), 1100);
        snap.counters
            .insert(clear_obs::counters::ABSTENTIONS.to_string(), 30);
        m.observe_counters(&snap);
        assert_eq!(m.sample_count(), 1);
    }

    #[test]
    fn window_is_bounded() {
        let config = DriftConfig::default();
        let cap = config.reference_windows + config.recent_windows;
        let mut m = DriftMonitor::new(config);
        for _ in 0..100 {
            m.observe(healthy(10));
        }
        assert_eq!(m.sample_count(), cap);
    }
}
