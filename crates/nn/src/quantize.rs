//! Weight quantization: int8 post-training quantization and fp16 rounding.
//!
//! The edge platform simulator lowers checkpoints to each device's native
//! numeric format: the Coral Edge TPU executes int8 (the paper attributes
//! its accuracy drop to "support for only 8-bit data"), while the Intel
//! NCS2 executes fp16. Quantizing the weights and re-running the f32
//! forward pass models exactly the precision-induced part of the accuracy
//! difference.

use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Numeric precision of a deployment target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE 754 single precision (GPU baseline).
    Fp32,
    /// IEEE 754 half precision (Intel NCS2).
    Fp16,
    /// Signed 8-bit affine quantization (Coral Edge TPU).
    Int8,
}

impl Precision {
    /// Bytes per weight under this precision.
    pub fn bytes_per_weight(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
            Precision::Int8 => 1,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Fp32 => f.write_str("fp32"),
            Precision::Fp16 => f.write_str("fp16"),
            Precision::Int8 => f.write_str("int8"),
        }
    }
}

/// Rounds an `f32` through IEEE 754 half precision (round-to-nearest-even)
/// and back.
pub fn round_f16(v: f32) -> f32 {
    f16_to_f32(f32_to_f16(v))
}

/// Converts `f32` to half-precision bits (round-to-nearest-even).
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let mut exp = ((bits >> 23) & 0xFF) as i32;
    let mut frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    exp -= 127;
    if exp > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if exp >= -14 {
        // Normal half.
        let mut half_frac = frac >> 13;
        let rem = frac & 0x1FFF;
        // Round to nearest even.
        if rem > 0x1000 || (rem == 0x1000 && (half_frac & 1) == 1) {
            half_frac += 1;
        }
        let mut half_exp = (exp + 15) as u32;
        if half_frac == 0x400 {
            half_frac = 0;
            half_exp += 1;
            if half_exp >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((half_exp as u16) << 10) | (half_frac as u16);
    }
    // Subnormal half.
    if exp < -24 {
        return sign; // underflow → zero
    }
    frac |= 0x0080_0000; // implicit leading 1
    let shift = (-14 - exp) as u32 + 13;
    let mut half_frac = frac >> shift;
    let rem_mask = (1u32 << shift) - 1;
    let rem = frac & rem_mask;
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && (half_frac & 1) == 1) {
        half_frac += 1;
    }
    sign | half_frac as u16
}

/// Converts half-precision bits to `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x03FF) as u32;
    let bits = if exp == 0 {
        if frac == 0 {
            sign // ±0
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x03FF;
            sign | (((127 - 14 + e + 1) as u32) << 23) | (f << 13)
        }
    } else if exp == 31 {
        sign | 0x7F80_0000 | (frac << 13) // inf / nan
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Symmetric int8 scale for a tensor with the given max absolute value,
/// clamped so the scale is always a strictly positive finite number:
/// all-zero, subnormal-only, and NaN inputs get scale 1 (everything
/// quantizes to 0 anyway), and an infinite `max_abs` saturates to the
/// largest finite scale instead of producing `scale = inf` — which would
/// turn every zero weight into `0 * inf = NaN` on dequantize.
pub fn int8_scale(max_abs: f32) -> f32 {
    if !(max_abs >= f32::MIN_POSITIVE) {
        // NaN, zero, and subnormals all land here (NaN fails every
        // comparison), so the degenerate cases share one branch.
        1.0
    } else {
        (max_abs / 127.0).clamp(f32::MIN_POSITIVE, f32::MAX)
    }
}

/// Per-tensor affine int8 quantization of a weight slice.
///
/// Returns `(quantized, scale)`; `dequantized[i] = quantized[i] * scale`.
/// The scale is always positive and finite (see [`int8_scale`]); an
/// all-zero slice gets scale 1.
pub fn quantize_int8(weights: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = weights.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
    let scale = int8_scale(max_abs);
    let q = weights
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// Reconstructs `f32` weights from int8 quantization.
pub fn dequantize_int8(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| v as f32 * scale).collect()
}

/// Lowers every parameter tensor of `network` to `precision` in place
/// (quantize + dequantize, so the f32 forward path emulates the device's
/// arithmetic).
///
/// Returns the total parameter bytes the deployed model would occupy.
pub fn lower_network(network: &mut Network, precision: Precision) -> usize {
    let mut bytes = 0usize;
    network.visit_params_mut(&mut |p| {
        bytes += p.len() * precision.bytes_per_weight();
        quantize_in_place(p, precision);
    });
    bytes
}

/// Rounds a value slice through `precision` in place (quantize +
/// dequantize). Used on weights by [`lower_network`] and on workspace
/// activations by the edge runtime to emulate reduced-precision
/// inter-layer storage without allocating temporaries.
pub fn quantize_in_place(values: &mut [f32], precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => {
            for v in values.iter_mut() {
                *v = round_f16(*v);
            }
        }
        Precision::Int8 => {
            let max_abs = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
            let scale = int8_scale(max_abs);
            for v in values.iter_mut() {
                *v = (*v / scale).round().clamp(-127.0, 127.0) * scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::cnn_lstm;
    use crate::tensor::Tensor;
    use crate::workspace::Workspace;

    #[test]
    fn f16_round_trip_of_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 0.25, -3.5, 65504.0] {
            assert_eq!(round_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn f16_rounding_error_is_bounded() {
        // Relative error of normal halves is at most 2^-11.
        for i in 1..1000 {
            let v = i as f32 * 0.001 + 0.1;
            let r = round_f16(v);
            assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "{v} -> {r}");
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(round_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_f16(f32::NAN).is_nan());
        assert_eq!(round_f16(1e10), f32::INFINITY); // overflow
        assert_eq!(round_f16(1e-10), 0.0); // underflow
                                           // Subnormal half range survives approximately.
        let tiny = 3.0e-7f32;
        let r = round_f16(tiny);
        assert!(r > 0.0 && (r - tiny).abs() / tiny < 0.25);
    }

    #[test]
    fn int8_round_trip_error_bound() {
        let w: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.01).collect();
        let (q, scale) = quantize_int8(&w);
        let deq = dequantize_int8(&q, scale);
        let max_abs = w.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        for (orig, rec) in w.iter().zip(&deq) {
            assert!((orig - rec).abs() <= scale / 2.0 + 1e-6);
        }
        assert!(scale <= max_abs / 127.0 + 1e-9);
    }

    #[test]
    fn int8_of_zeros_is_stable() {
        let (q, scale) = quantize_int8(&[0.0; 8]);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn int8_degenerate_inputs_never_poison_dequantize() {
        // Regression: an infinite weight used to yield scale = inf, and
        // dequantizing any zero weight then produced 0 * inf = NaN.
        let (q, scale) = quantize_int8(&[f32::INFINITY, 1.0, 0.0, -2.0]);
        assert!(scale.is_finite() && scale > 0.0);
        assert_eq!(q[0], 127, "infinity saturates to the int8 max");
        assert!(dequantize_int8(&q, scale).iter().all(|v| v.is_finite()));

        // NaN fails every comparison: it neither drives the scale nor
        // survives quantization (a NaN-to-int cast saturates to 0).
        let (q, scale) = quantize_int8(&[f32::NAN, 0.5, -0.5]);
        assert!(scale.is_finite() && scale > 0.0);
        assert_eq!(q[0], 0);
        assert!(dequantize_int8(&q, scale).iter().all(|v| v.is_finite()));

        // Subnormal-only input behaves like zeros (scale 1).
        let (q, scale) = quantize_int8(&[1.0e-40, -1.0e-41]);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));

        // quantize_in_place shares the clamp.
        let mut vals = [f32::INFINITY, 3.0, 0.0];
        quantize_in_place(&mut vals, Precision::Int8);
        assert!(vals.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn int8_scale_is_always_positive_and_finite() {
        for max_abs in [
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::MIN_POSITIVE / 2.0,
            f32::MIN_POSITIVE,
            1.0e-30,
            1.0,
            f32::MAX,
        ] {
            let s = int8_scale(max_abs);
            assert!(s.is_finite() && s > 0.0, "scale {s} for max_abs {max_abs}");
        }
    }

    #[test]
    fn quantize_in_place_matches_slice_quantizers() {
        let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.03).collect();
        let (q, scale) = quantize_int8(&w);
        let expected = dequantize_int8(&q, scale);
        let mut inplace = w.clone();
        quantize_in_place(&mut inplace, Precision::Int8);
        assert_eq!(inplace, expected);
        let mut half = w.clone();
        quantize_in_place(&mut half, Precision::Fp16);
        let expected16: Vec<f32> = w.iter().map(|&v| round_f16(v)).collect();
        assert_eq!(half, expected16);
        let mut full = w.clone();
        quantize_in_place(&mut full, Precision::Fp32);
        assert_eq!(full, w);
    }

    #[test]
    fn lowering_preserves_fp32_and_shrinks_bytes() {
        let mut net = cnn_lstm(30, 5, 2, 1);
        let before = net.parameters_flat();
        let bytes32 = lower_network(&mut net, Precision::Fp32);
        assert_eq!(net.parameters_flat(), before);
        let mut net16 = cnn_lstm(30, 5, 2, 1);
        let bytes16 = lower_network(&mut net16, Precision::Fp16);
        let mut net8 = cnn_lstm(30, 5, 2, 1);
        let bytes8 = lower_network(&mut net8, Precision::Int8);
        assert_eq!(bytes32, 4 * before.len());
        assert_eq!(bytes16, 2 * before.len());
        assert_eq!(bytes8, before.len());
    }

    #[test]
    fn int8_lowering_changes_outputs_slightly_not_wildly() {
        let net = cnn_lstm(30, 5, 2, 3);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150).map(|v| ((v % 23) as f32 - 11.0) / 11.0).collect(),
        );
        let before = net.forward(&x, false, &mut ws).clone();
        let mut lowered = net.clone();
        lower_network(&mut lowered, Precision::Int8);
        let after = lowered.forward(&x, false, &mut ws);
        let diff: f32 = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.0, "int8 must perturb the logits");
        assert!(diff < 1.0, "int8 must not destroy the logits (diff {diff})");
    }

    #[test]
    fn fp16_perturbs_less_than_int8() {
        let net = cnn_lstm(30, 5, 2, 5);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150).map(|v| ((v % 17) as f32 - 8.0) / 8.0).collect(),
        );
        let base = net.forward(&x, false, &mut ws).clone();
        let mut n16 = net.clone();
        lower_network(&mut n16, Precision::Fp16);
        let mut n8 = net.clone();
        lower_network(&mut n8, Precision::Int8);
        let d16: f32 = base
            .as_slice()
            .iter()
            .zip(n16.forward(&x, false, &mut ws).as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let d8: f32 = base
            .as_slice()
            .iter()
            .zip(n8.forward(&x, false, &mut ws).as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d16 < d8, "fp16 ({d16}) should beat int8 ({d8})");
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(Precision::Fp32.bytes_per_weight(), 4);
        assert_eq!(Precision::Fp16.bytes_per_weight(), 2);
        assert_eq!(Precision::Int8.bytes_per_weight(), 1);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}
