//! IIR biquad filters with second-order Butterworth designs.
//!
//! The feature extractor pre-conditions each modality before measuring it:
//! GSR is split into tonic (low-pass) and phasic (high-pass / band-pass)
//! components, BVP is band-passed around the cardiac band, and SKT is
//! low-passed. A direct-form-I biquad with bilinear-transform Butterworth
//! coefficients covers all of these; [`filtfilt`] provides the zero-phase
//! variant used on stored windows.

use crate::DspError;

/// Second-order IIR section, direct form I.
///
/// Coefficients are normalized so that `a0 == 1`:
/// `y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f32,
    b1: f32,
    b2: f32,
    a1: f32,
    a2: f32,
}

impl Biquad {
    /// Builds a biquad from raw normalized coefficients.
    pub fn from_coefficients(b0: f32, b1: f32, b2: f32, a1: f32, a2: f32) -> Self {
        Self { b0, b1, b2, a1, a2 }
    }

    /// Second-order Butterworth low-pass with cutoff `fc` Hz at sampling
    /// rate `fs` Hz (bilinear transform).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] unless `0 < fc < fs / 2`.
    pub fn butterworth_lowpass(fc: f32, fs: f32) -> Result<Self, DspError> {
        check_cutoff(fc, fs)?;
        let k = (std::f32::consts::PI * fc / fs).tan();
        let q = std::f32::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        Ok(Self {
            b0: k * k * norm,
            b1: 2.0 * k * k * norm,
            b2: k * k * norm,
            a1: 2.0 * (k * k - 1.0) * norm,
            a2: (1.0 - k / q + k * k) * norm,
        })
    }

    /// Second-order Butterworth high-pass with cutoff `fc` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] unless `0 < fc < fs / 2`.
    pub fn butterworth_highpass(fc: f32, fs: f32) -> Result<Self, DspError> {
        check_cutoff(fc, fs)?;
        let k = (std::f32::consts::PI * fc / fs).tan();
        let q = std::f32::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        Ok(Self {
            b0: norm,
            b1: -2.0 * norm,
            b2: norm,
            a1: 2.0 * (k * k - 1.0) * norm,
            a2: (1.0 - k / q + k * k) * norm,
        })
    }

    /// Band-pass with center `f0` Hz and quality factor `q` (constant
    /// skirt-gain biquad).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] unless `0 < f0 < fs / 2` and
    /// `q > 0`.
    pub fn bandpass(f0: f32, q: f32, fs: f32) -> Result<Self, DspError> {
        check_cutoff(f0, fs)?;
        if q.is_nan() || q <= 0.0 {
            return Err(DspError::BadParameter {
                name: "q",
                reason: "quality factor must be positive",
            });
        }
        let w0 = 2.0 * std::f32::consts::PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: -2.0 * w0.cos() / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Filters `x` forward in time from zero initial conditions.
    pub fn filter(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::with_capacity(x.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for &xn in x {
            let yn = self.b0 * xn + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = xn;
            y2 = y1;
            y1 = yn;
            y.push(yn);
        }
        y
    }

    /// Magnitude response at frequency `f` Hz for sampling rate `fs`.
    pub fn magnitude_at(&self, f: f32, fs: f32) -> f32 {
        use crate::fft::Complex32;
        let w = 2.0 * std::f32::consts::PI * f / fs;
        let z1 = Complex32::new(w.cos(), -w.sin());
        let z2 = z1 * z1;
        let one = Complex32::new(1.0, 0.0);
        let scale = |c: Complex32, s: f32| Complex32::new(c.re * s, c.im * s);
        let num = one
            + Complex32::new(0.0, 0.0)
            + scale(z1, self.b1 / self.b0.max(f32::MIN_POSITIVE))
            + scale(z2, self.b2 / self.b0.max(f32::MIN_POSITIVE));
        let num = scale(num, self.b0);
        let den = one + scale(z1, self.a1) + scale(z2, self.a2);
        num.abs() / den.abs().max(f32::MIN_POSITIVE)
    }
}

fn check_cutoff(fc: f32, fs: f32) -> Result<(), DspError> {
    if fs.is_nan() || fs <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rate must be positive",
        });
    }
    if fc.is_nan() || fc <= 0.0 || fc >= fs / 2.0 {
        return Err(DspError::BadParameter {
            name: "fc",
            reason: "cutoff must lie strictly between 0 and fs / 2",
        });
    }
    Ok(())
}

/// Zero-phase filtering: applies `biquad` forward, then backward.
///
/// Doubles the effective filter order and cancels the phase delay —
/// appropriate for offline feature extraction where the full window is
/// available.
pub fn filtfilt(biquad: &Biquad, x: &[f32]) -> Vec<f32> {
    let _span = clear_obs::span(clear_obs::Stage::DspFilter);
    let fwd = biquad.filter(x);
    let mut rev: Vec<f32> = fwd.into_iter().rev().collect();
    rev = biquad.filter(&rev);
    rev.reverse();
    rev
}

/// Centered moving average of width `w` (odd widths recommended).
/// Edges use the available shorter windows, so the output length equals the
/// input length.
pub fn moving_average(x: &[f32], w: usize) -> Vec<f32> {
    if x.is_empty() || w <= 1 {
        return x.to_vec();
    }
    let half = w / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            crate::stats::mean(&x[lo..hi])
        })
        .collect()
}

/// Removes the least-squares linear trend from `x`.
pub fn detrend(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let b = crate::stats::slope(x);
    let m = crate::stats::mean(x);
    let t_mean = (n as f32 - 1.0) / 2.0;
    x.iter()
        .enumerate()
        .map(|(i, &v)| v - (m + b * (i as f32 - t_mean)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f32, f0: f32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * f0 * i as f32 / fs).sin())
            .collect()
    }

    fn rms(x: &[f32]) -> f32 {
        crate::stats::rms(x)
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let fs = 64.0;
        let lp = Biquad::butterworth_lowpass(2.0, fs).unwrap();
        let low = lp.filter(&tone(fs, 0.5, 1024));
        let high = lp.filter(&tone(fs, 16.0, 1024));
        assert!(
            rms(&low[256..]) > 0.6,
            "low tone attenuated: {}",
            rms(&low[256..])
        );
        assert!(
            rms(&high[256..]) < 0.05,
            "high tone passed: {}",
            rms(&high[256..])
        );
    }

    #[test]
    fn highpass_blocks_low_passes_high() {
        let fs = 64.0;
        let hp = Biquad::butterworth_highpass(4.0, fs).unwrap();
        let low = hp.filter(&tone(fs, 0.25, 1024));
        let high = hp.filter(&tone(fs, 16.0, 1024));
        assert!(rms(&low[256..]) < 0.05);
        assert!(rms(&high[256..]) > 0.6);
    }

    #[test]
    fn bandpass_selects_center_band() {
        let fs = 64.0;
        let bp = Biquad::bandpass(8.0, 1.0, fs).unwrap();
        let center = bp.filter(&tone(fs, 8.0, 1024));
        let low = bp.filter(&tone(fs, 1.0, 1024));
        let high = bp.filter(&tone(fs, 28.0, 1024));
        assert!(rms(&center[256..]) > 3.0 * rms(&low[256..]));
        assert!(rms(&center[256..]) > 3.0 * rms(&high[256..]));
    }

    #[test]
    fn dc_gain_of_lowpass_is_unity() {
        let lp = Biquad::butterworth_lowpass(2.0, 64.0).unwrap();
        let dc = lp.filter(&vec![1.0f32; 512]);
        assert!((dc[511] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn invalid_cutoffs_rejected() {
        assert!(Biquad::butterworth_lowpass(0.0, 64.0).is_err());
        assert!(Biquad::butterworth_lowpass(32.0, 64.0).is_err());
        assert!(Biquad::butterworth_lowpass(5.0, 0.0).is_err());
        assert!(Biquad::butterworth_highpass(-1.0, 64.0).is_err());
        assert!(Biquad::bandpass(8.0, 0.0, 64.0).is_err());
    }

    #[test]
    fn filtfilt_has_no_phase_shift() {
        let fs = 64.0;
        let lp = Biquad::butterworth_lowpass(6.0, fs).unwrap();
        let x = tone(fs, 1.0, 512);
        let y = filtfilt(&lp, &x);
        // A 1 Hz tone sits deep in the 6 Hz passband, and filtfilt cancels
        // the phase delay, so away from the edges output ≈ input.
        let max_err = x[64..448]
            .iter()
            .zip(&y[64..448])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "filtfilt deviation {max_err}");
    }

    #[test]
    fn filter_is_stable_on_long_input() {
        let fs = 64.0;
        let lp = Biquad::butterworth_lowpass(1.0, fs).unwrap();
        let x: Vec<f32> = (0..20_000)
            .map(|i| ((i * 31 % 97) as f32 - 48.0) / 48.0)
            .collect();
        let y = lp.filter(&x);
        assert!(y.iter().all(|v| v.is_finite() && v.abs() < 100.0));
    }

    #[test]
    fn moving_average_smooths_preserving_mean() {
        let x: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = moving_average(&x, 5);
        assert_eq!(y.len(), x.len());
        assert!(rms(&y[10..90]) < 0.5 * rms(&x));
        assert_eq!(moving_average(&x, 1), x);
        assert!(moving_average(&[], 5).is_empty());
    }

    #[test]
    fn detrend_removes_linear_component() {
        let x: Vec<f32> = (0..200).map(|i| 0.3 * i as f32 + 5.0).collect();
        let y = detrend(&x);
        assert!(rms(&y) < 1e-3);
        assert_eq!(detrend(&[1.0]), vec![0.0]);
    }

    #[test]
    fn magnitude_response_matches_filtered_rms() {
        let fs = 64.0;
        let lp = Biquad::butterworth_lowpass(4.0, fs).unwrap();
        let g_pass = lp.magnitude_at(1.0, fs);
        let g_stop = lp.magnitude_at(20.0, fs);
        assert!(g_pass > 0.9);
        assert!(g_stop < 0.1);
    }
}
