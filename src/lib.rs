//! # clear — cold-start emotion detection for the edge
//!
//! Umbrella crate of the CLEAR reproduction (Sun et al., DATE 2025:
//! *"Solving the Cold-Start Problem for the Edge: Clustering and Adaptive
//! Deep Learning for Emotion Detection"*). It re-exports the public API of
//! every subsystem crate so applications can depend on a single crate:
//!
//! * [`sim`] — synthetic WEMAC-like physiological cohort generator,
//! * [`dsp`] — signal-processing substrate,
//! * [`features`] — the 123-feature 2D feature-map extractor,
//! * [`clustering`] — refined k-means with sub-centroid cold-start assignment,
//! * [`nn`] — from-scratch CNN-LSTM training stack,
//! * [`edge`] — edge platform simulator (Coral TPU, Raspberry Pi + NCS2),
//! * [`core`] — the CLEAR pipeline and its LOSO evaluation harnesses,
//! * [`obs`] — dependency-free metrics registry, stage timing spans and
//!   serving counters (see `DESIGN.md` §10),
//! * [`serve`] — multi-tenant sharded serving engine with cross-user
//!   cluster batching and a bounded personalized-model cache (see
//!   `DESIGN.md` §11),
//! * [`durable`] — crash-consistent persistence: checksummed write-ahead
//!   log, atomic snapshots and verified artifact envelopes behind
//!   `serve`'s `ServeEngine::recover` (see `DESIGN.md` §12),
//! * [`cluster`] — partitioned, replicated serving: consistent-hash
//!   placement, WAL-shipped followers, failover and a deterministic
//!   fault-injected network simulator (see `DESIGN.md` §13),
//! * [`stream`] — streaming ingestion sessions: raw multi-rate signal
//!   chunks in, gated predictions out through the serving engine,
//!   bit-identical to the batch feature path, with edge-budgeted buffers
//!   and typed shed policies (see `DESIGN.md` §15),
//! * [`lifecycle`] — model lifecycle: drift detection over serving
//!   telemetry, background re-clustering into candidate generations, and
//!   canaried rollout with shadow evaluation and automatic rollback (see
//!   `DESIGN.md` §16).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! complete system inventory.

#![forbid(unsafe_code)]

pub use clear_cluster as cluster;
pub use clear_clustering as clustering;
pub use clear_core as core;
pub use clear_dsp as dsp;
pub use clear_durable as durable;
pub use clear_edge as edge;
pub use clear_features as features;
pub use clear_lifecycle as lifecycle;
pub use clear_nn as nn;
pub use clear_obs as obs;
pub use clear_serve as serve;
pub use clear_sim as sim;
pub use clear_stream as stream;
