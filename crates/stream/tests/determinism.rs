//! Determinism: N concurrent sessions pumped at 2/4/8 worker threads
//! produce predictions bit-identical to a single-threaded replay, with an
//! obs registry installed throughout.

mod common;

use clear_obs::{self as obs, Registry};
use clear_serve::{EngineConfig, ServeEngine};
use clear_sim::{chunk_schedule, ChunkSizes, SignalConfig};
use clear_stream::{ChunkIngest, PumpConfig, SessionConfig, StreamPump};
use common::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const USERS: usize = 12;

struct UserStream {
    user: String,
    bvp: Vec<f32>,
    gsr: Vec<f32>,
    skt: Vec<f32>,
    plan: Vec<ChunkSizes>,
}

fn build_streams(f: &Fixture) -> Vec<UserStream> {
    let signal = f.config.cohort.signal;
    (0..USERS)
        .map(|i| {
            let recs = recordings_of(f, i, 2, 5);
            let (bvp, gsr, skt) = concat_stream(&recs);
            let total = SignalConfig {
                stimulus_secs: bvp.len() as f32 / signal.fs_bvp,
                ..signal
            };
            UserStream {
                user: format!("user-{i:02}"),
                plan: chunk_schedule(&total, 0.25, 2.0, 1000 + i as u64),
                bvp,
                gsr,
                skt,
            }
        })
        .collect()
}

/// One full run at `threads` workers: fresh engine + pump, all users
/// onboarded, every tick's chunks ingested via `ingest_many`, drains
/// every other tick. Returns per-user prediction keys, per-user session
/// stats, and the stream counter totals.
#[allow(clippy::type_complexity)]
fn run(
    f: &Fixture,
    streams: &[UserStream],
    threads: usize,
) -> (
    BTreeMap<String, Vec<(String, u32, u32, String, String)>>,
    BTreeMap<String, (u64, u64)>,
    BTreeMap<&'static str, u64>,
) {
    let registry = Arc::new(Registry::new());
    obs::install(Arc::clone(&registry));

    let engine = Arc::new(ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig::default(),
    ));
    let pump = StreamPump::new(
        engine,
        PumpConfig::new(SessionConfig::new(
            f.config.cohort.signal,
            f.config.window,
            f.bundle.windows,
        )),
    );
    for (i, s) in streams.iter().enumerate() {
        pump.engine()
            .onboard(&s.user, &maps_of(f, i, 0, 2))
            .expect("onboard");
        pump.open(&s.user).expect("open");
    }

    let mut offsets = vec![(0usize, 0usize, 0usize); streams.len()];
    let max_ticks = streams.iter().map(|s| s.plan.len()).max().unwrap();
    let mut predictions: BTreeMap<String, Vec<_>> = BTreeMap::new();
    for tick in 0..max_ticks {
        let mut batch = Vec::new();
        for (i, s) in streams.iter().enumerate() {
            if tick >= s.plan.len() {
                continue;
            }
            let c = s.plan[tick];
            let (ob, og, os) = offsets[i];
            batch.push(ChunkIngest {
                user: &s.user,
                bvp: &s.bvp[ob..ob + c.bvp],
                gsr: &s.gsr[og..og + c.gsr],
                skt: &s.skt[os..os + c.skt],
            });
            offsets[i] = (ob + c.bvp, og + c.gsr, os + c.skt);
        }
        for result in pump.ingest_many(&batch, threads) {
            result.expect("ingest failed");
        }
        if tick % 2 == 1 {
            for drain in pump.drain() {
                let preds = drain.result.expect("serving error");
                predictions
                    .entry(drain.user)
                    .or_default()
                    .extend(preds.iter().map(pred_key));
            }
        }
    }
    for drain in pump.drain() {
        let preds = drain.result.expect("serving error");
        predictions
            .entry(drain.user)
            .or_default()
            .extend(preds.iter().map(pred_key));
    }

    let stats: BTreeMap<String, (u64, u64)> = streams
        .iter()
        .map(|s| {
            let st = pump.stats(&s.user).expect("session stats");
            (s.user.clone(), (st.windows_completed, st.maps_completed))
        })
        .collect();

    let snap = registry.snapshot();
    let counters: BTreeMap<&'static str, u64> = [
        obs::counters::STREAM_CHUNKS,
        obs::counters::STREAM_SAMPLES,
        obs::counters::STREAM_WINDOWS,
        obs::counters::STREAM_MAPS,
        obs::counters::STREAM_SESSIONS_OPENED,
    ]
    .iter()
    .map(|&name| (name, snap.counters.get(name).copied().unwrap_or(0)))
    .collect();
    obs::uninstall();
    (predictions, stats, counters)
}

#[test]
fn parallel_pumping_matches_single_threaded_replay_bit_for_bit() {
    let f = fixture();
    let streams = build_streams(f);

    let (base_preds, base_stats, base_counters) = run(f, &streams, 1);
    // Sanity on the baseline itself: every user produced maps and the
    // instrumentation saw them.
    assert_eq!(base_preds.len(), USERS);
    for (user, preds) in &base_preds {
        assert!(
            preds.len() >= f.bundle.windows,
            "{user} served only {} windows",
            preds.len()
        );
    }
    assert_eq!(base_counters[obs::counters::STREAM_SESSIONS_OPENED], USERS as u64);
    assert!(base_counters[obs::counters::STREAM_MAPS] >= USERS as u64);

    for threads in [2, 4, 8] {
        let (preds, stats, counters) = run(f, &streams, threads);
        assert_eq!(
            preds, base_preds,
            "{threads}-thread predictions diverged from single-threaded replay"
        );
        assert_eq!(
            stats, base_stats,
            "{threads}-thread session stats diverged"
        );
        assert_eq!(
            counters, base_counters,
            "{threads}-thread stream counters diverged"
        );
    }
}
