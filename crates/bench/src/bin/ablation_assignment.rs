//! Ablation X2: does the hierarchical sub-centroid refinement of Cluster
//! Assignment (paper §III-B1) help, and how many internal centroids are
//! right?
//!
//! For each left-out volunteer we cluster the rest (the full Global
//! Clustering of the pipeline), then assign the volunteer from their CA
//! budget (10 % unlabeled data) under several rules: the flat top-level
//! centroid (sub_k = 1) and the paper's summed distance to `sub_k`
//! internal sub-centroids. Assignments are scored against the volunteer's
//! ground-truth archetype (majority archetype of the chosen cluster).
//! Model training is irrelevant here, so none happens — the sweep runs in
//! seconds.

use clear_bench::config_from_args;
use clear_clustering::hierarchy::{ClusterHierarchy, HierarchyConfig};
use clear_clustering::refine::refined_fit;
use clear_core::dataset::PreparedCohort;
use clear_sim::SubjectId;

fn main() {
    let config = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let sub_ks = [1usize, 2, 3, 4];
    let mut hits = vec![0usize; sub_ks.len()];

    for (i, &vx) in subjects.iter().enumerate() {
        let initial: Vec<SubjectId> = subjects.iter().copied().filter(|&s| s != vx).collect();
        let normalizer = data.fit_normalizer(&initial);
        let vectors: Vec<Vec<f32>> = initial
            .iter()
            .map(|&s| data.user_vector(&data.indices_of(s), &normalizer))
            .collect();
        let mut refine = config.refine;
        refine.kmeans.k = config.k;
        let clustering = refined_fit(&vectors, &refine);

        // Majority archetype per cluster.
        let mut majority = vec![0usize; config.k];
        for (c, m) in majority.iter_mut().enumerate() {
            let mut counts = [0usize; 4];
            for (s, &a) in initial.iter().zip(clustering.assignments()) {
                if a == c {
                    counts[data.archetype_of(*s)] += 1;
                }
            }
            *m = counts.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0;
        }

        let indices = data.indices_of(vx);
        let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
        let v = data.user_vector(&indices[..ca_n], &normalizer);
        let truth = data.archetype_of(vx);

        for (j, &sub_k) in sub_ks.iter().enumerate() {
            let assigned = if sub_k == 1 {
                clustering.predict(&v)
            } else {
                let h = ClusterHierarchy::build(
                    &clustering,
                    &vectors,
                    &HierarchyConfig {
                        sub_k,
                        seed: config.hierarchy.seed,
                    },
                );
                h.assign(&v)
            };
            if majority[assigned] == truth {
                hits[j] += 1;
            }
        }
        eprint!("\rfold {}/{}     ", i + 1, subjects.len());
    }
    eprintln!();
    let n = subjects.len() as f32;
    println!(
        "ABLATION — cold-start assignment mechanism ({} folds, CA budget {:.0} %)\n",
        subjects.len(),
        config.ca_fraction * 100.0
    );
    println!("{:<46} {:>10}", "assignment rule", "archetype-correct");
    for (j, &sub_k) in sub_ks.iter().enumerate() {
        let name = if sub_k == 1 {
            "single top-level centroid (flat)".to_string()
        } else {
            format!("summed distance to {sub_k} internal sub-centroids")
        };
        println!("{name:<46} {:>9.1}%", hits[j] as f32 / n * 100.0);
    }
}
