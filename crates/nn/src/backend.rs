//! Pluggable inference kernels: the [`InferenceBackend`] trait and its
//! three implementations.
//!
//! The forward path of a [`Network`](crate::network::Network) dispatches
//! its compute-bearing layers (convolution, dense, LSTM, ReLU) through a
//! backend instead of baking one loop nest into each layer:
//!
//! * [`ScalarRef`] — the original textbook loops, kept verbatim as the
//!   bit-exact oracle. Training and the backward pass always run here.
//! * [`BlockedF32`] — autovectorization-friendly f32 kernels that are
//!   **bit-identical** to [`ScalarRef`]: they vectorize across
//!   *independent output elements* (im2col + row-axpy convolution,
//!   transposed-weight column-major LSTM projections) and never
//!   reassociate a single accumulation chain, so every output element
//!   sees the exact same sequence of IEEE-754 additions as the scalar
//!   kernel.
//! * [`Int8Backend`] — a real quantized execution path: per-tensor int8
//!   weights with scales prepared alongside the f32 weights, dynamic
//!   per-tensor activation quantization at kernel boundaries, and i32
//!   accumulation. Output differs from f32 by a bounded quantization
//!   error (pinned by the golden divergence tests).
//!
//! Weight-derived scratch (transposed copies, quantized tensors) lives in
//! the caller's [`Workspace`](crate::workspace::Workspace), one
//! [`KernelScratch`] per layer, and is invalidated by the network's
//! weight stamp: any `&mut` access to parameters bumps the stamp, so a
//! workspace can never serve stale prepared weights.

use crate::layers::{Conv2d, Dense, Lstm};
use crate::quantize::int8_scale;
use crate::tensor::Tensor;
use crate::workspace::LstmTape;
use serde::{Deserialize, Serialize};

/// Swappable forward-pass kernels for the compute-bearing layers.
///
/// Implementations receive the layer (weights), the input activation and
/// the output buffer, plus a per-layer [`KernelScratch`] owned by the
/// caller's workspace for anything they want to keep across calls
/// (prepared weight forms, packing buffers). Data-movement layers
/// (pooling, sequence reshape, dropout) are backend-independent and stay
/// on their single implementation.
pub trait InferenceBackend: Sync {
    /// Short stable name, used in benchmarks and reports.
    fn name(&self) -> &'static str;

    /// Valid 2D convolution, input `[C, H, W]`.
    fn conv2d(&self, layer: &Conv2d, x: &Tensor, out: &mut Tensor, scratch: &mut KernelScratch);

    /// Dense layer `[D] → [O]` (a single-row GEMM).
    fn gemm(&self, layer: &Dense, x: &Tensor, out: &mut Tensor, scratch: &mut KernelScratch);

    /// Full LSTM pass over `[T, D]`, stepping the caller's tape.
    fn lstm(
        &self,
        layer: &Lstm,
        x: &Tensor,
        out: &mut Tensor,
        tape: &mut LstmTape,
        scratch: &mut KernelScratch,
    );

    /// Elementwise ReLU. The default is shared by all backends: an
    /// elementwise `max` has no accumulation order to preserve and
    /// autovectorizes as-is.
    fn relu(&self, x: &Tensor, out: &mut Tensor) {
        out.resize(x.shape());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = v.max(0.0);
        }
    }
}

/// Serializable backend selector, for configs that must name a backend
/// without holding a trait object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// [`ScalarRef`]: the bit-exact oracle loops.
    Scalar,
    /// [`BlockedF32`]: vectorized f32, bit-identical to `Scalar`.
    Blocked,
    /// [`Int8Backend`]: quantized execution with bounded divergence.
    Int8,
}

impl BackendKind {
    /// All backends, oracle first.
    pub fn all() -> [BackendKind; 3] {
        [BackendKind::Scalar, BackendKind::Blocked, BackendKind::Int8]
    }

    /// The shared instance of this backend.
    pub fn instance(self) -> &'static dyn InferenceBackend {
        match self {
            BackendKind::Scalar => &ScalarRef,
            BackendKind::Blocked => &BlockedF32,
            BackendKind::Int8 => &Int8Backend,
        }
    }

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        self.instance().name()
    }
}

/// Per-layer kernel scratch, owned by the workspace.
///
/// Holds two kinds of state: *prepared* weight-derived data (transposed
/// LSTM weights for [`BlockedF32`], quantized tensors and scales for
/// [`Int8Backend`]) guarded by the owning network's weight stamp, and
/// plain per-call packing buffers that are resized in place. Both exist
/// so steady-state inference neither re-derives weight forms nor
/// allocates.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Weight stamp the prepared blocks below were derived from.
    stamp: u64,
    /// Prepared (BlockedF32): transposed `[D, 4H]` LSTM input weights.
    wx_t: Vec<f32>,
    /// Prepared (BlockedF32): transposed `[H, 4H]` LSTM recurrent weights.
    wh_t: Vec<f32>,
    blocked_ready: bool,
    /// Prepared (Int8): quantized primary weight tensor (conv/dense `w`,
    /// LSTM `wx`) and its per-tensor scale.
    qw: Vec<i8>,
    qw_scale: f32,
    /// Prepared (Int8): quantized secondary weight tensor (LSTM `wh`).
    qw2: Vec<i8>,
    qw2_scale: f32,
    int8_ready: bool,
    /// Per-call: im2col patch matrix (BlockedF32 convolution).
    cols: Vec<f32>,
    /// Per-call: LSTM input-projection accumulator, `T × 4H`.
    xacc: Vec<f32>,
    /// Per-call: quantized input activations.
    qx: Vec<i8>,
    /// Per-call: quantized hidden state (Int8 LSTM).
    qh: Vec<i8>,
}

impl KernelScratch {
    /// Invalidates prepared weight forms when the owning network's weight
    /// stamp moved since they were derived. Called by the forward driver
    /// before every layer dispatch; O(1) when nothing changed.
    pub(crate) fn ensure_stamp(&mut self, stamp: u64) {
        if self.stamp != stamp {
            self.stamp = stamp;
            self.blocked_ready = false;
            self.int8_ready = false;
        }
    }
}

/// Quantizes an activation slice into `out` with a dynamic per-tensor
/// scale, returning the scale.
fn quantize_activations(values: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
    let scale = int8_scale(max_abs);
    out.resize(values.len(), 0);
    for (q, &v) in out.iter_mut().zip(values) {
        *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

// ------------------------------------------------------------- ScalarRef --

/// The reference backend: the original scalar loop nests, unchanged.
///
/// Every other backend is specified against this one — [`BlockedF32`]
/// bit-identically, [`Int8Backend`] within pinned divergence bounds. The
/// trainer and the backward pass use these kernels unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarRef;

impl InferenceBackend for ScalarRef {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn conv2d(&self, layer: &Conv2d, x: &Tensor, out: &mut Tensor, _scratch: &mut KernelScratch) {
        layer.forward_scalar(x, out);
    }

    fn gemm(&self, layer: &Dense, x: &Tensor, out: &mut Tensor, _scratch: &mut KernelScratch) {
        layer.forward_scalar(x, out);
    }

    fn lstm(
        &self,
        layer: &Lstm,
        x: &Tensor,
        out: &mut Tensor,
        tape: &mut LstmTape,
        _scratch: &mut KernelScratch,
    ) {
        layer.forward_scalar(x, out, tape);
    }
}

// ------------------------------------------------------------ BlockedF32 --

/// Vectorized f32 kernels, bit-identical to [`ScalarRef`].
///
/// The bit-exactness strategy: parallelism comes only from *independent
/// output elements*, never from splitting one accumulation chain.
///
/// * Convolution packs the input into an im2col matrix whose row index
///   `r = (i·kh + ky)·kw + kx` matches the scalar kernel's loop nest, then
///   runs the GEMM with `r` outermost: each output element starts at its
///   bias and receives its terms in ascending `r` — the scalar order —
///   while the inner loop is a contiguous `len = oh·ow` axpy.
/// * The LSTM keeps transposed weight copies (`[D, 4H]`, `[H, 4H]`) in
///   scratch and accumulates with `k` outermost: every gate row receives
///   `Wx·x` terms in ascending `k` from 0, then `Wh·h` terms in ascending
///   `k`, then the bias — exactly the scalar sequence — while the inner
///   loop is a contiguous `4H`-wide axpy. The input projection for all
///   timesteps is hoisted out of the recurrence (it never depends on `h`).
/// * The dense head stays on the scalar kernel: a single dot product
///   cannot be vectorized without reassociating its reduction, and the
///   head is 2 outputs wide — there is nothing to win.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedF32;

impl InferenceBackend for BlockedF32 {
    fn name(&self) -> &'static str {
        "blocked_f32"
    }

    fn conv2d(&self, layer: &Conv2d, x: &Tensor, out: &mut Tensor, scratch: &mut KernelScratch) {
        let (in_ch, out_ch, kh, kw) = layer.dims();
        assert_eq!(x.rank(), 3, "Conv2d expects [C, H, W]");
        assert_eq!(x.shape()[0], in_ch, "Conv2d channel mismatch");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert!(
            h >= kh && w >= kw,
            "input {h}x{w} smaller than kernel {kh}x{kw}"
        );
        let (oh, ow) = (h - kh + 1, w - kw + 1);
        out.resize(&[out_ch, oh, ow]);
        let r_len = in_ch * kh * kw;
        let j_len = oh * ow;
        let xs = x.as_slice();

        // Pack: cols[r][j] = x[i][y + ky][xcol + kx] for r = (i·kh+ky)·kw+kx,
        // j = y·ow + xcol. Each (r, y) strip is one contiguous copy.
        let cols = &mut scratch.cols;
        cols.resize(r_len * j_len, 0.0);
        let mut r = 0usize;
        for i in 0..in_ch {
            for ky in 0..kh {
                for kx in 0..kw {
                    let dst = &mut cols[r * j_len..(r + 1) * j_len];
                    for y in 0..oh {
                        let src = (i * h + y + ky) * w + kx;
                        dst[y * ow..(y + 1) * ow].copy_from_slice(&xs[src..src + ow]);
                    }
                    r += 1;
                }
            }
        }

        // GEMM with r outermost: per output element the additions happen
        // in ascending r starting from the bias — the scalar order.
        let od = out.as_mut_slice();
        for o in 0..out_ch {
            let row = &mut od[o * j_len..(o + 1) * j_len];
            let bias = layer.b[o];
            row.iter_mut().for_each(|v| *v = bias);
            for (r, &wv) in layer.w[o * r_len..(o + 1) * r_len].iter().enumerate() {
                let col = &cols[r * j_len..(r + 1) * j_len];
                for (ov, &cv) in row.iter_mut().zip(col) {
                    *ov += wv * cv;
                }
            }
        }
    }

    fn gemm(&self, layer: &Dense, x: &Tensor, out: &mut Tensor, _scratch: &mut KernelScratch) {
        // See the type docs: the head's reduction cannot be vectorized
        // bit-exactly and is negligible — share the scalar kernel.
        layer.forward_scalar(x, out);
    }

    fn lstm(
        &self,
        layer: &Lstm,
        x: &Tensor,
        out: &mut Tensor,
        tape: &mut LstmTape,
        scratch: &mut KernelScratch,
    ) {
        let (d, hdim) = layer.dims();
        assert_eq!(x.rank(), 2, "LSTM expects [T, D]");
        assert_eq!(x.shape()[1], d, "LSTM input width mismatch");
        let t_len = x.shape()[0];
        let rows = 4 * hdim;

        if !scratch.blocked_ready {
            scratch.wx_t.resize(d * rows, 0.0);
            for row in 0..rows {
                for k in 0..d {
                    scratch.wx_t[k * rows + row] = layer.wx[row * d + k];
                }
            }
            scratch.wh_t.resize(hdim * rows, 0.0);
            for row in 0..rows {
                for k in 0..hdim {
                    scratch.wh_t[k * rows + row] = layer.wh[row * hdim + k];
                }
            }
            scratch.blocked_ready = true;
        }

        tape.begin(t_len, hdim);
        let xs = x.as_slice();

        // Input projection for every timestep, hoisted out of the
        // recurrence: xacc[t][row] accumulates Wx·x terms in ascending k
        // from 0.0 — the scalar kernel's exact order and starting point.
        let xacc = &mut scratch.xacc;
        xacc.resize(t_len * rows, 0.0);
        xacc.iter_mut().for_each(|v| *v = 0.0);
        for t in 0..t_len {
            let xt = &xs[t * d..(t + 1) * d];
            let acc = &mut xacc[t * rows..(t + 1) * rows];
            for (k, &xv) in xt.iter().enumerate() {
                let wcol = &scratch.wx_t[k * rows..(k + 1) * rows];
                for (av, &wv) in acc.iter_mut().zip(wcol) {
                    *av += wv * xv;
                }
            }
        }

        for t in 0..t_len {
            {
                let (hs_past, _) = tape.hs.split_at(t * hdim);
                let h_prev: &[f32] = if t == 0 {
                    &tape.zero
                } else {
                    &hs_past[(t - 1) * hdim..]
                };
                let gates_t = &mut tape.gates[t * rows..(t + 1) * rows];
                gates_t.copy_from_slice(&xacc[t * rows..(t + 1) * rows]);
                // Recurrent projection, k outermost: Wh·h terms land in
                // ascending k — the scalar order — via contiguous axpys.
                for (k, &hv) in h_prev.iter().enumerate() {
                    let wcol = &scratch.wh_t[k * rows..(k + 1) * rows];
                    for (gv, &wv) in gates_t.iter_mut().zip(wcol) {
                        *gv += wv * hv;
                    }
                }
                for (row, gv) in gates_t.iter_mut().enumerate() {
                    *gv = layer.b[row] + *gv;
                }
            }
            layer.step_from_preacts(t, tape);
        }
        out.resize(&[hdim]);
        out.as_mut_slice()
            .copy_from_slice(&tape.hs[(t_len - 1) * hdim..t_len * hdim]);
    }
}

// ----------------------------------------------------------- Int8Backend --

/// Real int8 quantized execution.
///
/// Weights are quantized per tensor (symmetric, 127-step) into scratch
/// the first time a layer runs under a given weight stamp; the scales
/// live alongside the f32 weights, which stay untouched (biases and the
/// LSTM cell state remain f32). Activations are quantized dynamically per
/// tensor at each kernel boundary. Accumulation is i32 — at most
/// `127·127·k` per output with `k ≤ a few hundred` in this architecture,
/// orders of magnitude below overflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct Int8Backend;

impl Int8Backend {
    fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&av, &bv) in a.iter().zip(b) {
            acc += i32::from(av) * i32::from(bv);
        }
        acc
    }
}

impl InferenceBackend for Int8Backend {
    fn name(&self) -> &'static str {
        "int8"
    }

    fn conv2d(&self, layer: &Conv2d, x: &Tensor, out: &mut Tensor, scratch: &mut KernelScratch) {
        let (in_ch, out_ch, kh, kw) = layer.dims();
        assert_eq!(x.rank(), 3, "Conv2d expects [C, H, W]");
        assert_eq!(x.shape()[0], in_ch, "Conv2d channel mismatch");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert!(
            h >= kh && w >= kw,
            "input {h}x{w} smaller than kernel {kh}x{kw}"
        );
        let (oh, ow) = (h - kh + 1, w - kw + 1);
        out.resize(&[out_ch, oh, ow]);

        if !scratch.int8_ready {
            let (q, scale) = crate::quantize::quantize_int8(&layer.w);
            scratch.qw = q;
            scratch.qw_scale = scale;
            scratch.int8_ready = true;
        }
        let xscale = quantize_activations(x.as_slice(), &mut scratch.qx);
        let rescale = scratch.qw_scale * xscale;

        let od = out.as_mut_slice();
        for o in 0..out_ch {
            for y in 0..oh {
                for xcol in 0..ow {
                    let mut acc = 0i32;
                    for i in 0..in_ch {
                        for ky in 0..kh {
                            let wrow = ((o * in_ch + i) * kh + ky) * kw;
                            let xrow = (i * h + y + ky) * w + xcol;
                            acc += Self::dot_i8(
                                &scratch.qw[wrow..wrow + kw],
                                &scratch.qx[xrow..xrow + kw],
                            );
                        }
                    }
                    od[(o * oh + y) * ow + xcol] = layer.b[o] + acc as f32 * rescale;
                }
            }
        }
    }

    fn gemm(&self, layer: &Dense, x: &Tensor, out: &mut Tensor, scratch: &mut KernelScratch) {
        let (d, o_len) = layer.dims();
        assert_eq!(x.rank(), 1, "Dense expects [D]");
        assert_eq!(x.numel(), d, "Dense input width mismatch");
        out.resize(&[o_len]);

        if !scratch.int8_ready {
            let (q, scale) = crate::quantize::quantize_int8(&layer.w);
            scratch.qw = q;
            scratch.qw_scale = scale;
            scratch.int8_ready = true;
        }
        let xscale = quantize_activations(x.as_slice(), &mut scratch.qx);
        let rescale = scratch.qw_scale * xscale;

        for (o, ov) in out.as_mut_slice().iter_mut().enumerate() {
            let acc = Self::dot_i8(&scratch.qw[o * d..(o + 1) * d], &scratch.qx);
            *ov = layer.b[o] + acc as f32 * rescale;
        }
    }

    fn lstm(
        &self,
        layer: &Lstm,
        x: &Tensor,
        out: &mut Tensor,
        tape: &mut LstmTape,
        scratch: &mut KernelScratch,
    ) {
        let (d, hdim) = layer.dims();
        assert_eq!(x.rank(), 2, "LSTM expects [T, D]");
        assert_eq!(x.shape()[1], d, "LSTM input width mismatch");
        let t_len = x.shape()[0];
        let rows = 4 * hdim;

        if !scratch.int8_ready {
            let (qwx, wxs) = crate::quantize::quantize_int8(&layer.wx);
            let (qwh, whs) = crate::quantize::quantize_int8(&layer.wh);
            scratch.qw = qwx;
            scratch.qw_scale = wxs;
            scratch.qw2 = qwh;
            scratch.qw2_scale = whs;
            scratch.int8_ready = true;
        }

        tape.begin(t_len, hdim);
        let xs = x.as_slice();
        for t in 0..t_len {
            {
                let xscale = quantize_activations(&xs[t * d..(t + 1) * d], &mut scratch.qx);
                let (hs_past, _) = tape.hs.split_at(t * hdim);
                let h_prev: &[f32] = if t == 0 {
                    &tape.zero
                } else {
                    &hs_past[(t - 1) * hdim..]
                };
                let hscale = quantize_activations(h_prev, &mut scratch.qh);
                let rescale_x = scratch.qw_scale * xscale;
                let rescale_h = scratch.qw2_scale * hscale;
                let gates_t = &mut tape.gates[t * rows..(t + 1) * rows];
                for (row, gv) in gates_t.iter_mut().enumerate() {
                    let accx = Self::dot_i8(&scratch.qw[row * d..(row + 1) * d], &scratch.qx);
                    let acch =
                        Self::dot_i8(&scratch.qw2[row * hdim..(row + 1) * hdim], &scratch.qh);
                    *gv = layer.b[row] + accx as f32 * rescale_x + acch as f32 * rescale_h;
                }
            }
            // Gate activations, cell and hidden updates stay f32.
            layer.step_from_preacts(t, tape);
        }
        out.resize(&[hdim]);
        out.as_mut_slice()
            .copy_from_slice(&tape.hs[(t_len - 1) * hdim..t_len * hdim]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{cnn_lstm, cnn_lstm_compact};
    use crate::workspace::Workspace;

    fn wavy_input(shape: &[usize], seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|v| ((v as f32) * 0.37 + seed as f32).sin())
                .collect(),
        )
    }

    #[test]
    fn backend_kinds_resolve_and_name() {
        assert_eq!(BackendKind::all().len(), 3);
        assert_eq!(BackendKind::Scalar.name(), "scalar");
        assert_eq!(BackendKind::Blocked.name(), "blocked_f32");
        assert_eq!(BackendKind::Int8.name(), "int8");
    }

    #[test]
    fn blocked_is_bit_identical_to_scalar() {
        let net = cnn_lstm_compact(60, 9, 2, 7);
        let x = wavy_input(&[1, 60, 9], 3);
        let mut ws_a = Workspace::new();
        let mut ws_b = Workspace::new();
        let a = net.forward(&x, false, &mut ws_a).clone();
        let b = net.forward_with(&x, false, &mut ws_b, &BlockedF32).clone();
        assert_eq!(a.as_slice(), b.as_slice(), "blocked f32 diverged");
        let bits_a: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "bit patterns differ");
    }

    #[test]
    fn int8_diverges_boundedly() {
        let net = cnn_lstm(30, 5, 2, 11);
        let x = wavy_input(&[1, 30, 5], 5);
        let mut ws = Workspace::new();
        let f32_out = net.forward(&x, false, &mut ws).clone();
        let int8_out = net.forward_with(&x, false, &mut ws, &Int8Backend).clone();
        let max_div = f32_out
            .as_slice()
            .iter()
            .zip(int8_out.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_div > 0.0, "int8 must actually quantize");
        assert!(max_div < 0.5, "int8 divergence {max_div} out of bounds");
    }

    #[test]
    fn backend_alternation_on_one_workspace_is_stable() {
        // Swapping backends call-to-call on one workspace must not leak
        // state between them: each backend reproduces its own output.
        let net = cnn_lstm_compact(40, 9, 2, 3);
        let x = wavy_input(&[1, 40, 9], 9);
        let mut ws = Workspace::new();
        let scalar = net.forward(&x, false, &mut ws).clone();
        let blocked = net.forward_with(&x, false, &mut ws, &BlockedF32).clone();
        let int8 = net.forward_with(&x, false, &mut ws, &Int8Backend).clone();
        let scalar2 = net.forward(&x, false, &mut ws).clone();
        let int8_2 = net.forward_with(&x, false, &mut ws, &Int8Backend).clone();
        assert_eq!(scalar.as_slice(), scalar2.as_slice());
        assert_eq!(scalar.as_slice(), blocked.as_slice());
        assert_eq!(int8.as_slice(), int8_2.as_slice());
    }

    #[test]
    fn weight_mutation_invalidates_prepared_scratch() {
        // The workspace keeps quantized/transposed weights; mutating the
        // network must re-derive them, not serve stale forms.
        let mut net = cnn_lstm_compact(40, 9, 2, 5);
        let x = wavy_input(&[1, 40, 9], 1);
        let mut ws = Workspace::new();
        let before_blocked = net.forward_with(&x, false, &mut ws, &BlockedF32).clone();
        let before_int8 = net.forward_with(&x, false, &mut ws, &Int8Backend).clone();
        let mut flat = net.parameters_flat();
        for v in flat.iter_mut() {
            *v *= 1.5;
        }
        net.set_parameters_flat(&flat);
        let after_scalar = net.forward(&x, false, &mut ws).clone();
        let after_blocked = net.forward_with(&x, false, &mut ws, &BlockedF32).clone();
        let after_int8 = net.forward_with(&x, false, &mut ws, &Int8Backend).clone();
        assert_ne!(before_blocked.as_slice(), after_blocked.as_slice());
        assert_ne!(before_int8.as_slice(), after_int8.as_slice());
        assert_eq!(after_scalar.as_slice(), after_blocked.as_slice());
    }

    #[test]
    fn quantize_activations_handles_degenerate_inputs() {
        let mut buf = Vec::new();
        let s = quantize_activations(&[0.0; 16], &mut buf);
        assert_eq!(s, 1.0);
        assert!(buf.iter().all(|&q| q == 0));
        let s = quantize_activations(&[f32::INFINITY, 1.0, -2.0], &mut buf);
        assert!(s.is_finite() && s > 0.0);
        assert_eq!(buf[0], 127, "infinity saturates");
    }
}
