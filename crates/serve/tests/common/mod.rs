//! Shared fixture for the serving-engine suites: one cloud training run
//! (quick profile) whose bundle every test reuses, plus map/label
//! helpers addressing the cohort by subject rank.

#![allow(dead_code)] // each test binary uses a different helper subset

use clear_core::config::ClearConfig;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, ClearBundle, PersonalizeOutcome, ServingPolicy};
use clear_features::{FeatureMap, FEATURE_COUNT};
use clear_sim::Emotion;
use std::sync::OnceLock;

pub struct Fixture {
    pub config: ClearConfig,
    pub data: PreparedCohort,
    pub bundle: ClearBundle,
}

/// The shared cloud artifact: trained once per test binary on all but
/// the last subject of the quick cohort.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = ClearConfig::quick(17);
        // One-epoch fine-tuning keeps the many personalization calls in
        // these suites cheap; the tests compare behavior, not accuracy.
        config.finetune.epochs = 1;
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (_, initial) = subjects.split_last().expect("cohort is non-empty");
        let dep = deploy(&data, initial, &config);
        let bundle = dep.bundle().clone();
        Fixture {
            config,
            data,
            bundle,
        }
    })
}

/// A policy that never abstains on confidence, so clean maps receive
/// deterministic labels.
pub fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

/// Feature maps `[lo, hi)` of the subject at `rank` (modulo cohort
/// size), clamped to the subject's map count.
pub fn maps_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| f.data.maps()[i].clone())
        .collect()
}

/// Labeled maps `[lo, hi)` of the subject at `rank`.
pub fn labeled_of(f: &Fixture, rank: usize, lo: usize, hi: usize) -> Vec<(FeatureMap, Emotion)> {
    let subjects = f.data.subject_ids();
    let subject = subjects[rank % subjects.len()];
    let indices = f.data.indices_of(subject);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| {
            let (map, emotion) = f.data.map_and_label(i);
            (map.clone(), emotion)
        })
        .collect()
}

/// An all-NaN map of the bundle's shape: every modality block is dead,
/// so serving it exercises the quarantine path.
pub fn nan_map(f: &Fixture) -> FeatureMap {
    FeatureMap::from_columns(&vec![vec![f32::NAN; FEATURE_COUNT]; f.bundle.windows])
}

/// NaN-safe comparable form of a [`PersonalizeOutcome`]. The unvalidated
/// adoption path (labeled budgets below the validation threshold) reports
/// `baseline_accuracy = NaN`, which the derived `PartialEq` can never
/// match against an identical outcome; bit patterns compare exactly, NaN
/// included.
pub fn outcome_key(o: &PersonalizeOutcome) -> (bool, bool, u32, u32) {
    (
        o.adopted,
        o.validated,
        o.baseline_accuracy.to_bits(),
        o.personalized_accuracy.to_bits(),
    )
}
