//! Property-based tests of the NN stack's algebraic invariants.

use clear_nn::loss::softmax;
use clear_nn::network::cnn_lstm_compact;
use clear_nn::quantize::{dequantize_int8, f16_to_f32, f32_to_f16, quantize_int8, round_f16};
use clear_nn::tensor::Tensor;
use clear_nn::workspace::Workspace;
use proptest::prelude::*;

proptest! {
    /// Softmax is a probability distribution for any finite logits.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Softmax is invariant under a constant shift of the logits.
    #[test]
    fn softmax_shift_invariant(
        logits in prop::collection::vec(-20.0f32..20.0, 2..8),
        shift in -100.0f32..100.0,
    ) {
        let a = softmax(&logits);
        let shifted: Vec<f32> = logits.iter().map(|v| v + shift).collect();
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// int8 quantization error never exceeds half a quantization step.
    #[test]
    fn int8_error_bound(weights in prop::collection::vec(-10.0f32..10.0, 1..256)) {
        let (q, scale) = quantize_int8(&weights);
        let deq = dequantize_int8(&q, scale);
        for (orig, rec) in weights.iter().zip(&deq) {
            prop_assert!((orig - rec).abs() <= scale / 2.0 + 1e-5);
        }
    }

    /// fp16 rounding is idempotent and monotone w.r.t. sign.
    #[test]
    fn f16_idempotent(v in -60000.0f32..60000.0) {
        let once = round_f16(v);
        let twice = round_f16(once);
        prop_assert_eq!(once, twice);
        prop_assert_eq!(once.signum(), v.signum());
    }

    /// fp16 relative error of normal-range values is bounded by 2^-11.
    #[test]
    fn f16_relative_error(v in 1e-3f32..6e4) {
        let r = round_f16(v);
        prop_assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7);
    }

    /// `f32_to_f16` is total and preserves sign and NaN-ness for every
    /// possible f32 bit pattern — infinities, NaNs with arbitrary
    /// payloads, and subnormals included — and rounding is idempotent
    /// even through the specials.
    #[test]
    fn f16_conversion_total_over_all_bit_patterns(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        let h = f32_to_f16(v);
        let r = f16_to_f32(h);
        prop_assert_eq!(r.is_nan(), v.is_nan());
        prop_assert_eq!(r.is_sign_negative(), v.is_sign_negative());
        prop_assert_eq!(f32_to_f16(r), h);
    }

    /// Values in the half-precision subnormal range round with absolute
    /// error at most one f16 subnormal step (2^-24).
    #[test]
    fn f16_subnormal_rounding_is_tight(v in 1.0e-7f32..6.0e-5) {
        let r = round_f16(v);
        prop_assert!(r >= 0.0);
        prop_assert!((r - v).abs() <= 1.0 / ((1u32 << 24) as f32));
    }

    /// Tensor reshape round-trips preserve data.
    #[test]
    fn tensor_reshape_round_trip(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let mut t = Tensor::from_vec(&[3, 4], data.clone());
        t.reshape(&[2, 6]);
        t.reshape(&[12]);
        prop_assert_eq!(t.as_slice(), &data[..]);
    }

    /// argmax returns an index of a maximal element.
    #[test]
    fn tensor_argmax_is_max(data in prop::collection::vec(-5.0f32..5.0, 1..32)) {
        let t = Tensor::from_vec(&[data.len()], data.clone());
        let idx = t.argmax();
        let max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(data[idx], max);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward through a reused (dirty, possibly differently-shaped)
    /// workspace is bit-identical to forward through a fresh one — the
    /// allocation-free steady state cannot change results.
    #[test]
    fn reused_workspace_forward_matches_fresh(
        seed in 0u64..1000,
        data in prop::collection::vec(-2.0f32..2.0, 30 * 6),
        width in prop::sample::select(vec![5usize, 6]),
        prewidth in prop::sample::select(vec![5usize, 6]),
    ) {
        let net = cnn_lstm_compact(30, 6, 2, seed);
        // Dirty the reused workspace with a pass at a (possibly) different
        // input width, exercising the in-place buffer resizing.
        let mut reused = Workspace::new();
        let warm = Tensor::from_vec(&[1, 30, prewidth], data[..30 * prewidth].to_vec());
        let _ = net.forward(&warm, false, &mut reused);
        let x = Tensor::from_vec(&[1, 30, width], data[..30 * width].to_vec());
        let again = net.forward(&x, false, &mut reused).clone();
        let mut fresh = Workspace::new();
        let reference = net.forward(&x, false, &mut fresh);
        prop_assert_eq!(again.shape(), reference.shape());
        prop_assert_eq!(again.as_slice(), reference.as_slice());
    }
}

/// Half-precision encodings of non-NaN values survive a decode/encode
/// round trip bit-exactly: `f16_to_f32` is exact and `f32_to_f16` rounds
/// every exactly-representable value (±0, subnormals, normals, ±inf) to
/// itself. NaN encodings keep their NaN-ness and sign but collapse to
/// one canonical payload.
#[test]
fn f16_bits_round_trip_exhaustively() {
    for bits in 0..=u16::MAX {
        let v = f16_to_f32(bits);
        let back = f32_to_f16(v);
        let is_nan_encoding = (bits >> 10) & 0x1F == 0x1F && bits & 0x03FF != 0;
        if is_nan_encoding {
            assert!(v.is_nan(), "{bits:#06x} must decode to NaN");
            assert!(
                (back >> 10) & 0x1F == 0x1F && back & 0x03FF != 0,
                "{bits:#06x} must re-encode as a NaN, got {back:#06x}"
            );
            assert_eq!(back & 0x8000, bits & 0x8000, "NaN sign must survive");
        } else {
            assert_eq!(back, bits, "non-NaN {bits:#06x} must round-trip");
        }
    }
}
