//! Anti-entropy scrubbing: fingerprint exchange finds what frame
//! replay alone cannot — stale followers are repaired by snapshot
//! transfer, silently diverged ones are latched — and a leader crash at
//! any message boundary of the exchange leaves the cluster bit-identical
//! to one that never scrubbed.

mod common;

use clear_cluster::{ClusterError, Envelope, FaultProfile, Message};
use clear_durable::{WalOp, WalRecord};
use common::{
    build_cluster, fingerprint, fixture, nan_map, run_script, settle,
};

const MEMBERS: [usize; 3] = [0, 1, 2];

#[test]
fn scrub_detects_and_repairs_a_stale_follower() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 43);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("amy");
    let leader = c.leader_of_partition(partition).expect("leader");
    let followers = c.followers_of_partition(partition);
    assert_eq!(followers.len(), 2, "reference topology is two followers");

    // Cut only the second follower's link: the write quorum (one ack)
    // stays satisfied through the first, so mutations commit and settle
    // while the second silently falls behind.
    c.net_mut().partition_link(leader, followers[1]);
    c.predict("amy", &[nan_map(f)]).expect("mutation commits");
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0, "quorum lag is clear; staleness is hidden");

    // Scrub finds the straggler and repairs it by snapshot transfer —
    // no flush, no failover, just the fingerprint exchange.
    c.net_mut().heal_all();
    let outcome = c.scrub(partition).expect("scrub");
    assert_eq!(outcome.clean, vec![followers[0]], "first follower reports clean");
    assert_eq!(outcome.repaired, vec![followers[1]], "straggler must be repaired");
    assert!(outcome.diverged.is_empty());
    assert!(outcome.unresponsive.is_empty());

    // The repaired follower can now carry the partition alone.
    let before = fingerprint(&mut c, f);
    c.kill_member(leader).expect("crash fails over");
    c.kill_member(followers[0]).expect("second crash fails over");
    assert_eq!(
        fingerprint(&mut c, f),
        before,
        "the scrub-repaired follower serves different bits"
    );
}

#[test]
fn scrub_latches_a_silently_diverged_follower_and_reseed_recovers() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 47);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("amy");
    let leader = c.leader_of_partition(partition).expect("leader");
    let followers = c.followers_of_partition(partition);
    assert_eq!(followers.len(), 2);

    // Manufacture silent rot: cut the first follower off, commit a real
    // quarantine on the leader, and inject a *different* quarantine for
    // the same onboarded user at the same LSN into the cut follower. The
    // record applies cleanly — same user, same op type, valid LSN — so
    // frame replay sees nothing wrong, but the states now disagree.
    c.net_mut().partition_link(leader, followers[0]);
    let next_lsn = c.acked_of(partition) + 1;
    c.predict("amy", &[nan_map(f)]).expect("genuine quarantine commits");
    // Injected from the *other* follower so the cut leader link cannot
    // drop it; the Ship path applies records regardless of sender, and
    // the resulting ack to a non-leader is discarded.
    c.net_mut().send(Envelope {
        from: followers[1],
        to: followers[0],
        msg: Message::Ship {
            partition,
            records: vec![WalRecord {
                lsn: next_lsn,
                op: WalOp::Quarantine {
                    user: "amy".to_string(),
                    count: 999,
                },
            }],
        },
    });
    c.pump();
    assert!(
        !c.is_latched(followers[0], partition),
        "the poisoned record applied cleanly — replay alone cannot see the rot"
    );
    c.net_mut().heal_all();
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0, "acks agree; only the bits differ");

    // The scrub compares fingerprints at the shared LSN and latches the
    // rotten follower.
    let outcome = c.scrub(partition).expect("scrub");
    assert_eq!(outcome.diverged, vec![followers[0]], "rot must latch");
    assert_eq!(outcome.clean, vec![followers[1]]);
    assert!(c.is_latched(followers[0], partition));
    match c.flush() {
        Err(ClusterError::FollowerDiverged { partition: p, member }) => {
            assert_eq!(p, partition);
            assert_eq!(member, followers[0]);
        }
        other => panic!("expected FollowerDiverged, got {other:?}"),
    }

    // Reseed replaces the latched follower with a verified copy; the
    // partition then survives losing everyone else.
    c.reseed_follower(partition).expect("reseed verifies");
    settle(&mut c);
    let before = fingerprint(&mut c, f);
    c.kill_member(c.leader_of_partition(partition).expect("leader")).expect("crash");
    c.kill_member(
        c.leader_of_partition(partition).expect("promoted leader"),
    )
    .expect("second crash");
    assert_eq!(
        fingerprint(&mut c, f),
        before,
        "post-reseed replicas serve different bits"
    );
}

#[test]
fn leader_crash_at_every_scrub_boundary_converges_to_the_no_scrub_oracle() {
    let f = fixture();
    // The oracle never scrubs: same script, settled, then served.
    let oracle = {
        let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 53);
        run_script(&mut c, f);
        settle(&mut c);
        fingerprint(&mut c, f)
    };
    // Boundary b: begin the scrub, deliver b pump rounds of its message
    // exchange, then kill the leader mid-protocol. Failover, settle and
    // a final settle-side scrub must leave served bits untouched.
    for boundary in 0..6 {
        let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 53);
        run_script(&mut c, f);
        settle(&mut c);
        let partition = c.partition_of("amy");
        let leader = c.leader_of_partition(partition).expect("leader");
        c.scrub_begin(partition).expect("scrub starts");
        for _ in 0..boundary {
            c.pump();
        }
        c.kill_member(leader).expect("crash mid-scrub fails over");
        // Settling the orphaned scrub must be harmless: its requester is
        // dead, late reports are ignored, repairs re-check assignment.
        let outcome = c.scrub_settle(partition).expect("settle after crash");
        assert!(outcome.diverged.is_empty(), "boundary {boundary}: phantom divergence");
        settle(&mut c);
        assert_eq!(
            fingerprint(&mut c, f),
            oracle,
            "boundary {boundary}: crash mid-scrub changed served bits"
        );
        // And a clean scrub through the promoted leader still passes.
        let clean = c.scrub(partition).expect("post-crash scrub");
        assert!(clean.diverged.is_empty(), "boundary {boundary}: scrub after failover");
        assert_eq!(fingerprint(&mut c, f), oracle, "boundary {boundary}: final bits");
    }
}

#[test]
fn automatic_scrub_cadence_repairs_stragglers_without_explicit_flush() {
    let f = fixture();
    let mut config = common::cluster_config();
    config.scrub_every_ticks = 2;
    let mut c = common::build_cluster_with(&MEMBERS, FaultProfile::reliable(), 59, config);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("amy");
    let leader = c.leader_of_partition(partition).expect("leader");
    let followers = c.followers_of_partition(partition);
    assert_eq!(followers.len(), 2);

    // Let the second follower fall behind, then heal — and never flush.
    c.net_mut().partition_link(leader, followers[1]);
    c.predict("amy", &[nan_map(f)]).expect("mutation commits");
    c.net_mut().heal_all();
    let before = fingerprint(&mut c, f);

    // The pump's own cadence must find and repair the straggler.
    for _ in 0..(2 * 4 * 3) {
        c.pump();
    }

    // Proof of repair: destruction (disk loss) only promotes a *fully
    // acknowledged* follower. Remove the clean follower first; if the
    // straggler had not been repaired, the partition would degrade to
    // leaderless read-only.
    c.destroy_member(followers[0]).expect("destruction handled");
    c.destroy_member(leader).expect("destruction handled");
    assert_eq!(
        c.leader_of_partition(partition),
        Some(followers[1]),
        "the auto-scrubbed follower must be promotable (fully acked)"
    );
    assert_eq!(
        fingerprint(&mut c, f),
        before,
        "auto-scrub repair changed served bits"
    );
}
