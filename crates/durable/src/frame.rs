//! Checksummed, length-prefixed record frames — the WAL's byte format.
//!
//! Each frame is `[len: u32 LE][crc32(payload): u32 LE][payload]`. The
//! decoder distinguishes the two ways a log can be damaged:
//!
//! * **Torn tail** — the file ends before a complete frame (a crash
//!   mid-append). Everything before the tear decodes normally; the tear
//!   itself is reported as [`WalTail::Torn`] so the caller can truncate
//!   it. A torn write only ever *shortens* the file, so an incomplete
//!   frame at the end is expected damage, not corruption.
//! * **Corruption** — a *complete* frame whose checksum does not match
//!   (bit rot, overwritten sectors, editor accidents). No torn write can
//!   produce this shape, so it is surfaced as a typed
//!   [`DurableError::CorruptArtifact`] instead of being truncated away.
//!
//! Decoding never panics and never allocates proportional to a corrupt
//! length field: a length that runs past the end of the buffer is, by the
//! argument above, a torn tail.

use crate::DurableError;

/// Bytes of the `len` + `crc` prefix before each payload.
pub const FRAME_HEADER_BYTES: usize = 8;

/// How a decoded log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The buffer ended exactly on a frame boundary.
    Clean,
    /// The buffer ended inside a frame; `valid_len` is the byte length
    /// of the longest decodable prefix (the truncation point).
    Torn {
        /// Byte offset of the last complete frame's end.
        valid_len: usize,
    },
}

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the checksum used by frames and envelopes).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Encodes one payload as a frame, appending it to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one payload as a standalone frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    encode_frame_into(&mut out, payload);
    out
}

/// Decodes a sequence of frames, returning the payload slices in order
/// and how the buffer ended.
///
/// # Errors
///
/// Returns [`DurableError::CorruptArtifact`] when a *complete* frame
/// fails its checksum; incomplete trailing bytes are reported as
/// [`WalTail::Torn`], not as an error.
pub fn decode_frames(bytes: &[u8]) -> Result<(Vec<&[u8]>, WalTail), DurableError> {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_HEADER_BYTES {
            return Ok((payloads, WalTail::Torn { valid_len: offset }));
        }
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        let body_start = offset + FRAME_HEADER_BYTES;
        if len > bytes.len() - body_start {
            // The length runs past the buffer: a torn append (or a
            // corrupt length field, which truncation also handles
            // safely — the prefix property holds either way).
            return Ok((payloads, WalTail::Torn { valid_len: offset }));
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != stored_crc {
            return Err(DurableError::corrupt(
                "wal",
                format!("frame at byte {offset} fails its checksum"),
            ));
        }
        payloads.push(payload);
        offset = body_start + len;
    }
    Ok((payloads, WalTail::Clean))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_payloads_in_order() {
        let records: [&[u8]; 4] = [b"", b"a", b"hello world", &[0u8, 255, 7, 7]];
        let mut buf = Vec::new();
        for r in records {
            encode_frame_into(&mut buf, r);
        }
        let (decoded, tail) = decode_frames(&buf).unwrap();
        assert_eq!(decoded, records.to_vec());
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn empty_buffer_is_clean() {
        let (decoded, tail) = decode_frames(&[]).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        let records: [&[u8]; 3] = [b"first", b"second record", b"third"];
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in records {
            encode_frame_into(&mut buf, r);
            boundaries.push(buf.len());
        }
        for cut in 0..buf.len() {
            let (decoded, tail) = decode_frames(&buf[..cut]).unwrap();
            // The decoded records are exactly the frames wholly before
            // the cut.
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), complete, "cut at {cut}");
            for (d, r) in decoded.iter().zip(records.iter()) {
                assert_eq!(d, r);
            }
            if boundaries.contains(&cut) {
                assert_eq!(tail, WalTail::Clean, "cut at {cut}");
            } else {
                assert_eq!(
                    tail,
                    WalTail::Torn {
                        valid_len: boundaries[complete]
                    },
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn payload_bit_flip_is_a_typed_corruption_error() {
        let mut buf = encode_frame(b"important bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        match decode_frames(&buf) {
            Err(DurableError::CorruptArtifact { artifact, .. }) => assert_eq!(artifact, "wal"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_field_is_a_torn_tail_not_an_allocation() {
        let mut buf = encode_frame(b"ok");
        // Append a frame header claiming 4 GiB - 1 of payload.
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        let (decoded, tail) = decode_frames(&buf).unwrap();
        assert_eq!(decoded, vec![b"ok".as_slice()]);
        assert_eq!(
            tail,
            WalTail::Torn {
                valid_len: FRAME_HEADER_BYTES + 2
            }
        );
    }

    #[test]
    fn corruption_in_an_interior_frame_fails_even_with_a_valid_tail() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, b"aaaa");
        let flip_at = FRAME_HEADER_BYTES; // first payload byte
        encode_frame_into(&mut buf, b"bbbb");
        buf[flip_at] ^= 0x01;
        assert!(decode_frames(&buf).is_err());
    }
}
