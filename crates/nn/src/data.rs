//! Labeled datasets, shuffling, splits and stratified sampling.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labeled sample: an input tensor and its class index.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Model input (e.g. a `[1, 123, W]` feature map).
    pub input: Tensor,
    /// Class index.
    pub label: usize,
}

/// An in-memory labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dataset from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Adds a sample.
    pub fn push(&mut self, input: Tensor, label: usize) {
        self.samples.push(Sample { input, label });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Immutable sample access.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Indices shuffled deterministically by `seed`.
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        idx.shuffle(&mut SmallRng::seed_from_u64(seed));
        idx
    }

    /// Splits into `(first, second)` with `fraction` of samples in the
    /// first part, after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn split(&self, fraction: f32, seed: u64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1)"
        );
        let idx = self.shuffled_indices(seed);
        let cut = ((self.samples.len() as f32) * fraction).round() as usize;
        let cut = cut.clamp(1, self.samples.len().saturating_sub(1).max(1));
        let first = idx[..cut]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        let second = idx[cut..]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        (Dataset::from_samples(first), Dataset::from_samples(second))
    }

    /// Stratified split preserving per-class proportions: `fraction` of
    /// *each class* lands in the first part.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn split_stratified(&self, fraction: f32, seed: u64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction must be in (0, 1)"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let classes: std::collections::BTreeSet<usize> =
            self.samples.iter().map(|s| s.label).collect();
        let mut first = Vec::new();
        let mut second = Vec::new();
        for class in classes {
            let mut members: Vec<&Sample> =
                self.samples.iter().filter(|s| s.label == class).collect();
            members.shuffle(&mut rng);
            let cut = ((members.len() as f32) * fraction).round() as usize;
            let cut = cut.min(members.len());
            for (i, s) in members.into_iter().enumerate() {
                if i < cut {
                    first.push(s.clone());
                } else {
                    second.push(s.clone());
                }
            }
        }
        (Dataset::from_samples(first), Dataset::from_samples(second))
    }

    /// Per-class sample counts (index = class).
    pub fn class_counts(&self) -> Vec<usize> {
        let max = self.samples.iter().map(|s| s.label).max().unwrap_or(0);
        let mut counts = vec![0usize; max + 1];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Merges another dataset into this one.
    pub fn extend_from(&mut self, other: &Dataset) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset::from_samples(iter.into_iter().collect())
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(Tensor::from_vec(&[1], vec![i as f32]), i % 2);
        }
        d
    }

    #[test]
    fn push_len_counts() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy(20);
        let (a, b) = d.split(0.25, 7);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 15);
        let mut seen: Vec<f32> = a.iter().chain(b.iter()).map(|s| s.input.at1(0)).collect();
        seen.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let expected: Vec<f32> = (0..20).map(|v| v as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let mut d = Dataset::new();
        for i in 0..30 {
            d.push(
                Tensor::from_vec(&[1], vec![i as f32]),
                if i < 20 { 0 } else { 1 },
            );
        }
        let (a, b) = d.split_stratified(0.5, 3);
        assert_eq!(a.class_counts(), vec![10, 5]);
        assert_eq!(b.class_counts(), vec![10, 5]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let d = toy(12);
        assert_eq!(d.shuffled_indices(5), d.shuffled_indices(5));
        assert_ne!(d.shuffled_indices(5), d.shuffled_indices(6));
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn bad_fraction_panics() {
        let _ = toy(4).split(1.0, 0);
    }

    #[test]
    fn collect_and_extend() {
        let d: Dataset = toy(4).iter().cloned().collect();
        assert_eq!(d.len(), 4);
        let mut e = toy(2);
        e.extend(d.iter().cloned());
        assert_eq!(e.len(), 6);
        let mut f = toy(1);
        f.extend_from(&e);
        assert_eq!(f.len(), 7);
    }
}
