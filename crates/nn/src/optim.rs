//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state in flat buffers aligned with the
//! network's [`visit_params`](crate::network::Network::visit_params)
//! traversal order, which is stable for a given architecture. Gradients
//! are read from the [`Workspace`] that accumulated them.

use crate::network::Network;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// Optimizer selection and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with the usual bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical stabilizer.
        eps: f32,
    },
}

impl OptimizerConfig {
    /// Adam with standard defaults at the given learning rate.
    pub fn adam(lr: f32) -> Self {
        OptimizerConfig::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD with momentum 0.9.
    pub fn sgd(lr: f32) -> Self {
        OptimizerConfig::Sgd { lr, momentum: 0.9 }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::adam(1e-3)
    }
}

/// Stateful optimizer bound to one network's parameter layout.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer for `network` (allocates state lazily on the
    /// first step).
    pub fn new(config: OptimizerConfig) -> Self {
        Self {
            config,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Applies one update step using the gradients accumulated in `ws`,
    /// scaled by `1 / grad_scale` (pass the mini-batch size to average
    /// accumulated gradients).
    ///
    /// # Panics
    ///
    /// Panics if `grad_scale` is not positive or `ws` is not bound to
    /// `network`.
    pub fn step(&mut self, network: &mut Network, ws: &mut Workspace, grad_scale: f32) {
        assert!(grad_scale > 0.0, "grad_scale must be positive");
        let total = network.param_count();
        if self.m.len() != total {
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
        }
        self.t += 1;
        let mut offset = 0usize;
        let (m, v, t) = (&mut self.m, &mut self.v, self.t);
        let config = self.config;
        network.visit_params_grads(ws, &mut |p, g| {
            match config {
                OptimizerConfig::Sgd { lr, momentum } => {
                    for i in 0..p.len() {
                        let grad = g[i] / grad_scale;
                        m[offset + i] = momentum * m[offset + i] + grad;
                        p[i] -= lr * m[offset + i];
                    }
                }
                OptimizerConfig::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                } => {
                    let bc1 = 1.0 - beta1.powi(t as i32);
                    let bc2 = 1.0 - beta2.powi(t as i32);
                    for i in 0..p.len() {
                        let grad = g[i] / grad_scale;
                        m[offset + i] = beta1 * m[offset + i] + (1.0 - beta1) * grad;
                        v[offset + i] = beta2 * v[offset + i] + (1.0 - beta2) * grad * grad;
                        let mh = m[offset + i] / bc1;
                        let vh = v[offset + i] / bc2;
                        p[i] -= lr * mh / (vh.sqrt() + eps);
                    }
                }
            }
            offset += p.len();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::cross_entropy;
    use crate::tensor::Tensor;

    fn tiny_net(seed: u64) -> Network {
        Network::new(vec![Layer::Dense(Dense::new(4, 2, seed))])
    }

    fn train_step(
        net: &mut Network,
        ws: &mut Workspace,
        opt: &mut Optimizer,
        x: &Tensor,
        y: usize,
    ) -> f32 {
        let logits = net.forward(x, true, ws);
        let (loss, grad) = cross_entropy(logits, y);
        ws.zero_grads();
        net.backward(&grad, ws);
        opt.step(net, ws, 1.0);
        loss
    }

    #[test]
    fn sgd_converges_on_separable_problem() {
        let mut net = tiny_net(1);
        let mut ws = Workspace::new();
        let mut opt = Optimizer::new(OptimizerConfig::sgd(0.1));
        let a = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        let b = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 1.0]);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let la = train_step(&mut net, &mut ws, &mut opt, &a, 0);
            let lb = train_step(&mut net, &mut ws, &mut opt, &b, 1);
            last = la + lb;
        }
        assert!(last < 0.05, "sgd failed to converge, loss {last}");
    }

    #[test]
    fn adam_converges_faster_than_tiny_lr_sgd() {
        let run = |config: OptimizerConfig| -> f32 {
            let mut net = tiny_net(2);
            let mut ws = Workspace::new();
            let mut opt = Optimizer::new(config);
            let a = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
            let b = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 1.0]);
            let mut last = f32::INFINITY;
            for _ in 0..40 {
                let la = train_step(&mut net, &mut ws, &mut opt, &a, 0);
                let lb = train_step(&mut net, &mut ws, &mut opt, &b, 1);
                last = la + lb;
            }
            last
        };
        let adam = run(OptimizerConfig::adam(0.01));
        let slow_sgd = run(OptimizerConfig::Sgd {
            lr: 1e-4,
            momentum: 0.0,
        });
        assert!(adam < slow_sgd);
    }

    #[test]
    fn grad_scale_averages_minibatch() {
        // Two identical samples accumulated then scaled by 2 must equal one
        // sample scaled by 1.
        let x = Tensor::from_vec(&[4], vec![0.5, -0.5, 0.25, 1.0]);
        let mut net1 = tiny_net(3);
        let mut net2 = net1.clone();
        let mut ws1 = Workspace::new();
        let mut ws2 = Workspace::new();
        let mut opt1 = Optimizer::new(OptimizerConfig::sgd(0.1));
        let mut opt2 = Optimizer::new(OptimizerConfig::sgd(0.1));

        let logits = net1.forward(&x, true, &mut ws1);
        let (_, g) = cross_entropy(logits, 0);
        ws1.zero_grads();
        net1.backward(&g, &mut ws1);
        opt1.step(&mut net1, &mut ws1, 1.0);

        for _ in 0..2 {
            let logits = net2.forward(&x, true, &mut ws2);
            let (_, g) = cross_entropy(logits, 0);
            net2.backward(&g, &mut ws2);
        }
        opt2.step(&mut net2, &mut ws2, 2.0);

        let p1 = net1.parameters_flat();
        let p2 = net2.parameters_flat();
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let mut net = tiny_net(4);
        let mut ws = Workspace::new();
        let mut opt = Optimizer::new(OptimizerConfig::default());
        opt.step(&mut net, &mut ws, 0.0);
    }
}
