//! Generation rollout under live streaming load.
//!
//! A cluster-model adoption lands mid-stream while sessions are
//! ingesting and draining. The invariant: every drained prediction batch
//! is served by exactly one generation — bit-identical to either the
//! pure-old replay or the pure-new replay of the same stream, never a
//! mix of the two — and once a session has seen the new generation it
//! never reverts.
//!
//! Proven by triple replay: the same deterministic chunk schedule runs
//! against (a) an engine that never adopts, (b) an engine that adopts
//! before any traffic, and (c) an engine that adopts at the midpoint
//! tick. Sessions are ingestion-driven, so the three runs drain the
//! same maps at the same drain indices; every midpoint-run batch must
//! equal its (a)- or (b)-counterpart wholesale.

mod common;

use clear_serve::{EngineConfig, ServeEngine};
use clear_sim::{chunk_schedule, ChunkSizes, SignalConfig};
use clear_stream::{ChunkIngest, PumpConfig, SessionConfig, StreamPump};
use common::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const USERS: usize = 8;
const THREADS: usize = 4;

type Key = (String, u32, u32, String, String);

struct UserStream {
    user: String,
    bvp: Vec<f32>,
    gsr: Vec<f32>,
    skt: Vec<f32>,
    plan: Vec<ChunkSizes>,
}

fn build_streams(f: &Fixture) -> Vec<UserStream> {
    let signal = f.config.cohort.signal;
    (0..USERS)
        .map(|i| {
            let recs = recordings_of(f, i, 2, 6);
            let (bvp, gsr, skt) = concat_stream(&recs);
            let total = SignalConfig {
                stimulus_secs: bvp.len() as f32 / signal.fs_bvp,
                ..signal
            };
            UserStream {
                user: format!("user-{i:02}"),
                plan: chunk_schedule(&total, 0.25, 2.0, 7_000 + i as u64),
                bvp,
                gsr,
                skt,
            }
        })
        .collect()
}

/// A deterministically perturbed clone of `base`: every parameter nudged
/// by 2 % plus a small bias — enough to move every served confidence,
/// without changing the model's shape.
fn perturbed(base: &clear_nn::network::Network) -> clear_nn::network::Network {
    let mut net = base.clone();
    let params: Vec<f32> = net
        .parameters_flat()
        .iter()
        .map(|w| w * 1.02 + 5e-4)
        .collect();
    net.set_parameters_flat(&params);
    net
}

/// One full pumped replay. When `adopt_at` is `Some(t)`, a perturbed
/// candidate is adopted for every cluster right before tick `t`'s
/// ingest. Returns each user's drained batches in drain order, as
/// bit-exact prediction keys.
fn run(
    f: &Fixture,
    streams: &[UserStream],
    adopt_at: Option<usize>,
) -> BTreeMap<String, Vec<Vec<Key>>> {
    let engine = Arc::new(ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig::default(),
    ));
    let pump = StreamPump::new(
        Arc::clone(&engine),
        PumpConfig::new(SessionConfig::new(
            f.config.cohort.signal,
            f.config.window,
            f.bundle.windows,
        )),
    );
    for (i, s) in streams.iter().enumerate() {
        pump.engine()
            .onboard(&s.user, &maps_of(f, i, 0, 2))
            .expect("onboard");
        pump.open(&s.user).expect("open");
    }

    let adopt = |tick: usize| {
        if adopt_at == Some(tick) {
            for cluster in 0..engine.cluster_count() {
                let generation = engine
                    .adopt_cluster_model(cluster, &perturbed(&f.bundle.models[cluster]))
                    .expect("adoption on a live engine");
                assert!(generation > 0, "adopted generations start at 1");
                assert_eq!(engine.cluster_generation(cluster), generation);
            }
        }
    };

    let mut out: BTreeMap<String, Vec<Vec<Key>>> = streams
        .iter()
        .map(|s| (s.user.clone(), Vec::new()))
        .collect();
    let mut offsets = vec![(0usize, 0usize, 0usize); streams.len()];
    let max_ticks = streams.iter().map(|s| s.plan.len()).max().unwrap();
    for tick in 0..max_ticks {
        adopt(tick);
        let mut batch = Vec::new();
        for (i, s) in streams.iter().enumerate() {
            if tick >= s.plan.len() {
                continue;
            }
            let c = s.plan[tick];
            let (ob, og, os) = offsets[i];
            batch.push(ChunkIngest {
                user: &s.user,
                bvp: &s.bvp[ob..ob + c.bvp],
                gsr: &s.gsr[og..og + c.gsr],
                skt: &s.skt[os..os + c.skt],
            });
            offsets[i] = (ob + c.bvp, og + c.gsr, os + c.skt);
        }
        for result in pump.ingest_many(&batch, THREADS) {
            result.expect("ingest failed");
        }
        for drain in pump.drain() {
            let preds = drain.result.expect("serving error");
            out.get_mut(&drain.user)
                .expect("drains only name open sessions")
                .push(preds.iter().map(pred_key).collect());
        }
    }
    for drain in pump.drain() {
        let preds = drain.result.expect("serving error");
        out.get_mut(&drain.user)
            .expect("drains only name open sessions")
            .push(preds.iter().map(pred_key).collect());
    }
    out
}

#[test]
fn mid_stream_rollout_switches_generations_atomically_per_drain() {
    let f = fixture();
    let streams = build_streams(f);
    let max_ticks = streams.iter().map(|s| s.plan.len()).max().unwrap();

    let old = run(f, &streams, None);
    let new = run(f, &streams, Some(0));
    let mid = run(f, &streams, Some(max_ticks / 2));

    let mut served_old = 0usize;
    let mut served_new = 0usize;
    for s in &streams {
        let (o, n, m) = (&old[&s.user], &new[&s.user], &mid[&s.user]);
        assert_eq!(o.len(), m.len(), "{}: drain cadence diverged", s.user);
        assert_eq!(n.len(), m.len(), "{}: drain cadence diverged", s.user);
        assert!(!m.is_empty(), "{} never drained a map", s.user);
        let mut switched = false;
        for (i, batch) in m.iter().enumerate() {
            let is_old = batch == &o[i];
            let is_new = batch == &n[i];
            assert!(
                is_old || is_new,
                "drain {i} of {} matches neither generation — a mixed-generation batch",
                s.user
            );
            if is_old && !is_new {
                assert!(
                    !switched,
                    "drain {i} of {} reverted to the old generation after switching",
                    s.user
                );
                served_old += 1;
            }
            if is_new && !is_old {
                switched = true;
                served_new += 1;
            }
        }
    }
    // The switch really happened mid-stream: unambiguous old-generation
    // batches before it, unambiguous new-generation batches after.
    assert!(served_old > 0, "no drain served the old generation");
    assert!(served_new > 0, "no drain served the new generation");
}
