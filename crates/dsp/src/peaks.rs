//! Peak and physiological-event detection.
//!
//! Two detectors drive the CLEAR feature extractor:
//!
//! * [`detect_peaks`] — generic local-maximum detection with amplitude
//!   threshold and refractory distance, used for BVP systolic peaks (heart
//!   beats) from which the HRV features derive;
//! * [`detect_scr_events`] — skin-conductance-response onsets/peaks in the
//!   phasic GSR component, yielding SCR rate, amplitudes, rise times and
//!   half-recovery times.

use crate::DspError;

/// Parameters for [`detect_peaks`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakConfig {
    /// Minimum absolute height a sample must reach to qualify.
    pub min_height: f32,
    /// Minimum distance (in samples) between consecutive accepted peaks —
    /// the physiological refractory period.
    pub min_distance: usize,
}

impl Default for PeakConfig {
    fn default() -> Self {
        Self {
            min_height: 0.0,
            min_distance: 1,
        }
    }
}

/// Indices of local maxima of `x` subject to `config`.
///
/// A sample qualifies when it strictly exceeds its immediate neighbours,
/// reaches `min_height`, and is at least `min_distance` samples after the
/// previously accepted peak. When two candidates collide within the
/// refractory distance the higher one wins.
pub fn detect_peaks(x: &[f32], config: &PeakConfig) -> Vec<usize> {
    if x.len() < 3 {
        return Vec::new();
    }
    let mut peaks: Vec<usize> = Vec::new();
    for i in 1..x.len() - 1 {
        if x[i] > x[i - 1] && x[i] >= x[i + 1] && x[i] >= config.min_height {
            match peaks.last() {
                Some(&last) if i - last < config.min_distance.max(1) => {
                    if x[i] > x[last] {
                        *peaks.last_mut().unwrap() = i;
                    }
                }
                _ => peaks.push(i),
            }
        }
    }
    peaks
}

/// Detects heart beats in a blood-volume-pulse signal.
///
/// The threshold adapts to the signal: 40 % of the 90th amplitude percentile
/// above the median, with a refractory period of 0.33 s (max ≈ 180 bpm).
///
/// Returns beat indices (systolic peaks).
///
/// # Errors
///
/// Returns [`DspError::BadParameter`] when `fs <= 0`.
pub fn detect_beats(bvp: &[f32], fs: f32) -> Result<Vec<usize>, DspError> {
    if fs.is_nan() || fs <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rate must be positive",
        });
    }
    if bvp.len() < 3 {
        return Ok(Vec::new());
    }
    let med = crate::stats::median(bvp).unwrap_or(0.0);
    let p90 = crate::stats::percentile(bvp, 90.0).unwrap_or(0.0);
    let threshold = med + 0.4 * (p90 - med);
    let config = PeakConfig {
        min_height: threshold,
        min_distance: (0.33 * fs).round().max(1.0) as usize,
    };
    let mut beats = detect_peaks(bvp, &config);
    // Second pass: the dicrotic wave can clear the amplitude threshold at
    // slow heart rates. Dicrotic bumps are much lower than systolic peaks,
    // so drop detections below half the 90th-percentile peak height.
    if beats.len() >= 3 {
        let heights: Vec<f32> = beats.iter().map(|&i| bvp[i]).collect();
        let p90h = crate::stats::percentile(&heights, 90.0).unwrap_or(0.0);
        beats.retain(|&i| bvp[i] >= 0.5 * p90h);
    }
    // Third pass: any interval shorter than 60 % of the median interval
    // is physiologically implausible — drop the lower of the two peaks.
    loop {
        let ibis: Vec<f32> = beats.windows(2).map(|w| (w[1] - w[0]) as f32).collect();
        if ibis.len() < 2 {
            break;
        }
        let med_ibi = crate::stats::median(&ibis).expect("ibis nonempty");
        let mut removed = false;
        let mut i = 1;
        while i < beats.len() {
            if ((beats[i] - beats[i - 1]) as f32) < 0.6 * med_ibi {
                let drop = if bvp[beats[i]] < bvp[beats[i - 1]] {
                    i
                } else {
                    i - 1
                };
                beats.remove(drop);
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    Ok(beats)
}

/// A detected skin-conductance response (SCR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrEvent {
    /// Sample index where the response starts rising.
    pub onset: usize,
    /// Sample index of the response apex.
    pub peak: usize,
    /// Conductance rise from onset to apex (µS in the simulator's units).
    pub amplitude: f32,
    /// Rise time in seconds (onset → apex).
    pub rise_time: f32,
    /// Half-recovery time in seconds (apex → first sample below
    /// `onset + amplitude / 2`), `None` if recovery never happens within the
    /// window.
    pub half_recovery: Option<f32>,
}

/// Detects SCR events in the *phasic* GSR component sampled at `fs` Hz.
///
/// An event is a rise of at least `min_amplitude` from a local trough to a
/// local apex. Follows the standard trough-to-peak scoring of
/// electrodermal-activity analysis.
///
/// # Errors
///
/// Returns [`DspError::BadParameter`] when `fs <= 0` or
/// `min_amplitude <= 0`.
pub fn detect_scr_events(
    phasic: &[f32],
    fs: f32,
    min_amplitude: f32,
) -> Result<Vec<ScrEvent>, DspError> {
    if fs.is_nan() || fs <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rate must be positive",
        });
    }
    if min_amplitude.is_nan() || min_amplitude <= 0.0 {
        return Err(DspError::BadParameter {
            name: "min_amplitude",
            reason: "amplitude criterion must be positive",
        });
    }
    let n = phasic.len();
    if n < 3 {
        return Ok(Vec::new());
    }

    let mut events = Vec::new();
    let mut trough_idx = 0usize;
    let mut trough_val = phasic[0];
    let mut i = 1;
    while i < n {
        if phasic[i] < trough_val {
            trough_val = phasic[i];
            trough_idx = i;
        }
        // Local apex: strictly rising into i, non-rising out of i.
        let is_apex = phasic[i] > phasic[i - 1] && (i + 1 == n || phasic[i] >= phasic[i + 1]);
        if is_apex {
            let amplitude = phasic[i] - trough_val;
            if amplitude >= min_amplitude {
                let half_level = trough_val + amplitude / 2.0;
                let half_recovery = phasic[i..]
                    .iter()
                    .position(|&v| v <= half_level)
                    .map(|off| off as f32 / fs);
                events.push(ScrEvent {
                    onset: trough_idx,
                    peak: i,
                    amplitude,
                    rise_time: (i - trough_idx) as f32 / fs,
                    half_recovery,
                });
                // Restart trough tracking from the apex.
                trough_idx = i;
                trough_val = phasic[i];
            }
        }
        i += 1;
    }
    Ok(events)
}

/// Inter-beat intervals in seconds from beat indices at sampling rate `fs`.
pub fn inter_beat_intervals(beats: &[usize], fs: f32) -> Vec<f32> {
    beats
        .windows(2)
        .map(|w| (w[1] - w[0]) as f32 / fs)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes a pulse train resembling BVP at the given heart rate.
    fn synth_bvp(fs: f32, bpm: f32, secs: f32) -> Vec<f32> {
        let n = (fs * secs) as usize;
        let period = 60.0 / bpm;
        (0..n)
            .map(|i| {
                let t = i as f32 / fs;
                let phase = (t % period) / period;
                // Sharp systolic upstroke, slower decay, small dicrotic bump.
                (-(phase * 8.0)).exp() + 0.25 * (-((phase - 0.4) * 12.0).powi(2)).exp()
            })
            .collect()
    }

    #[test]
    fn detect_peaks_basic_triangle() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let p = detect_peaks(&x, &PeakConfig::default());
        assert_eq!(p, vec![1, 3, 5]);
    }

    #[test]
    fn detect_peaks_height_filter() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let p = detect_peaks(
            &x,
            &PeakConfig {
                min_height: 1.5,
                min_distance: 1,
            },
        );
        assert_eq!(p, vec![3, 5]);
    }

    #[test]
    fn detect_peaks_refractory_keeps_higher() {
        let x = [0.0, 1.0, 0.5, 2.0, 0.0, 0.0, 0.0, 1.0, 0.0];
        let p = detect_peaks(
            &x,
            &PeakConfig {
                min_height: 0.0,
                min_distance: 4,
            },
        );
        assert_eq!(p, vec![3, 7]);
    }

    #[test]
    fn detect_peaks_short_input() {
        assert!(detect_peaks(&[], &PeakConfig::default()).is_empty());
        assert!(detect_peaks(&[1.0, 2.0], &PeakConfig::default()).is_empty());
    }

    #[test]
    fn beat_detection_recovers_heart_rate() {
        let fs = 64.0;
        for bpm in [55.0, 72.0, 95.0, 120.0] {
            let bvp = synth_bvp(fs, bpm, 30.0);
            let beats = detect_beats(&bvp, fs).unwrap();
            let ibis = inter_beat_intervals(&beats, fs);
            let mean_ibi = crate::stats::mean(&ibis);
            let detected_bpm = 60.0 / mean_ibi;
            assert!(
                (detected_bpm - bpm).abs() < 4.0,
                "bpm {bpm} detected {detected_bpm}"
            );
        }
    }

    #[test]
    fn beat_detection_validates_fs() {
        assert!(detect_beats(&[1.0, 2.0, 1.0], 0.0).is_err());
        assert!(detect_beats(&[], 64.0).unwrap().is_empty());
    }

    #[test]
    fn scr_detection_counts_events() {
        let fs = 8.0;
        // Two clear SCRs: fast rise, slow decay, separated by quiet baseline.
        let mut x = vec![0.0f32; 160];
        for (start, amp) in [(20usize, 1.0f32), (100, 0.7)] {
            for i in 0..60 {
                if start + i < x.len() {
                    let t = i as f32 / fs;
                    x[start + i] += amp * (t / 0.8) * (-(t / 2.0)).exp() * std::f32::consts::E;
                }
            }
        }
        let events = detect_scr_events(&x, fs, 0.1).unwrap();
        assert_eq!(events.len(), 2, "events: {events:?}");
        assert!(events[0].amplitude > events[1].amplitude);
        assert!(events[0].rise_time > 0.0);
        assert!(events[0].half_recovery.is_some());
        assert!(events[0].onset < events[0].peak);
    }

    #[test]
    fn scr_detection_ignores_subthreshold_ripple() {
        let x: Vec<f32> = (0..200).map(|i| 0.01 * ((i as f32) * 0.7).sin()).collect();
        let events = detect_scr_events(&x, 8.0, 0.1).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn scr_detection_validates_parameters() {
        assert!(detect_scr_events(&[0.0; 10], 0.0, 0.1).is_err());
        assert!(detect_scr_events(&[0.0; 10], 8.0, 0.0).is_err());
        assert!(detect_scr_events(&[0.0; 2], 8.0, 0.1).unwrap().is_empty());
    }

    #[test]
    fn ibi_computation() {
        let beats = [10usize, 74, 138];
        let ibis = inter_beat_intervals(&beats, 64.0);
        assert_eq!(ibis, vec![1.0, 1.0]);
        assert!(inter_beat_intervals(&[5], 64.0).is_empty());
    }
}
