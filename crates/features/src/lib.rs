//! # clear-features — the 123-feature 2D feature-map extractor
//!
//! Implements the feature-map generation stage of the CLEAR methodology
//! (paper §III-A1, following Sun et al. [18]): raw physiological windows are
//! reduced to **123 features — 34 GSR, 84 BVP and 5 SKT** — spanning the
//! time domain, frequency domain and non-linear measures. Sliding windows
//! over one stimulus recording are stacked into a 2D matrix
//! `M ∈ R^{F×W}` (`F = 123` features × `W` windows), which downstream
//! stages treat as an image for the CNN-LSTM classifier and flatten into
//! per-user vectors for clustering.
//!
//! * [`catalog`] — the authoritative ordered list of feature definitions,
//! * [`extract`] — per-window extraction of the 123 scalars,
//! * [`map`] — feature-map assembly, per-feature normalization and
//!   user-level aggregation,
//! * [`importance`] — Fisher-score feature relevance and per-modality
//!   attribution,
//! * [`quality`] — signal- and feature-map-level quality assessment
//!   (flatline / saturation / dropout / NaN indices) for degraded-mode
//!   serving.
//!
//! ## Example
//!
//! ```
//! use clear_features::{FeatureExtractor, WindowConfig, FEATURE_COUNT};
//! use clear_sim::{Cohort, CohortConfig};
//!
//! let cohort = Cohort::generate(&CohortConfig::small(1));
//! let extractor = FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
//! let map = extractor.feature_map(&cohort.recordings()[0]);
//! assert_eq!(map.feature_count(), FEATURE_COUNT);
//! assert!(map.window_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod extract;
pub mod importance;
pub mod map;
pub mod quality;
pub mod streaming;

pub use catalog::{FeatureDef, Modality, FEATURE_COUNT};
pub use extract::{extract_window, WindowConfig};
pub use map::{FeatureExtractor, FeatureMap, Normalizer};
pub use quality::{
    assess_map, assess_window, ChannelQuality, MapQuality, QualityAssessor, QualityConfig,
    QualityReport,
};
pub use streaming::StreamingExtractor;
