//! The engine's load-bearing contract: for any request set, any shard
//! count, any cache bound ≥ 1 and any caller thread count, per-request
//! output is bit-identical to a sequential single-tenant
//! `ClearDeployment` serving the same users.

mod common;

use clear_core::deployment::{ClearDeployment, Prediction};
use clear_edge::Device;
use clear_features::FeatureMap;
use clear_serve::{EngineConfig, ServeEngine, ServeError, ServeRequest};
use common::{fixture, labeled_of, lenient, maps_of, nan_map, outcome_key};
use parking_lot::Mutex;

const USERS: usize = 5;

fn user_name(i: usize) -> String {
    format!("user-{i}")
}

/// Builds a deployment/engine pair over the shared bundle and walks both
/// through identical onboarding and personalization, asserting the
/// control-plane outcomes agree along the way.
fn build_pair(shards: usize, cache: usize) -> (ClearDeployment, ServeEngine) {
    let f = fixture();
    let mut dep = ClearDeployment::with_policy(f.bundle.clone(), lenient());
    let engine = ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig {
            shards,
            cache_capacity: cache,
            max_queue_depth: 1024,
            ..EngineConfig::default()
        },
    );
    for i in 0..USERS {
        let user = user_name(i);
        let maps = maps_of(f, i, 0, 2);
        let a = dep.onboard(&user, &maps).expect("onboarding maps");
        let b = engine.onboard(&user, &maps).expect("onboarding maps");
        assert_eq!(a, b, "onboarding outcome diverged for {user}");
    }
    // Two personalized users exercise the fork cache; fine-tuning is
    // deterministic, so both sides adopt the same weights.
    for i in [0, 2] {
        let user = user_name(i);
        let labeled = labeled_of(f, i, 2, 4);
        let a = dep
            .personalize(&user, &labeled, &f.config.finetune)
            .expect("labeled maps");
        let b = engine
            .personalize(&user, &labeled, &f.config.finetune)
            .expect("labeled maps");
        // Bit-level comparison: two labeled maps take the unvalidated
        // path, whose outcome carries a NaN baseline accuracy.
        assert_eq!(
            outcome_key(&a),
            outcome_key(&b),
            "personalization outcome diverged for {user}"
        );
        assert_eq!(dep.is_personalized(&user), engine.is_personalized(&user));
    }
    (dep, engine)
}

/// The mixed request set: two rounds over every user (personalized and
/// cluster-served), one degraded batch with a quarantined window, one
/// empty batch and one unknown user.
fn request_set() -> Vec<(String, Vec<FeatureMap>)> {
    let f = fixture();
    let mut requests = Vec::new();
    for round in 0..2 {
        for i in 0..USERS {
            let mut maps = maps_of(f, i, 4 + round, 6 + round);
            if i == 1 && round == 0 {
                maps.push(nan_map(f));
            }
            requests.push((user_name(i), maps));
        }
    }
    requests.push((user_name(0), Vec::new()));
    requests.push(("ghost".to_string(), maps_of(f, 0, 0, 1)));
    requests
}

fn run(shards: usize, cache: usize, threads: usize) {
    let (mut dep, engine) = build_pair(shards, cache);
    let requests = request_set();

    // Sequential reference: one predict_batch per request, in order.
    let expected: Vec<Option<Vec<Prediction>>> = requests
        .iter()
        .map(|(user, maps)| dep.predict_batch(user, maps).ok())
        .collect();

    // Concurrent engine serving: the request set split across scoped
    // threads, each thread submitting its chunk as one predict_many set.
    let slots: Vec<Mutex<Option<Result<Vec<Prediction>, ServeError>>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    let indexed: Vec<(usize, ServeRequest<'_>)> = requests
        .iter()
        .enumerate()
        .map(|(i, (user, maps))| (i, ServeRequest { user, maps }))
        .collect();
    let chunk = indexed.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for part in indexed.chunks(chunk) {
            let slots = &slots;
            let engine = &engine;
            scope.spawn(move |_| {
                let batch: Vec<ServeRequest<'_>> = part.iter().map(|&(_, r)| r).collect();
                for (&(index, _), result) in part.iter().zip(engine.predict_many(&batch)) {
                    *slots[index].lock() = Some(result);
                }
            });
        }
    })
    .expect("a serving thread panicked");

    for (i, want) in expected.iter().enumerate() {
        let got = slots[i].lock().take().expect("request served");
        match want {
            Some(want) => {
                assert_eq!(
                    &got.expect("sequential path served this"),
                    want,
                    "request {i}"
                );
            }
            None => assert!(got.is_err(), "request {i}: expected an error"),
        }
    }
    for i in 0..USERS {
        let user = user_name(i);
        assert_eq!(
            dep.quarantined_count(&user),
            engine.quarantined_count(&user),
            "quarantine bookkeeping diverged for {user}"
        );
    }
    let stats = engine.cache_stats();
    assert!(
        stats.resident <= stats.capacity,
        "cache bound violated: {stats:?}"
    );
}

#[test]
fn one_shard_tiny_cache_two_threads_matches_sequential() {
    run(1, 1, 2);
}

#[test]
fn three_shards_small_cache_four_threads_matches_sequential() {
    run(3, 2, 4);
}

#[test]
fn eight_shards_roomy_cache_eight_threads_matches_sequential() {
    run(8, 16, 8);
}

#[test]
fn overload_is_a_typed_rejection_and_depth_is_released() {
    let f = fixture();
    let engine = ServeEngine::with_policy(
        f.bundle.clone(),
        lenient(),
        EngineConfig {
            shards: 1,
            cache_capacity: 1,
            max_queue_depth: 1,
        },
    );
    let onboarding = maps_of(f, 0, 0, 1);
    engine.onboard("amy", &onboarding).expect("onboarding maps");
    let target = maps_of(f, 0, 1, 2);
    let requests = [
        ServeRequest {
            user: "amy",
            maps: &target,
        },
        ServeRequest {
            user: "amy",
            maps: &target,
        },
    ];
    // Depth cap 1 on one shard: the first request admits and holds its
    // token for the whole set, so the second must be rejected.
    let results = engine.predict_many(&requests);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(ServeError::Overloaded { .. })));
    // Tokens are released with the set: the next call serves again.
    assert!(engine.predict("amy", &target).is_ok());
}

#[test]
fn device_sized_cache_has_a_positive_bound() {
    let f = fixture();
    let config = EngineConfig::for_device(&f.bundle, Device::CoralTpu);
    assert!(config.cache_capacity >= 1);
    let engine = ServeEngine::new(f.bundle.clone(), config);
    assert_eq!(engine.cache_stats().capacity, config.cache_capacity);
    assert_eq!(engine.cache_stats().resident, 0);
}
