//! The shared serving core: quality-gated inference and validated
//! personalization against a [`ClearBundle`], independent of who owns the
//! user state.
//!
//! [`ClearDeployment`](crate::deployment::ClearDeployment) (single-tenant,
//! `&mut self`, `BTreeMap` registry) and the multi-tenant sharded engine
//! in `clear-serve` serve the exact same pipeline: quarantine check,
//! modality imputation, baseline correction, classifier normalization,
//! one forward pass, confidence/quality gating. Extracting that pipeline
//! here is what makes the engine's sequential-equivalence contract
//! checkable — both callers literally run this code, so any divergence
//! must come from state management, not from the math.
//!
//! Everything here is pure with respect to user state: callers resolve
//! the user's cluster, baseline and (optional) personalized checkpoint
//! first, pass them in a [`ServeContext`], and apply any state updates
//! (quarantine counts, adopted checkpoints) themselves.

use crate::deployment::{
    ClearBundle, DeployError, ModelSource, PersonalizeOutcome, Prediction, ServeTier,
    ServingPolicy,
};
use clear_features::catalog::{modality_count, modality_of};
use clear_features::quality::assess_map;
use clear_features::{FeatureMap, Modality, FEATURE_COUNT};
use clear_nn::data::Dataset;
use clear_nn::loss::{predict_class, softmax};
use clear_nn::network::Network;
use clear_nn::tensor::Tensor;
use clear_nn::train::{self, TrainConfig};
use clear_nn::workspace::Workspace;
use clear_sim::Emotion;

/// Everything [`predict_one_gated`] needs about the requesting user,
/// resolved by the caller from its own registry.
#[derive(Debug, Clone, Copy)]
pub struct ServeContext<'a> {
    /// The cloud artifact being served.
    pub bundle: &'a ClearBundle,
    /// Abstention/imputation thresholds in force.
    pub policy: &'a ServingPolicy,
    /// The user's assigned cluster.
    pub cluster: usize,
    /// The user's physiological baseline (subtracted before inference).
    pub baseline: &'a [f32],
    /// The cluster's raw-space centroid (imputation source), from
    /// [`cluster_raw_centroid`] — computed once per batch by the caller.
    pub centroid: &'a [f32],
    /// The user's personalized checkpoint, when one was adopted.
    pub personalized: Option<&'a Network>,
    /// The cluster's serving checkpoint, when it differs from the base
    /// bundle model — an adopted lifecycle generation, or a shadow
    /// candidate under evaluation. `None` serves
    /// `bundle.models[cluster]`, bit-identical to the pre-lifecycle
    /// path. A personalized checkpoint still wins: user forks are
    /// deltas against the *base* model and survive cluster rollouts.
    pub cluster_model: Option<&'a Network>,
    /// Numeric tier the forward pass runs at. [`ServeTier::Exact`] is
    /// bit-identical to the historical scalar path; [`ServeTier::Fast`]
    /// runs int8 with an automatic exact re-serve on abstention.
    pub tier: ServeTier,
    /// Whether this is a shadow (dual-predict) serve: gating and the
    /// returned prediction are identical, but the `serve.*`
    /// counters are not bumped, so shadow traffic never pollutes the
    /// drift monitor's inputs. Live callers pass `false`.
    pub shadow: bool,
}

/// Applies the confidence/quality gate to a logit vector, returning
/// `(confidence, emotion)`. Shared by the tiered forward passes below so
/// the int8 attempt and the f32 fallback are judged by identical rules.
fn gate_logits(logits: &Tensor, quality: f32, policy: &ServingPolicy) -> (f32, Option<Emotion>) {
    let class = predict_class(logits);
    let probs = softmax(logits.as_slice());
    let confidence = probs.get(class).copied().unwrap_or(0.0);
    let emotion =
        if class <= 1 && confidence >= policy.min_confidence && quality >= policy.min_quality {
            Some(Emotion::from_class_index(class))
        } else {
            None
        };
    (confidence, emotion)
}

/// Computes a user's cluster assignment and baseline from their
/// good-quality onboarding maps: the user vector in raw feature space is
/// the baseline, its normalized form is assigned by the sub-centroid
/// rule. Returns `(cluster, baseline)`.
pub fn assign_cluster(bundle: &ClearBundle, maps: &[FeatureMap]) -> (usize, Vec<f32>) {
    let refs: Vec<&FeatureMap> = maps.iter().collect();
    let raw_vector = clear_features::map::user_vector(&refs);
    let vector = bundle.normalizer.apply_vector(&raw_vector);
    let cluster = bundle.hierarchy.assign(&vector);
    (cluster, raw_vector)
}

/// The cluster's centroid in *raw* feature space, reconstructed from the
/// sub-centroid hierarchy and the normalization statistics. This is the
/// imputation source for dead modality blocks.
pub fn cluster_raw_centroid(bundle: &ClearBundle, cluster: usize) -> Vec<f32> {
    let mean = bundle.normalizer.mean();
    let std = bundle.normalizer.std();
    let fallback = || mean.to_vec();
    if cluster >= bundle.hierarchy.k() {
        return fallback();
    }
    let subs = bundle.hierarchy.sub_centroids(cluster);
    if subs.is_empty() || subs[0].len() != FEATURE_COUNT {
        return fallback();
    }
    if mean.len() != FEATURE_COUNT || std.len() != FEATURE_COUNT {
        return fallback();
    }
    let mut acc = vec![0.0f32; FEATURE_COUNT];
    for sub in subs {
        if sub.len() != FEATURE_COUNT {
            return fallback();
        }
        for (a, &v) in acc.iter_mut().zip(sub) {
            *a += v;
        }
    }
    for (f, a) in acc.iter_mut().enumerate() {
        *a /= subs.len() as f32;
        // De-normalize back into raw feature units.
        *a = *a * std[f] + mean[f];
        if !a.is_finite() {
            *a = mean[f];
        }
    }
    acc
}

/// Validates a feature map's shape against the bundle.
///
/// # Errors
///
/// Returns [`DeployError::BadInput`] on a row- or window-count mismatch.
pub fn check_shape(bundle: &ClearBundle, map: &FeatureMap) -> Result<(), DeployError> {
    if map.feature_count() != FEATURE_COUNT {
        return Err(DeployError::BadInput(
            "feature map row count does not match the catalog",
        ));
    }
    if map.window_count() != bundle.windows {
        return Err(DeployError::BadInput(
            "feature map window count does not match the bundle",
        ));
    }
    Ok(())
}

/// Replaces non-finite entries — and, when `impute` names them, whole
/// dead modality blocks — with the cluster's raw centroid values.
fn sanitized_map(map: &FeatureMap, centroid: &[f32], impute: &[Modality]) -> FeatureMap {
    let w = map.window_count();
    let columns: Vec<Vec<f32>> = (0..w)
        .map(|col| {
            (0..map.feature_count())
                .map(|f| {
                    let v = map.get(f, col);
                    if impute.contains(&modality_of(f)) || !v.is_finite() {
                        centroid[f]
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    FeatureMap::from_columns(&columns)
}

/// Subtracts a per-user baseline vector from every window column.
///
/// # Errors
///
/// Returns [`DeployError::BadInput`] when the baseline length does not
/// match the map's feature count.
fn corrected(map: &FeatureMap, baseline: &[f32]) -> Result<FeatureMap, DeployError> {
    if baseline.len() != map.feature_count() {
        return Err(DeployError::BadInput(
            "baseline length does not match feature count",
        ));
    }
    let w = map.window_count();
    let columns: Vec<Vec<f32>> = (0..w)
        .map(|col| {
            (0..map.feature_count())
                .map(|f| map.get(f, col) - baseline[f])
                .collect()
        })
        .collect();
    Ok(FeatureMap::from_columns(&columns))
}

/// Classifies one feature map through the quality gate: quarantine,
/// imputation, baseline correction, forward pass, abstention floors. The
/// second return value reports whether the window was quarantined (no
/// usable modality) so the caller can update its per-user bookkeeping —
/// this function never touches user state.
///
/// # Errors
///
/// Returns [`DeployError::BadInput`] when the bundle has no model for the
/// context's cluster or the baseline length is wrong.
pub fn predict_one_gated(
    ctx: &ServeContext<'_>,
    map: &FeatureMap,
    ws: &mut Workspace,
) -> Result<(Prediction, bool), DeployError> {
    // Shadow serves are observation-silent: identical bits out, no
    // serve.* counters or spans, so dual-predicted traffic cannot feed
    // back into the drift signals that triggered it.
    let _span = if ctx.shadow {
        clear_obs::SpanGuard::noop()
    } else {
        clear_obs::span(clear_obs::Stage::Predict)
    };
    let mq = assess_map(map);
    let dead = mq.dead_modalities(ctx.policy.min_modality_score);
    if dead.len() == mq.blocks.len() {
        if !ctx.shadow {
            clear_obs::counter_add(clear_obs::counters::QUARANTINES, 1);
        }
        return Ok((
            Prediction {
                emotion: None,
                confidence: 0.0,
                quality: mq.score,
                served_by: None,
                imputed: Vec::new(),
            },
            true,
        ));
    }

    let impute: Vec<Modality> = if ctx.policy.impute_missing {
        dead.clone()
    } else {
        Vec::new()
    };
    // Quality after degradation handling: imputed blocks stop harming
    // the input numerically, but each costs half its feature weight.
    let quality = if dead.is_empty() {
        mq.score
    } else {
        let (mut alive_score, mut alive_weight, mut dead_weight) = (0.0f32, 0.0f32, 0.0f32);
        for b in &mq.blocks {
            let w = modality_count(b.modality) as f32;
            if dead.contains(&b.modality) {
                dead_weight += w;
            } else {
                alive_score += b.score * w;
                alive_weight += w;
            }
        }
        let alive = if alive_weight > 0.0 {
            alive_score / alive_weight
        } else {
            0.0
        };
        let dead_fraction = dead_weight / (alive_weight + dead_weight).max(1.0);
        (alive * (1.0 - 0.5 * dead_fraction)).clamp(0.0, 1.0)
    };

    let mut normalized = corrected(&sanitized_map(map, ctx.centroid, &impute), ctx.baseline)?;
    normalized.normalize(&ctx.bundle.clf_normalizer);
    let x = Tensor::from_vec(
        &[1, FEATURE_COUNT, normalized.window_count()],
        normalized.as_slice().to_vec(),
    );

    // The served network is read-only; all mutable per-call state
    // (activations, LSTM tape) lives in the caller's workspace.
    let (net, served_by) = match (ctx.personalized, ctx.cluster_model) {
        (Some(net), _) => (net, ModelSource::Personalized),
        (None, Some(net)) => (net, ModelSource::Cluster(ctx.cluster)),
        (None, None) => (
            ctx.bundle
                .models
                .get(ctx.cluster)
                .ok_or(DeployError::BadInput("bundle has no model for cluster"))?,
            ModelSource::Cluster(ctx.cluster),
        ),
    };
    let (confidence, emotion) = {
        let logits = net.forward_with(&x, false, ws, ctx.tier.backend().instance());
        gate_logits(logits, quality, ctx.policy)
    };
    let (confidence, emotion) = if ctx.tier == ServeTier::Fast {
        if emotion.is_some() {
            if !ctx.shadow {
                clear_obs::counter_add(clear_obs::counters::SERVE_TIER_INT8, 1);
            }
            (confidence, emotion)
        } else {
            // The int8 result would abstain: re-serve exactly before the
            // abstention stands, so the fast tier never costs a label the
            // exact path would have produced.
            if !ctx.shadow {
                clear_obs::counter_add(clear_obs::counters::SERVE_TIER_F32_FALLBACK, 1);
            }
            let logits = net.forward_with(&x, false, ws, ServeTier::Exact.backend().instance());
            gate_logits(logits, quality, ctx.policy)
        }
    } else {
        (confidence, emotion)
    };
    if !ctx.shadow {
        if !impute.is_empty() {
            clear_obs::counter_add(clear_obs::counters::IMPUTED_MODALITIES, impute.len() as u64);
        }
        if emotion.is_some() {
            clear_obs::counter_add(clear_obs::counters::PREDICTIONS, 1);
        } else {
            clear_obs::counter_add(clear_obs::counters::ABSTENTIONS, 1);
        }
    }
    Ok((
        Prediction {
            emotion,
            confidence,
            quality,
            served_by: Some(served_by),
            imputed: impute,
        },
        false,
    ))
}

/// Fine-tunes the cluster checkpoint on a user's labeled maps with the
/// validation-holdout rollback rule. Returns the outcome and, when the
/// fine-tuned checkpoint was adopted, the checkpoint itself — the caller
/// decides where to store it. User state is never touched here.
///
/// # Errors
///
/// Returns [`DeployError::BadInput`] for an empty or unusable labeled
/// set, maps whose shape does not match the bundle, or a missing cluster
/// model.
pub fn personalize_from(
    bundle: &ClearBundle,
    policy: &ServingPolicy,
    cluster: usize,
    baseline: &[f32],
    labeled: &[(FeatureMap, Emotion)],
    config: &TrainConfig,
) -> Result<(PersonalizeOutcome, Option<Network>), DeployError> {
    if labeled.is_empty() {
        return Err(DeployError::BadInput("personalization needs labeled maps"));
    }
    for (map, _) in labeled {
        check_shape(bundle, map)?;
    }
    let centroid = cluster_raw_centroid(bundle, cluster);

    // Build the classifier-path tensors, dropping fully-dead maps.
    let mut samples: Vec<(Tensor, usize)> = Vec::with_capacity(labeled.len());
    for (map, emotion) in labeled {
        let mq = assess_map(map);
        let dead = mq.dead_modalities(policy.min_modality_score);
        if dead.len() == mq.blocks.len() {
            continue; // quarantined: carries no physiological signal
        }
        let impute: Vec<Modality> = if policy.impute_missing {
            dead
        } else {
            Vec::new()
        };
        let mut normalized = corrected(&sanitized_map(map, &centroid, &impute), baseline)?;
        normalized.normalize(&bundle.clf_normalizer);
        samples.push((
            Tensor::from_vec(
                &[1, FEATURE_COUNT, normalized.window_count()],
                normalized.as_slice().to_vec(),
            ),
            emotion.class_index(),
        ));
    }
    if samples.is_empty() {
        return Err(DeployError::BadInput(
            "no usable labeled maps after quality gating",
        ));
    }

    let base_model = bundle
        .models
        .get(cluster)
        .ok_or(DeployError::BadInput("bundle has no model for cluster"))?;

    let validated = samples.len() >= policy.min_validation_maps.max(2);
    let (train_samples, val_samples) = if validated {
        let n_val = ((samples.len() as f32 * policy.validation_fraction).ceil() as usize)
            .clamp(1, samples.len() - 1);
        let split = samples.len() - n_val;
        let val = samples.split_off(split);
        (samples, val)
    } else {
        (samples, Vec::new())
    };

    let mut train_set = Dataset::new();
    for (x, label) in &train_samples {
        train_set.push(x.clone(), *label);
    }
    // The only weight copy on the personalization path: fine-tuning
    // needs its own mutable parameters. Evaluation reads the shared
    // cluster checkpoint in place.
    let mut net = base_model.clone();
    train::train(&mut net, &train_set, None, config);

    let (adopted, baseline_accuracy, personalized_accuracy) = if validated {
        let mut val_set = Dataset::new();
        for (x, label) in &val_samples {
            val_set.push(x.clone(), *label);
        }
        let base_score = train::evaluate(base_model, &val_set);
        let tuned_score = train::evaluate(&net, &val_set);
        (
            tuned_score.accuracy + 1e-6 >= base_score.accuracy,
            base_score.accuracy,
            tuned_score.accuracy,
        )
    } else {
        // Tiny budgets: adopt unvalidated, report training-set fit.
        let tuned_score = train::evaluate(&net, &train_set);
        (true, f32::NAN, tuned_score.accuracy)
    };

    let checkpoint = if adopted {
        clear_obs::counter_add(clear_obs::counters::PERSONALIZE_ADOPTED, 1);
        Some(net)
    } else {
        clear_obs::counter_add(clear_obs::counters::PERSONALIZE_ROLLED_BACK, 1);
        None
    };
    Ok((
        PersonalizeOutcome {
            adopted,
            validated,
            baseline_accuracy,
            personalized_accuracy,
        },
        checkpoint,
    ))
}
