//! Lloyd's k-means with k-means++ seeding and restarts.

use crate::{centroid_of, distance_sq};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Independent k-means++ restarts; the lowest-inertia run wins.
    pub n_init: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iter: 100,
            n_init: 8,
            seed: 0,
        }
    }
}

/// The k-means estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeans {
    config: KMeansConfig,
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    centroids: Vec<Vec<f32>>,
    assignments: Vec<usize>,
    inertia: f32,
}

impl KMeans {
    /// Creates an estimator with `config`.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Fits the model to `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, `k == 0`, or `k > points.len()`.
    pub fn fit(&self, points: &[Vec<f32>]) -> KMeansModel {
        let k = self.config.k;
        assert!(!points.is_empty(), "k-means needs at least one point");
        assert!(k > 0, "k must be positive");
        assert!(
            k <= points.len(),
            "k ({k}) cannot exceed the number of points ({})",
            points.len()
        );
        let mut best: Option<KMeansModel> = None;
        for restart in 0..self.config.n_init.max(1) {
            let mut rng = SmallRng::seed_from_u64(
                self.config.seed.wrapping_add(restart as u64 * 0x9E37_79B9),
            );
            let model = self.fit_once(points, &mut rng);
            if best.as_ref().map_or(true, |b| model.inertia < b.inertia) {
                best = Some(model);
            }
        }
        best.expect("at least one restart ran")
    }

    fn fit_once(&self, points: &[Vec<f32>], rng: &mut SmallRng) -> KMeansModel {
        let k = self.config.k;
        let mut centroids = plus_plus_init(points, k, rng);
        let mut assignments = vec![0usize; points.len()];
        for _ in 0..self.config.max_iter {
            // Assign.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let nearest = nearest_centroid(p, &centroids);
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            // Update.
            let mut empties = Vec::new();
            for (ci, c) in centroids.iter_mut().enumerate() {
                let members: Vec<&[f32]> = points
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == ci)
                    .map(|(p, _)| p.as_slice())
                    .collect();
                if members.is_empty() {
                    empties.push(ci);
                } else {
                    *c = centroid_of(&members);
                }
            }
            // Re-seed each empty cluster at the point farthest from its
            // assigned centroid (the classic splitting heuristic).
            for ci in empties {
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        let da = distance_sq(p, &centroids[assignments[*i]]);
                        let db = distance_sq(q, &centroids[assignments[*j]]);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[ci] = points[far].clone();
                changed = true;
            }
            if !changed {
                break;
            }
        }
        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| distance_sq(p, &centroids[a]))
            .sum();
        KMeansModel {
            centroids,
            assignments,
            inertia,
        }
    }
}

fn plus_plus_init(points: &[Vec<f32>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f32> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| distance_sq(p, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let total: f32 = d2.iter().sum();
        let next = if total <= f32::EPSILON {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(points[next].clone());
    }
    centroids
}

/// Index of the centroid nearest to `p`.
///
/// # Panics
///
/// Panics if `centroids` is empty.
pub fn nearest_centroid(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    assert!(!centroids.is_empty(), "no centroids to compare against");
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = distance_sq(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

impl KMeansModel {
    /// Builds a model directly from centroids (used by the refinement
    /// stage and tests).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty.
    pub fn from_centroids(centroids: Vec<Vec<f32>>, points: &[Vec<f32>]) -> Self {
        assert!(!centroids.is_empty(), "model needs at least one centroid");
        let assignments: Vec<usize> = points
            .iter()
            .map(|p| nearest_centroid(p, &centroids))
            .collect();
        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| distance_sq(p, &centroids[a]))
            .sum();
        Self {
            centroids,
            assignments,
            inertia,
        }
    }

    /// Fitted cluster centers.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Cluster index of each training point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of points to their assigned centroids.
    pub fn inertia(&self) -> f32 {
        self.inertia
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Predicts the cluster of a new point.
    pub fn predict(&self, p: &[f32]) -> usize {
        nearest_centroid(p, &self.centroids)
    }

    /// Indices of training points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four well-separated Gaussian-ish blobs in 2D.
    fn blobs(per: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..per {
                pts.push(vec![
                    c[0] + rng.gen_range(-1.0..1.0f32),
                    c[1] + rng.gen_range(-1.0..1.0f32),
                ]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (pts, labels) = blobs(20, 1);
        let model = KMeans::new(KMeansConfig {
            k: 4,
            ..Default::default()
        })
        .fit(&pts);
        // Every ground-truth blob maps to exactly one cluster.
        for blob in 0..4 {
            let clusters: std::collections::HashSet<usize> = labels
                .iter()
                .zip(model.assignments())
                .filter(|(&l, _)| l == blob)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(clusters.len(), 1, "blob {blob} split across clusters");
        }
    }

    #[test]
    fn assignments_minimize_distance_invariant() {
        let (pts, _) = blobs(15, 2);
        let model = KMeans::new(KMeansConfig {
            k: 4,
            ..Default::default()
        })
        .fit(&pts);
        for (p, &a) in pts.iter().zip(model.assignments()) {
            let da = distance_sq(p, &model.centroids()[a]);
            for c in model.centroids() {
                assert!(da <= distance_sq(p, c) + 1e-4);
            }
        }
    }

    #[test]
    fn centroids_are_member_means() {
        let (pts, _) = blobs(10, 3);
        let model = KMeans::new(KMeansConfig {
            k: 4,
            ..Default::default()
        })
        .fit(&pts);
        for c in 0..model.k() {
            let members = model.members(c);
            if members.is_empty() {
                continue;
            }
            let mpts: Vec<&[f32]> = members.iter().map(|&i| pts[i].as_slice()).collect();
            let mean = centroid_of(&mpts);
            for (a, b) in mean.iter().zip(&model.centroids()[c]) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = blobs(10, 4);
        let cfg = KMeansConfig {
            k: 4,
            seed: 99,
            ..Default::default()
        };
        let a = KMeans::new(cfg).fit(&pts);
        let b = KMeans::new(cfg).fit(&pts);
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0f32], vec![5.0], vec![9.0]];
        let model = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&pts);
        assert!(model.inertia() < 1e-6);
    }

    #[test]
    fn k_one_centroid_is_global_mean() {
        let pts = vec![vec![0.0f32, 0.0], vec![2.0, 2.0], vec![4.0, 4.0]];
        let model = KMeans::new(KMeansConfig {
            k: 1,
            ..Default::default()
        })
        .fit(&pts);
        assert_eq!(model.centroids()[0], vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_larger_than_n_panics() {
        let pts = vec![vec![0.0f32]];
        let _ = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .fit(&pts);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let (pts, _) = blobs(8, 5);
        let model = KMeans::new(KMeansConfig {
            k: 4,
            ..Default::default()
        })
        .fit(&pts);
        for (p, &a) in pts.iter().zip(model.assignments()) {
            assert_eq!(model.predict(p), a);
        }
    }

    #[test]
    fn from_centroids_round_trip() {
        let pts = vec![vec![0.0f32], vec![1.0], vec![10.0], vec![11.0]];
        let model = KMeansModel::from_centroids(vec![vec![0.5], vec![10.5]], &pts);
        assert_eq!(model.assignments(), &[0, 0, 1, 1]);
        assert!((model.inertia() - 1.0).abs() < 1e-5);
        assert_eq!(model.members(0), vec![0, 1]);
    }

    #[test]
    fn identical_points_handled() {
        let pts = vec![vec![1.0f32, 1.0]; 10];
        let model = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&pts);
        assert!(model.inertia() < 1e-6);
        assert_eq!(model.k(), 3);
    }
}
