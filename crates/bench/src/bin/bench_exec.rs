//! Execution-model benchmark: measures the cost structure introduced by
//! the weights/workspace split and writes `BENCH_exec.json` so the perf
//! trajectory is tracked across revisions.
//!
//! Reported numbers:
//!
//! * inference windows/sec with a fresh workspace per call (cold start),
//!   with one reused workspace (allocation-free steady state), and
//!   through the edge `predict_batch` path;
//! * a kernel-backend sweep: windows/sec for every `BackendKind`
//!   (scalar reference, blocked f32, int8) at several batch sizes, plus
//!   the blocked-vs-scalar speedup the vectorized kernels deliver;
//! * CLEAR LOSO validation wall-clock, sequential vs. the parallel fold
//!   driver at 2 and 4 worker threads.
//!
//! The whole run executes with a `clear_obs::Registry` installed, so
//! alongside `BENCH_exec.json` it writes `BENCH_obs.json`: per-stage
//! latency histograms and the serving counters accumulated by the
//! benchmark's LOSO runs plus a short deploy/onboard/predict-batch
//! serving exercise (see `DESIGN.md` §10 for how to read it).

use clear_bench::cli_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::deploy;
use clear_core::evaluation::{clear_folds, clear_folds_parallel};
use clear_edge::{Device, EdgeDeployment};
use clear_features::FeatureMap;
use clear_nn::backend::BackendKind;
use clear_nn::network::cnn_lstm_compact;
use clear_nn::tensor::Tensor;
use clear_nn::workspace::Workspace;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct BackendSweepPoint {
    /// Backend name (`scalar`, `blocked_f32`, `int8`).
    backend: &'static str,
    /// Windows per measured round through one reused workspace.
    batch_size: usize,
    /// Forward passes per second at this backend × batch point.
    windows_per_sec: f32,
}

#[derive(Debug, Serialize)]
struct ExecBench {
    /// Forward passes per second, new workspace every call.
    inference_fresh_ws_per_sec: f32,
    /// Forward passes per second, one reused workspace.
    inference_reused_ws_per_sec: f32,
    /// Windows per second through the edge batch path.
    inference_edge_batch_per_sec: f32,
    /// Windows/sec per inference backend at several batch sizes.
    backend_sweep: Vec<BackendSweepPoint>,
    /// Best blocked-f32 rate over the best scalar rate in the sweep.
    blocked_speedup_x: f32,
    /// Sequential LOSO wall-clock, seconds.
    loso_sequential_secs: f32,
    /// Parallel LOSO wall-clock at 2 threads, seconds.
    loso_parallel2_secs: f32,
    /// Parallel LOSO wall-clock at 4 threads, seconds.
    loso_parallel4_secs: f32,
    /// Folds in the LOSO runs.
    loso_folds: usize,
}

fn windows_per_sec(reps: usize, f: impl FnMut()) -> f32 {
    let mut f = f;
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    reps as f32 / t0.elapsed().as_secs_f32().max(1e-9)
}

fn main() {
    let cli = cli_from_args();

    // Observe everything below: stage latencies and serving counters
    // accumulate into this registry and are exported at the end.
    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    // Inference throughput on the paper-shaped 123×9 window.
    let net = cnn_lstm_compact(123, 9, 2, 1);
    let x = Tensor::from_vec(
        &[1, 123, 9],
        (0..123 * 9).map(|v| (v as f32).sin()).collect(),
    );
    let reps = 2000usize;
    let fresh = windows_per_sec(reps, || {
        let mut ws = Workspace::new();
        let _ = net.forward(&x, false, &mut ws);
    });
    let mut ws = Workspace::new();
    let reused = windows_per_sec(reps, || {
        let _ = net.forward(&x, false, &mut ws);
    });
    let batch: Vec<Tensor> = (0..32)
        .map(|i| {
            Tensor::from_vec(
                &[1, 123, 9],
                (0..123 * 9).map(|v| ((v + i * 7) as f32).cos()).collect(),
            )
        })
        .collect();
    let mut dep = EdgeDeployment::new(net.clone(), Device::CoralTpu, &[1, 123, 9]);
    let t0 = Instant::now();
    let batch_rounds = 100usize;
    for _ in 0..batch_rounds {
        let _ = dep.predict_batch(&batch);
    }
    let edge_batch = (batch_rounds * batch.len()) as f32 / t0.elapsed().as_secs_f32().max(1e-9);
    eprintln!(
        "inference windows/sec: fresh-ws {fresh:.0}, reused-ws {reused:.0}, edge batch {edge_batch:.0}"
    );

    // Kernel-backend sweep: every backend at several batch sizes, all
    // through one reused workspace per point so prepared scratch (packed
    // weights, quantized caches) stays warm the way a serving shard
    // keeps it. Distinct inputs per batch defeat trivial caching.
    let sweep_inputs: Vec<Tensor> = (0..32)
        .map(|i| {
            Tensor::from_vec(
                &[1, 123, 9],
                (0..123 * 9).map(|v| ((v + i * 13) as f32).sin()).collect(),
            )
        })
        .collect();
    let mut backend_sweep = Vec::new();
    for kind in BackendKind::all() {
        for batch_size in [1usize, 8, 32] {
            let mut ws = Workspace::new();
            let rounds = (reps / batch_size).max(1);
            let t0 = Instant::now();
            for _ in 0..rounds {
                for x in &sweep_inputs[..batch_size] {
                    let _ = net.forward_with(x, false, &mut ws, kind.instance());
                }
            }
            let windows_per_sec =
                (rounds * batch_size) as f32 / t0.elapsed().as_secs_f32().max(1e-9);
            eprintln!(
                "backend sweep: {} batch {batch_size}: {windows_per_sec:.0} windows/sec",
                kind.name()
            );
            backend_sweep.push(BackendSweepPoint {
                backend: kind.name(),
                batch_size,
                windows_per_sec,
            });
        }
    }
    let best_rate = |name: &str| {
        backend_sweep
            .iter()
            .filter(|p| p.backend == name)
            .map(|p| p.windows_per_sec)
            .fold(0f32, f32::max)
    };
    let blocked_speedup_x = best_rate("blocked_f32") / best_rate("scalar").max(1e-9);
    eprintln!("backend sweep: blocked_f32 is {blocked_speedup_x:.2}x scalar (best-batch rates)");

    // LOSO wall-clock: a reduced profile (one epoch) so the comparison
    // measures driver scaling rather than epochs of SGD.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let t0 = Instant::now();
    let seq = clear_folds(&data, &config, false, |_, _| {});
    let loso_sequential_secs = t0.elapsed().as_secs_f32();
    let t0 = Instant::now();
    let par2 = clear_folds_parallel(&data, &config, false, 2, |_, _| {});
    let loso_parallel2_secs = t0.elapsed().as_secs_f32();
    let t0 = Instant::now();
    let par4 = clear_folds_parallel(&data, &config, false, 4, |_, _| {});
    let loso_parallel4_secs = t0.elapsed().as_secs_f32();
    assert_eq!(seq, par2, "parallel folds (2 threads) diverged");
    assert_eq!(seq, par4, "parallel folds (4 threads) diverged");
    eprintln!(
        "loso wall-clock: sequential {loso_sequential_secs:.2}s, 2 threads {loso_parallel2_secs:.2}s, 4 threads {loso_parallel4_secs:.2}s ({} folds, bit-identical)",
        seq.folds.len()
    );

    // Serving-path counters: deploy the cloud stage on all but the last
    // subject, onboard the held-out one, and serve a batch that includes
    // an all-NaN map so the quarantine path shows up in the export.
    let subjects = data.subject_ids();
    let (&newcomer, initial) = subjects.split_last().expect("cohort is non-empty");
    let mut deployment = deploy(&data, initial, &config);
    let indices = data.indices_of(newcomer);
    let onboarding: Vec<FeatureMap> = indices
        .iter()
        .take(4)
        .map(|&i| data.maps()[i].clone())
        .collect();
    deployment
        .onboard("bench-user", &onboarding)
        .expect("onboarding maps are non-empty");
    let mut batch: Vec<FeatureMap> = indices
        .iter()
        .skip(4)
        .take(8)
        .map(|&i| data.maps()[i].clone())
        .collect();
    if let Some(template) = batch.first() {
        let nan_columns = vec![vec![f32::NAN; template.feature_count()]; template.window_count()];
        batch.push(FeatureMap::from_columns(&nan_columns));
    }
    let served = deployment
        .predict_batch("bench-user", &batch)
        .expect("bench-user onboarded above");
    eprintln!(
        "serving exercise: {} windows ({} quarantined)",
        served.len(),
        served.iter().filter(|p| p.served_by.is_none()).count()
    );

    let results = ExecBench {
        inference_fresh_ws_per_sec: fresh,
        inference_reused_ws_per_sec: reused,
        inference_edge_batch_per_sec: edge_batch,
        backend_sweep,
        blocked_speedup_x,
        loso_sequential_secs,
        loso_parallel2_secs,
        loso_parallel4_secs,
        loso_folds: seq.folds.len(),
    };
    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_exec.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    clear_obs::uninstall();
}
