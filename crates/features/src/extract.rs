//! Per-window extraction of the 123 catalog features.
//!
//! [`extract_window`] consumes one time-aligned window of the three raw
//! modalities and produces the feature vector in [`crate::catalog::CATALOG`]
//! order. Undefined quantities (e.g. HRV of a window with fewer than two
//! detected beats) are reported as `0.0` so feature maps are always finite —
//! matching the extractor of the paper's reference [18], which imputes
//! missing window features.

use clear_dsp::filter::{detrend, filtfilt, Biquad};
use clear_dsp::peaks::{detect_beats, detect_scr_events, inter_beat_intervals};
use clear_dsp::psd::{welch, WelchConfig};
use clear_dsp::{entropy, hrv, stats};
use clear_sim::SignalConfig;
use serde::{Deserialize, Serialize};

use crate::catalog::FEATURE_COUNT;

/// Sliding-window parameters of the feature-map generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window length in seconds.
    pub window_secs: f32,
    /// Step between window starts in seconds.
    pub step_secs: f32,
}

impl Default for WindowConfig {
    /// 12-second windows advancing by 6 s: a 60 s stimulus yields 9
    /// windows, so the paper-scale cohort produces `123 × 9` feature maps.
    fn default() -> Self {
        Self {
            window_secs: 12.0,
            step_secs: 6.0,
        }
    }
}

impl WindowConfig {
    /// Number of windows a recording of `duration_secs` yields.
    pub fn window_count(&self, duration_secs: f32) -> usize {
        if duration_secs < self.window_secs {
            return 0;
        }
        (((duration_secs - self.window_secs) / self.step_secs).floor() as usize) + 1
    }
}

/// Extracts the 123 features from one aligned window of raw signals.
///
/// `bvp`, `gsr` and `skt` must cover the same time span at the rates given
/// in `signal`. Returns exactly [`FEATURE_COUNT`] finite values in catalog
/// order.
pub fn extract_window(bvp: &[f32], gsr: &[f32], skt: &[f32], signal: &SignalConfig) -> Vec<f32> {
    let mut out = Vec::with_capacity(FEATURE_COUNT);
    gsr_features(gsr, signal.fs_gsr, &mut out);
    debug_assert_eq!(out.len(), crate::catalog::GSR_COUNT);
    bvp_features(bvp, signal.fs_bvp, &mut out);
    debug_assert_eq!(
        out.len(),
        crate::catalog::GSR_COUNT + crate::catalog::BVP_COUNT
    );
    skt_features(skt, &mut out);
    debug_assert_eq!(out.len(), FEATURE_COUNT);
    // Guarantee finiteness: any NaN/inf collapses to 0 (imputation).
    for v in &mut out {
        if !v.is_finite() {
            *v = 0.0;
        }
    }
    out
}

fn gsr_features(gsr: &[f32], fs: f32, out: &mut Vec<f32>) {
    // Raw statistics (10).
    out.push(stats::mean(gsr));
    out.push(stats::std_dev(gsr));
    out.push(stats::min(gsr).unwrap_or(0.0));
    out.push(stats::max(gsr).unwrap_or(0.0));
    out.push(stats::range(gsr));
    out.push(stats::slope(gsr) * fs); // per second
    out.push(stats::mean_abs_diff(gsr));
    out.push(stats::skewness(gsr));
    out.push(stats::kurtosis(gsr));
    out.push(stats::iqr(gsr));

    // Tonic / phasic decomposition at 0.05 Hz. The filter runs on the
    // mean-removed signal (mean restored afterwards) so its zero initial
    // conditions do not eat the DC level within a short window.
    let (tonic, phasic) = match Biquad::butterworth_lowpass(0.05, fs) {
        Ok(lp) => {
            let mean = stats::mean(gsr);
            let centered: Vec<f32> = gsr.iter().map(|v| v - mean).collect();
            let tonic: Vec<f32> = filtfilt(&lp, &centered)
                .into_iter()
                .map(|v| v + mean)
                .collect();
            let phasic: Vec<f32> = gsr.iter().zip(&tonic).map(|(g, t)| g - t).collect();
            (tonic, phasic)
        }
        Err(_) => (gsr.to_vec(), vec![0.0; gsr.len()]),
    };
    // Tonic (4).
    out.push(stats::mean(&tonic));
    out.push(stats::std_dev(&tonic));
    out.push(stats::slope(&tonic) * fs);
    out.push(stats::range(&tonic));
    // Phasic (6).
    out.push(stats::mean(
        &phasic.iter().map(|v| v.abs()).collect::<Vec<_>>(),
    ));
    out.push(stats::std_dev(&phasic));
    out.push(stats::rms(&phasic));
    out.push(stats::energy(&phasic));
    out.push(stats::max(&phasic).unwrap_or(0.0));
    out.push(stats::line_length(&phasic));

    // SCR events (8).
    let events = detect_scr_events(&phasic, fs, 0.04).unwrap_or_default();
    let duration_min = gsr.len() as f32 / fs / 60.0;
    let amps: Vec<f32> = events.iter().map(|e| e.amplitude).collect();
    let rises: Vec<f32> = events.iter().map(|e| e.rise_time).collect();
    let recoveries: Vec<f32> = events.iter().filter_map(|e| e.half_recovery).collect();
    out.push(events.len() as f32);
    out.push(if duration_min > 0.0 {
        events.len() as f32 / duration_min
    } else {
        0.0
    });
    out.push(stats::mean(&amps));
    out.push(stats::max(&amps).unwrap_or(0.0));
    out.push(amps.iter().sum());
    out.push(stats::mean(&rises));
    out.push(stats::mean(&recoveries));
    out.push(if events.is_empty() {
        0.0
    } else {
        recoveries.len() as f32 / events.len() as f32
    });

    // Frequency domain (4).
    let seg = (gsr.len() / 2).clamp(8, 128);
    match welch(gsr, fs, &WelchConfig::with_segment_len(seg)) {
        Ok(psd) => {
            out.push(psd.band_power(0.0, 0.1));
            out.push(psd.band_power(0.1, 0.5));
            out.push(psd.band_power(0.5, 1.0));
            out.push(psd.spectral_centroid());
        }
        Err(_) => out.extend_from_slice(&[0.0; 4]),
    }

    // Non-linear (2).
    out.push(entropy::shannon_entropy(gsr, 16).unwrap_or(0.0));
    let sd = stats::std_dev(gsr);
    out.push(if gsr.len() > 4 && sd > f32::EPSILON {
        entropy::sample_entropy(gsr, 2, 0.2 * sd).unwrap_or(0.0)
    } else {
        0.0
    });
}

fn bvp_features(bvp: &[f32], fs: f32, out: &mut Vec<f32>) {
    // Raw waveform statistics (12).
    let centered = detrend(bvp);
    out.push(stats::mean(bvp));
    out.push(stats::std_dev(bvp));
    out.push(stats::rms(&centered));
    out.push(stats::skewness(bvp));
    out.push(stats::kurtosis(bvp));
    out.push(stats::iqr(bvp));
    out.push(stats::mad(bvp));
    out.push(stats::mean_abs_diff(bvp));
    out.push(stats::line_length(bvp));
    out.push(stats::hjorth_mobility(bvp));
    out.push(stats::hjorth_complexity(bvp));
    out.push(stats::mean_crossings(bvp) as f32 / (bvp.len() as f32 / fs).max(1e-6));

    // Percentiles (5).
    for p in [5.0, 25.0, 50.0, 75.0, 95.0] {
        out.push(stats::percentile(bvp, p).unwrap_or(0.0));
    }

    // Beats and pulse amplitudes (8).
    let beats = detect_beats(bvp, fs).unwrap_or_default();
    let heights: Vec<f32> = beats.iter().map(|&i| bvp[i]).collect();
    out.push(stats::mean(&heights));
    out.push(stats::std_dev(&heights));
    out.push(stats::min(&heights).unwrap_or(0.0));
    out.push(stats::max(&heights).unwrap_or(0.0));
    out.push(stats::range(&heights));
    out.push(stats::slope(&heights));
    let hm = stats::mean(&heights);
    out.push(if hm.abs() > f32::EPSILON {
        stats::std_dev(&heights) / hm
    } else {
        0.0
    });
    out.push(beats.len() as f32);

    // HRV time-domain (8).
    let ibis = inter_beat_intervals(&beats, fs);
    let td = hrv::time_domain(&ibis).unwrap_or_default();
    out.push(td.mean_ibi);
    out.push(td.mean_hr);
    out.push(td.std_hr);
    out.push(td.sdnn);
    out.push(td.rmssd);
    out.push(td.sdsd);
    out.push(td.pnn50);
    out.push(td.pnn20);

    // IBI distribution (6).
    out.push(stats::min(&ibis).unwrap_or(0.0));
    out.push(stats::max(&ibis).unwrap_or(0.0));
    out.push(stats::range(&ibis));
    out.push(stats::skewness(&ibis));
    out.push(stats::kurtosis(&ibis));
    out.push(if td.mean_ibi > f32::EPSILON {
        td.sdnn / td.mean_ibi
    } else {
        0.0
    });

    // Poincaré (3).
    let pc = hrv::poincare(&ibis).unwrap_or_default();
    out.push(pc.sd1);
    out.push(pc.sd2);
    out.push(pc.ratio);

    // Geometric HRV (4).
    out.push(triangular_index(&ibis));
    out.push(tinn(&ibis));
    out.push(std::f32::consts::PI * pc.sd1 * pc.sd2);
    out.push(if pc.sd1 > f32::EPSILON {
        pc.sd2 / pc.sd1
    } else {
        0.0
    });

    // HRV frequency domain (5).
    let beat_times: Vec<f32> = beats.iter().skip(1).map(|&i| i as f32 / fs).collect();
    let fd = hrv::frequency_domain(&beat_times, &ibis).unwrap_or_default();
    out.push(fd.vlf_power);
    out.push(fd.lf_power);
    out.push(fd.hf_power);
    out.push(fd.lf_hf_ratio);
    out.push(fd.lf_normalized);

    // Instantaneous heart-rate dynamics (4).
    let inst_hr: Vec<f32> = ibis.iter().map(|&i| 60.0 / i.max(1e-3)).collect();
    out.push(stats::slope(&inst_hr));
    out.push(stats::min(&inst_hr).unwrap_or(0.0));
    out.push(stats::max(&inst_hr).unwrap_or(0.0));
    out.push(stats::range(&inst_hr));

    // Waveform spectrum (12).
    let seg = (bvp.len() / 2).clamp(32, 512);
    match welch(&centered, fs, &WelchConfig::with_segment_len(seg)) {
        Ok(psd) => {
            let bands = [
                (0.5, 1.0),
                (1.0, 1.5),
                (1.5, 2.0),
                (2.0, 3.0),
                (3.0, 4.0),
                (4.0, 6.0),
            ];
            let mut dominant = 0.0f32;
            for (lo, hi) in bands {
                let p = psd.band_power(lo, hi);
                dominant = dominant.max(p);
                out.push(p);
            }
            out.push(psd.spectral_centroid());
            out.push(psd.spectral_entropy());
            out.push(psd.peak_frequency());
            out.push(psd.rolloff(0.85));
            let total = psd.total_power();
            out.push(total);
            out.push(if total > f32::EPSILON {
                dominant / total
            } else {
                0.0
            });
        }
        Err(_) => out.extend_from_slice(&[0.0; 12]),
    }

    // Derivative statistics (6).
    let d1: Vec<f32> = bvp.windows(2).map(|w| (w[1] - w[0]) * fs).collect();
    let d2: Vec<f32> = d1.windows(2).map(|w| (w[1] - w[0]) * fs).collect();
    out.push(stats::std_dev(&d1));
    out.push(stats::rms(&d1));
    out.push(stats::max(&d1).unwrap_or(0.0));
    out.push(stats::std_dev(&d2));
    out.push(stats::rms(&d2));
    out.push(stats::max(&d2).unwrap_or(0.0));

    // Baseline wander (3).
    let baseline = match Biquad::butterworth_lowpass(0.3, fs) {
        Ok(lp) => filtfilt(&lp, bvp),
        Err(_) => vec![0.0; bvp.len()],
    };
    out.push(stats::slope(&baseline) * fs);
    out.push(stats::std_dev(&baseline));
    out.push(stats::range(&baseline));

    // Non-linear (4).
    out.push(entropy::shannon_entropy(bvp, 16).unwrap_or(0.0));
    let ibi_sd = stats::std_dev(&ibis);
    out.push(if ibis.len() > 4 && ibi_sd > f32::EPSILON {
        entropy::sample_entropy(&ibis, 2, 0.2 * ibi_sd).unwrap_or(0.0)
    } else {
        0.0
    });
    out.push(if ibis.len() > 4 && ibi_sd > f32::EPSILON {
        entropy::approximate_entropy(&ibis, 2, 0.2 * ibi_sd).unwrap_or(0.0)
    } else {
        0.0
    });
    out.push(entropy::petrosian_fd(bvp));

    // Autocorrelation probes (4).
    for lag_secs in [0.25f32, 0.5, 1.0, 1.5] {
        out.push(stats::autocorrelation(bvp, (lag_secs * fs) as usize));
    }
}

fn skt_features(skt: &[f32], out: &mut Vec<f32>) {
    out.push(stats::mean(skt));
    out.push(stats::std_dev(skt));
    out.push(stats::slope(skt) * skt.len() as f32); // total drift over window
    out.push(stats::min(skt).unwrap_or(0.0));
    out.push(stats::max(skt).unwrap_or(0.0));
}

/// HRV triangular index: total IBI count over the modal histogram bin count
/// (standard 1/128 s bins). `0.0` for fewer than 2 intervals.
fn triangular_index(ibis: &[f32]) -> f32 {
    if ibis.len() < 2 {
        return 0.0;
    }
    let counts = ibi_histogram(ibis);
    let max_count = counts.iter().copied().max().unwrap_or(0);
    if max_count == 0 {
        0.0
    } else {
        ibis.len() as f32 / max_count as f32
    }
}

/// TINN proxy: width (seconds) of the occupied span of the IBI histogram.
fn tinn(ibis: &[f32]) -> f32 {
    if ibis.len() < 2 {
        return 0.0;
    }
    let counts = ibi_histogram(ibis);
    let first = counts.iter().position(|&c| c > 0);
    let last = counts.iter().rposition(|&c| c > 0);
    match (first, last) {
        (Some(a), Some(b)) => (b - a + 1) as f32 / 128.0,
        _ => 0.0,
    }
}

fn ibi_histogram(ibis: &[f32]) -> Vec<usize> {
    // 1/128 s bins over 0..2.5 s.
    let mut counts = vec![0usize; 320];
    for &ibi in ibis {
        let bin = ((ibi * 128.0) as usize).min(319);
        counts[bin] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_sim::{Cohort, CohortConfig};

    fn sample_window() -> (Vec<f32>, Vec<f32>, Vec<f32>, SignalConfig) {
        let cohort = Cohort::generate(&CohortConfig::small(42));
        let r = &cohort.recordings()[0];
        let sig = cohort.config().signal;
        let w = WindowConfig::default();
        let nb = (w.window_secs * sig.fs_bvp) as usize;
        let ng = (w.window_secs * sig.fs_gsr) as usize;
        let ns = (w.window_secs * sig.fs_skt) as usize;
        (
            r.bvp[..nb].to_vec(),
            r.gsr[..ng].to_vec(),
            r.skt[..ns].to_vec(),
            sig,
        )
    }

    #[test]
    fn extraction_yields_123_finite_features() {
        let (bvp, gsr, skt, sig) = sample_window();
        let v = extract_window(&bvp, &gsr, &skt, &sig);
        assert_eq!(v.len(), FEATURE_COUNT);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_signals_still_yield_123_zeros_mostly() {
        let sig = SignalConfig::default();
        let v = extract_window(&[], &[], &[], &sig);
        assert_eq!(v.len(), FEATURE_COUNT);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn constant_signals_are_handled() {
        let sig = SignalConfig::default();
        let bvp = vec![1.0f32; 768];
        let gsr = vec![3.0f32; 96];
        let skt = vec![33.0f32; 48];
        let v = extract_window(&bvp, &gsr, &skt, &sig);
        assert_eq!(v.len(), FEATURE_COUNT);
        assert!(v.iter().all(|x| x.is_finite()));
        // gsr_mean and skt_mean are the constants.
        assert!((v[crate::catalog::index_of("gsr_mean").unwrap()] - 3.0).abs() < 1e-4);
        assert!((v[crate::catalog::index_of("skt_mean").unwrap()] - 33.0).abs() < 1e-4);
    }

    #[test]
    fn heart_rate_feature_tracks_generator() {
        let (bvp, gsr, skt, sig) = sample_window();
        let v = extract_window(&bvp, &gsr, &skt, &sig);
        let hr = v[crate::catalog::index_of("hrv_mean_hr").unwrap()];
        assert!(hr > 45.0 && hr < 130.0, "mean hr {hr}");
    }

    #[test]
    fn beat_count_feature_is_plausible() {
        let (bvp, gsr, skt, sig) = sample_window();
        let v = extract_window(&bvp, &gsr, &skt, &sig);
        let beats = v[crate::catalog::index_of("bvp_beat_count").unwrap()];
        // 12 s at 45–130 bpm → 9–26 beats.
        assert!(beats >= 7.0 && beats <= 30.0, "beats {beats}");
    }

    #[test]
    fn window_count_arithmetic() {
        let w = WindowConfig::default();
        assert_eq!(w.window_count(60.0), 9);
        assert_eq!(w.window_count(30.0), 4);
        assert_eq!(w.window_count(12.0), 1);
        assert_eq!(w.window_count(11.0), 0);
    }

    #[test]
    fn triangular_index_and_tinn() {
        let steady = vec![0.8f32; 30];
        assert!((triangular_index(&steady) - 1.0).abs() < 1e-5);
        assert!((tinn(&steady) - 1.0 / 128.0).abs() < 1e-5);
        let spread: Vec<f32> = (0..30).map(|i| 0.6 + 0.01 * i as f32).collect();
        assert!(triangular_index(&spread) > 5.0);
        assert!(tinn(&spread) > 0.2);
        assert_eq!(triangular_index(&[0.8]), 0.0);
    }
}
