//! Internal and external clustering quality indices.
//!
//! The paper selects `K = 4` from a "preliminary analysis [of] the best
//! balance between intra-cluster similarity and inter-cluster separation" —
//! i.e. the standard internal indices implemented here (WCSS/elbow,
//! silhouette, Davies-Bouldin). External agreement indices (adjusted Rand
//! index, purity) score recovered clusters against the simulator's
//! ground-truth archetypes in tests and ablations.

use crate::{distance, distance_sq};

/// Within-cluster sum of squares of a labeled partition.
///
/// # Panics
///
/// Panics if `points.len() != labels.len()`.
pub fn wcss(points: &[Vec<f32>], labels: &[usize], centroids: &[Vec<f32>]) -> f32 {
    assert_eq!(points.len(), labels.len(), "labels must match points");
    points
        .iter()
        .zip(labels)
        .map(|(p, &l)| distance_sq(p, &centroids[l]))
        .sum()
}

/// Mean silhouette coefficient of a partition, in `[-1, 1]`.
///
/// Returns `0.0` when every point sits in one cluster (undefined) or when
/// there are fewer than 2 points.
///
/// # Panics
///
/// Panics if `points.len() != labels.len()`.
pub fn silhouette(points: &[Vec<f32>], labels: &[usize]) -> f32 {
    assert_eq!(points.len(), labels.len(), "labels must match points");
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return 0.0;
    }
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for i in 0..n {
        let own = labels[i];
        // Mean intra-cluster distance a(i) and per-cluster mean distances.
        let mut sums = vec![0.0f32; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += distance(&points[i], &points[j]);
            counts[labels[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f32;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f32)
            .fold(f32::INFINITY, f32::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > f32::EPSILON {
            total += (b - a) / denom;
        }
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

/// Davies-Bouldin index (lower is better).
///
/// Returns `0.0` for degenerate partitions (fewer than 2 non-empty
/// clusters).
///
/// # Panics
///
/// Panics if `points.len() != labels.len()`.
pub fn davies_bouldin(points: &[Vec<f32>], labels: &[usize], centroids: &[Vec<f32>]) -> f32 {
    assert_eq!(points.len(), labels.len(), "labels must match points");
    let k = centroids.len();
    // Per-cluster scatter: mean distance of members to their centroid.
    let mut scatter = vec![0.0f32; k];
    let mut counts = vec![0usize; k];
    for (p, &l) in points.iter().zip(labels) {
        scatter[l] += distance(p, &centroids[l]);
        counts[l] += 1;
    }
    let active: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    if active.len() < 2 {
        return 0.0;
    }
    for c in &active {
        scatter[*c] /= counts[*c] as f32;
    }
    let mut total = 0.0f32;
    for &i in &active {
        let worst = active
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| {
                let sep = distance(&centroids[i], &centroids[j]).max(f32::MIN_POSITIVE);
                (scatter[i] + scatter[j]) / sep
            })
            .fold(0.0f32, f32::max);
        total += worst;
    }
    total / active.len() as f32
}

/// Selects `k` by the elbow rule over WCSS values computed for
/// `k = k_min..=k_max`: the k with the largest curvature (second
/// difference) of the **log**-WCSS curve. The log scale makes the rule
/// insensitive to the absolute magnitude of the first drop, which would
/// otherwise always win.
///
/// `wcss_by_k[i]` must correspond to `k = k_min + i`.
///
/// # Panics
///
/// Panics if fewer than 3 WCSS values are given.
pub fn elbow_k(wcss_by_k: &[f32], k_min: usize) -> usize {
    assert!(
        wcss_by_k.len() >= 3,
        "elbow needs at least 3 candidate k values"
    );
    let logs: Vec<f32> = wcss_by_k.iter().map(|w| w.max(1e-12).ln()).collect();
    let mut best_k = k_min + 1;
    let mut best_curv = f32::NEG_INFINITY;
    for i in 1..logs.len() - 1 {
        let curv = logs[i - 1] - 2.0 * logs[i] + logs[i + 1];
        if curv > best_curv {
            best_curv = curv;
            best_k = k_min + i;
        }
    }
    best_k
}

/// Adjusted Rand index between two labelings, in `[-1, 1]`; `1` means
/// identical partitions (up to relabeling), `≈0` means chance agreement.
///
/// # Panics
///
/// Panics if the labelings have different lengths or are empty.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f32 {
    assert_eq!(a.len(), b.len(), "labelings must have equal length");
    assert!(!a.is_empty(), "labelings must be non-empty");
    let ka = a.iter().copied().max().unwrap() + 1;
    let kb = b.iter().copied().max().unwrap() + 1;
    // Contingency table.
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let comb2 = |n: u64| -> f64 { (n as f64) * (n as f64 - 1.0) / 2.0 };
    let sum_ij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&n| comb2(n))
        .sum();
    let sum_a: f64 = table.iter().map(|row| comb2(row.iter().sum())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| comb2(table.iter().map(|row| row[j]).sum()))
        .sum();
    let total = comb2(a.len() as u64);
    let expected = sum_a * sum_b / total.max(1.0);
    let max_index = (sum_a + sum_b) / 2.0;
    let denom = max_index - expected;
    if denom.abs() < 1e-12 {
        return if (sum_ij - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    ((sum_ij - expected) / denom) as f32
}

/// Purity of predicted clusters against ground truth, in `(0, 1]`: the
/// fraction of points whose cluster's majority truth label matches their
/// own.
///
/// # Panics
///
/// Panics if the labelings have different lengths or are empty.
pub fn purity(predicted: &[usize], truth: &[usize]) -> f32 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "labelings must have equal length"
    );
    assert!(!predicted.is_empty(), "labelings must be non-empty");
    let kp = predicted.iter().copied().max().unwrap() + 1;
    let kt = truth.iter().copied().max().unwrap() + 1;
    let mut table = vec![vec![0usize; kt]; kp];
    for (&p, &t) in predicted.iter().zip(truth) {
        table[p][t] += 1;
    }
    let correct: usize = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    correct as f32 / predicted.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{KMeans, KMeansConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(per: usize, sep: f32, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per {
                pts.push(vec![
                    c as f32 * sep + rng.gen_range(-1.0..1.0f32),
                    rng.gen_range(-1.0..1.0f32),
                ]);
                labels.push(c);
            }
        }
        (pts, labels)
    }

    #[test]
    fn silhouette_high_for_separated_low_for_merged() {
        let (far_pts, far_labels) = blobs(15, 20.0, 1);
        let (near_pts, near_labels) = blobs(15, 1.0, 1);
        let s_far = silhouette(&far_pts, &far_labels);
        let s_near = silhouette(&near_pts, &near_labels);
        assert!(s_far > 0.8, "separated silhouette {s_far}");
        assert!(s_near < s_far);
    }

    #[test]
    fn silhouette_degenerate_cases() {
        assert_eq!(silhouette(&[vec![0.0]], &[0]), 0.0);
        let pts = vec![vec![0.0f32], vec![1.0]];
        assert_eq!(silhouette(&pts, &[0, 0]), 0.0);
    }

    #[test]
    fn davies_bouldin_prefers_separation() {
        let (far_pts, far_labels) = blobs(15, 20.0, 2);
        let (near_pts, near_labels) = blobs(15, 2.0, 2);
        let centroids = |pts: &[Vec<f32>], labels: &[usize]| -> Vec<Vec<f32>> {
            (0..3)
                .map(|c| {
                    let members: Vec<&[f32]> = pts
                        .iter()
                        .zip(labels)
                        .filter(|(_, &l)| l == c)
                        .map(|(p, _)| p.as_slice())
                        .collect();
                    crate::centroid_of(&members)
                })
                .collect()
        };
        let db_far = davies_bouldin(&far_pts, &far_labels, &centroids(&far_pts, &far_labels));
        let db_near = davies_bouldin(&near_pts, &near_labels, &centroids(&near_pts, &near_labels));
        assert!(db_far < db_near);
    }

    #[test]
    fn wcss_decreases_with_k() {
        let (pts, _) = blobs(20, 8.0, 3);
        let mut last = f32::INFINITY;
        for k in 1..=5 {
            let m = KMeans::new(KMeansConfig {
                k,
                ..Default::default()
            })
            .fit(&pts);
            let w = wcss(&pts, m.assignments(), m.centroids());
            assert!(w <= last + 1e-3, "wcss rose at k={k}");
            last = w;
        }
    }

    #[test]
    fn elbow_finds_true_k_on_blobs() {
        let (pts, _) = blobs(25, 15.0, 4); // 3 true clusters
        let wcss_curve: Vec<f32> = (1..=6)
            .map(|k| {
                let m = KMeans::new(KMeansConfig {
                    k,
                    ..Default::default()
                })
                .fit(&pts);
                m.inertia()
            })
            .collect();
        assert_eq!(elbow_k(&wcss_curve, 1), 3);
    }

    #[test]
    fn ari_identical_permuted_and_random() {
        let truth = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let same = truth.clone();
        let permuted = vec![2, 2, 2, 0, 0, 0, 1, 1, 1];
        assert!((adjusted_rand_index(&truth, &same) - 1.0).abs() < 1e-6);
        assert!((adjusted_rand_index(&truth, &permuted) - 1.0).abs() < 1e-6);
        let anti = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        assert!(adjusted_rand_index(&truth, &anti) < 0.1);
    }

    #[test]
    fn purity_bounds_and_known_value() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&[0, 0, 1, 1], &truth), 1.0);
        assert_eq!(purity(&[1, 1, 0, 0], &truth), 1.0); // label-invariant
        assert_eq!(purity(&[0, 0, 0, 0], &truth), 0.5);
        // Mixed cluster: {0,0,1} majority 0 (2 right), {1} right → 3/4.
        assert_eq!(purity(&[0, 0, 0, 1], &truth), 0.75);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ari_length_mismatch_panics() {
        let _ = adjusted_rand_index(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn elbow_too_few_panics() {
        let _ = elbow_k(&[1.0, 0.5], 1);
    }
}
