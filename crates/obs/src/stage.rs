//! The span taxonomy: one [`Stage`] per instrumented pipeline phase.

/// Every timed phase of the CLEAR pipeline. Each stage owns one
/// pre-allocated latency histogram in the registry (key
/// `stage.<name>` in snapshots), so instrumentation sites pay an array
/// index, never a map lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// One zero-phase biquad pass (`clear_dsp::filter::filtfilt`).
    DspFilter,
    /// One linear-interpolation resample (`clear_dsp::resample::resample`).
    DspResample,
    /// One recording → 123×W feature map
    /// (`clear_features::FeatureExtractor::feature_map`).
    FeatureMap,
    /// One refined k-means fit (`clear_clustering::refine::refined_fit`).
    ClusterFit,
    /// One sub-centroid cold-start assignment
    /// (`clear_clustering::hierarchy::ClusterHierarchy::assign`).
    ClusterAssign,
    /// One network forward pass issued by the trainer or evaluator.
    NnForward,
    /// One network backward pass issued by the trainer.
    NnBackward,
    /// One full training epoch (`clear_nn::train::train`).
    TrainEpoch,
    /// One full cloud stage fit (`CloudTraining::fit`).
    CloudFit,
    /// One personalization run (cloud `fine_tune` or deployment
    /// `personalize`).
    Personalize,
    /// One quality-gated single-window prediction
    /// (`ClearDeployment::predict_one`).
    Predict,
    /// One quality-gated batch (`ClearDeployment::predict_batch`).
    PredictBatch,
    /// One onboarding call (`ClearDeployment::onboard`).
    Onboard,
    /// One device-precision inference (`EdgeDeployment` forward).
    EdgeInfer,
    /// One on-device fine-tuning run (`EdgeDeployment::fine_tune`).
    EdgeFineTune,
    /// Time spent waiting to acquire a shard lock in the multi-tenant
    /// serving engine (`clear_serve::ServeEngine`).
    ServeShardWait,
    /// One cross-user batch assembly pass: admission, tenant snapshot
    /// and model hydration for a request set.
    ServeBatchAssembly,
    /// One write-ahead-log append batch, including its fsync
    /// (`clear_durable::Wal::append`).
    WalAppend,
    /// One sealed snapshot serialization and atomic publication
    /// (`clear_durable::EngineSnapshot::save`).
    SnapshotWrite,
    /// One recovery replay: snapshot load plus WAL replay into a fresh
    /// engine (`clear_serve::ServeEngine::recover`).
    RecoverReplay,
    /// One replication shipping round: exporting a leader's WAL suffix
    /// and handing it to the transport (`clear_cluster::ServeCluster`).
    ClusterShip,
    /// One follower catch-up: snapshot transfer plus LSN-suffix replay
    /// into a lagging or freshly seeded member.
    ClusterCatchUp,
    /// One leader failover: promoting the caught-up follower of a dead
    /// leader's partition.
    ClusterFailover,
    /// One raw-signal chunk ingested into a streaming session: buffering,
    /// budget enforcement and incremental window extraction
    /// (`clear_stream::StreamSession::ingest`).
    StreamIngest,
    /// One pump drain: collecting ready feature maps across sessions and
    /// serving them through `ServeEngine::predict_many`
    /// (`clear_stream::StreamPump::drain`).
    StreamPump,
    /// One drift-monitor observation: diffing a counter snapshot into a
    /// window sample and scanning the sliding windows for drift
    /// (`clear_lifecycle::DriftMonitor::observe`).
    LifecycleDriftScan,
    /// One background refit: re-running the clustering stage over
    /// accumulated recent-user summaries to produce a candidate
    /// generation (`clear_lifecycle::Refitter::refit`).
    LifecycleRefit,
    /// One shadow evaluation: dual-predicting live traffic under the
    /// incumbent and candidate models and comparing gated outcomes
    /// (`clear_lifecycle::RolloutController::shadow_eval`).
    LifecycleShadowEval,
    /// One staged rollout step: adopting (or rolling back) one cluster's
    /// candidate model through the serving engine
    /// (`clear_lifecycle::RolloutController`).
    LifecycleRollout,
    /// One anti-entropy scrub of a partition: exchanging per-user state
    /// fingerprints between leader and followers and repairing or
    /// latching replicas that disagree (`clear_cluster::ServeCluster::scrub`).
    ClusterScrub,
}

impl Stage {
    /// Snapshot key of this stage's histogram.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::DspFilter => "stage.dsp.filter",
            Stage::DspResample => "stage.dsp.resample",
            Stage::FeatureMap => "stage.features.map",
            Stage::ClusterFit => "stage.cluster.fit",
            Stage::ClusterAssign => "stage.cluster.assign",
            Stage::NnForward => "stage.nn.forward",
            Stage::NnBackward => "stage.nn.backward",
            Stage::TrainEpoch => "stage.nn.epoch",
            Stage::CloudFit => "stage.core.cloud_fit",
            Stage::Personalize => "stage.core.personalize",
            Stage::Predict => "stage.serve.predict",
            Stage::PredictBatch => "stage.serve.predict_batch",
            Stage::Onboard => "stage.serve.onboard",
            Stage::EdgeInfer => "stage.edge.infer",
            Stage::EdgeFineTune => "stage.edge.fine_tune",
            Stage::ServeShardWait => "stage.serve.shard_wait",
            Stage::ServeBatchAssembly => "stage.serve.batch_assembly",
            Stage::WalAppend => "stage.durable.wal_append",
            Stage::SnapshotWrite => "stage.durable.snapshot",
            Stage::RecoverReplay => "stage.durable.recover",
            Stage::ClusterShip => "stage.cluster.ship",
            Stage::ClusterCatchUp => "stage.cluster.catch_up",
            Stage::ClusterFailover => "stage.cluster.failover",
            Stage::StreamIngest => "stage.stream.ingest",
            Stage::StreamPump => "stage.stream.pump",
            Stage::LifecycleDriftScan => "stage.lifecycle.drift_scan",
            Stage::LifecycleRefit => "stage.lifecycle.refit",
            Stage::LifecycleShadowEval => "stage.lifecycle.shadow_eval",
            Stage::LifecycleRollout => "stage.lifecycle.rollout",
            Stage::ClusterScrub => "stage.cluster.scrub",
        }
    }

    /// All stages, in histogram-array order.
    pub const fn all() -> &'static [Stage] {
        &[
            Stage::DspFilter,
            Stage::DspResample,
            Stage::FeatureMap,
            Stage::ClusterFit,
            Stage::ClusterAssign,
            Stage::NnForward,
            Stage::NnBackward,
            Stage::TrainEpoch,
            Stage::CloudFit,
            Stage::Personalize,
            Stage::Predict,
            Stage::PredictBatch,
            Stage::Onboard,
            Stage::EdgeInfer,
            Stage::EdgeFineTune,
            Stage::ServeShardWait,
            Stage::ServeBatchAssembly,
            Stage::WalAppend,
            Stage::SnapshotWrite,
            Stage::RecoverReplay,
            Stage::ClusterShip,
            Stage::ClusterCatchUp,
            Stage::ClusterFailover,
            Stage::StreamIngest,
            Stage::StreamPump,
            Stage::LifecycleDriftScan,
            Stage::LifecycleRefit,
            Stage::LifecycleShadowEval,
            Stage::LifecycleRollout,
            Stage::ClusterScrub,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_array_order_matches_discriminants() {
        for (i, s) in Stage::all().iter().enumerate() {
            assert_eq!(*s as usize, i, "{s:?} out of order");
        }
    }

    #[test]
    fn stage_names_are_unique_and_prefixed() {
        let names: Vec<&str> = Stage::all().iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate stage name");
        assert!(names.iter().all(|n| n.starts_with("stage.")));
    }
}
