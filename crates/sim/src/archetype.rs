//! Latent physiological response archetypes.
//!
//! The CLEAR paper's global clustering empirically finds four groups of
//! volunteers (sizes 17/13/7/7). This module encodes four corresponding
//! *generative* archetypes: autonomic phenotypes that differ both in
//! resting physiology (what unsupervised clustering can see in unlabeled
//! data) and in fear-response style (what the per-cluster classifiers
//! exploit). The styles follow the affective-computing literature:
//! cardiac-dominant, electrodermal-dominant, vascular/thermal-dominant and
//! blunted responders.

use serde::{Deserialize, Serialize};

/// Identifier of one of the four canonical archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchetypeId(pub usize);

impl std::fmt::Display for ArchetypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "archetype-{}", self.0)
    }
}

/// Generative parameters of a response archetype.
///
/// Baseline fields describe resting physiology; `*_react` fields describe
/// the change elicited by a unit-intensity fear stimulus. A subject's
/// concrete parameters are drawn around these by
/// [`SubjectProfile::sample`](crate::subject::SubjectProfile::sample).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchetypeParams {
    /// Resting heart rate, beats per minute.
    pub base_hr: f32,
    /// Fractional amplitude of respiratory/LF heart-rate modulation
    /// (drives HRV).
    pub hrv_mod: f32,
    /// Resting tonic skin conductance, µS.
    pub base_tonic_gsr: f32,
    /// Resting spontaneous SCR rate, events per minute.
    pub base_scr_rate: f32,
    /// Resting distal skin temperature, °C.
    pub base_skt: f32,
    /// Resting BVP pulse amplitude (arbitrary photoplethysmograph units).
    pub bvp_amp: f32,

    /// Heart-rate increase under unit fear, bpm.
    pub hr_react: f32,
    /// Multiplicative HRV suppression under unit fear, in `[0, 1)`
    /// (0 = no change).
    pub hrv_suppression: f32,
    /// Additional SCR events per minute under unit fear.
    pub scr_rate_react: f32,
    /// Multiplier on SCR amplitudes under unit fear (1 = no change).
    pub scr_amp_react: f32,
    /// Tonic skin-conductance rise under unit fear, µS.
    pub tonic_gsr_react: f32,
    /// Skin-temperature slope under unit fear, °C per minute (negative =
    /// vasoconstriction cooling).
    pub skt_slope_react: f32,
    /// Multiplier on BVP pulse amplitude under unit fear (vasoconstriction
    /// shrinks the peripheral pulse; < 1 = constriction).
    pub bvp_amp_react: f32,
}

impl ArchetypeParams {
    /// The four canonical archetypes used throughout the reproduction.
    ///
    /// # Panics
    ///
    /// Panics if `id.0 >= 4`.
    pub fn canonical(id: ArchetypeId) -> Self {
        match id.0 {
            // Cardiac-dominant responder: big chronotropic response, strong
            // vagal withdrawal, only mild electrodermal involvement.
            0 => Self {
                base_hr: 68.0,
                hrv_mod: 0.060,
                base_tonic_gsr: 2.2,
                base_scr_rate: 3.0,
                base_skt: 33.5,
                bvp_amp: 1.00,
                hr_react: 14.0,
                hrv_suppression: 0.55,
                scr_rate_react: 3.5,
                scr_amp_react: 1.25,
                tonic_gsr_react: 0.40,
                skt_slope_react: -0.10,
                bvp_amp_react: 0.90,
            },
            // Electrodermal-dominant responder: SCR storms and tonic rise,
            // modest cardiac change.
            1 => Self {
                base_hr: 74.0,
                hrv_mod: 0.042,
                base_tonic_gsr: 4.2,
                base_scr_rate: 6.0,
                base_skt: 32.6,
                bvp_amp: 0.85,
                hr_react: 6.5,
                hrv_suppression: 0.30,
                scr_rate_react: 9.0,
                scr_amp_react: 1.90,
                tonic_gsr_react: 1.00,
                skt_slope_react: -0.05,
                bvp_amp_react: 0.97,
            },
            // Vascular/thermal responder: peripheral vasoconstriction —
            // strong SKT drop and BVP amplitude collapse, moderate HR.
            2 => Self {
                base_hr: 62.0,
                hrv_mod: 0.080,
                base_tonic_gsr: 3.0,
                base_scr_rate: 2.0,
                base_skt: 34.2,
                bvp_amp: 1.20,
                hr_react: 8.0,
                hrv_suppression: 0.35,
                scr_rate_react: 4.0,
                scr_amp_react: 1.35,
                tonic_gsr_react: 0.50,
                skt_slope_react: -0.40,
                bvp_amp_react: 0.60,
            },
            // Freeze responder: fear bradycardia — heart rate *drops* and
            // vagal tone rises under threat (the documented freeze/orienting
            // profile), while electrodermal activity still climbs mildly.
            // This is the archetype that makes one-model-fits-all fail.
            3 => Self {
                base_hr: 81.0,
                hrv_mod: 0.024,
                base_tonic_gsr: 5.6,
                base_scr_rate: 4.5,
                base_skt: 31.8,
                bvp_amp: 0.70,
                hr_react: -5.0,
                hrv_suppression: -0.25,
                scr_rate_react: 2.5,
                scr_amp_react: 1.15,
                tonic_gsr_react: 0.25,
                skt_slope_react: 0.06,
                bvp_amp_react: 1.02,
            },
            other => panic!("archetype id must be < 4, got {other}"),
        }
    }

    /// Number of canonical archetypes.
    pub const COUNT: usize = 4;

    /// All canonical archetypes, in id order.
    pub fn all() -> [Self; Self::COUNT] {
        std::array::from_fn(|i| Self::canonical(ArchetypeId(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_archetypes_exist() {
        let all = ArchetypeParams::all();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn archetypes_differ_pairwise_in_baseline() {
        let all = ArchetypeParams::all();
        for i in 0..4 {
            for j in i + 1..4 {
                let a = &all[i];
                let b = &all[j];
                // Baseline phenotypes must be distinguishable from
                // unlabeled data: resting HR separated by at least 4 bpm
                // or tonic GSR by at least 0.8 µS.
                let hr_gap = (a.base_hr - b.base_hr).abs();
                let gsr_gap = (a.base_tonic_gsr - b.base_tonic_gsr).abs();
                assert!(
                    hr_gap >= 4.0 || gsr_gap >= 0.8,
                    "archetypes {i} and {j} too similar at rest"
                );
            }
        }
    }

    #[test]
    fn response_styles_have_distinct_dominant_channel() {
        let all = ArchetypeParams::all();
        // Cardiac archetype has the largest HR reaction.
        assert!(all[0].hr_react > all[1].hr_react.max(all[2].hr_react).max(all[3].hr_react));
        // Electrodermal archetype has the largest SCR-rate reaction.
        assert!(all[1].scr_rate_react > all[0].scr_rate_react);
        assert!(all[1].scr_rate_react > all[2].scr_rate_react);
        // Vascular archetype has the strongest SKT drop and BVP collapse.
        assert!(all[2].skt_slope_react < all[0].skt_slope_react);
        assert!(all[2].bvp_amp_react < all[0].bvp_amp_react);
        // Blunted archetype is weakest on HR and SCR reactions.
        assert!(all[3].hr_react < all[0].hr_react);
        assert!(all[3].scr_rate_react < all[1].scr_rate_react);
        // And its SKT response direction is inverted (warming).
        assert!(all[3].skt_slope_react > 0.0);
    }

    #[test]
    #[should_panic(expected = "archetype id")]
    fn canonical_out_of_range_panics() {
        let _ = ArchetypeParams::canonical(ArchetypeId(4));
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchetypeId(2).to_string(), "archetype-2");
    }

    #[test]
    fn serde_round_trip() {
        let a = ArchetypeParams::canonical(ArchetypeId(1));
        let json = serde_json::to_string(&a).unwrap();
        let b: ArchetypeParams = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }
}
