//! Descriptive statistics over `f32` slices.
//!
//! These are the time-domain building blocks of the CLEAR feature extractor:
//! central moments, order statistics, signal-energy measures, zero/mean
//! crossings and a least-squares slope. All functions are total over
//! non-empty inputs; empty inputs return [`DspError::EmptyInput`] where a
//! value cannot be defined, or `0.0` where the paper's feature definition
//! treats an empty window as zero activity.

use crate::DspError;

/// Arithmetic mean of `x`.
///
/// Returns `0.0` for an empty slice (an empty window carries zero activity).
///
/// ```
/// assert_eq!(clear_dsp::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f32>() / x.len() as f32
}

/// Population variance (divides by `n`, not `n - 1`).
///
/// ```
/// assert_eq!(clear_dsp::stats::variance(&[1.0, 3.0]), 1.0);
/// ```
pub fn variance(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Population standard deviation.
pub fn std_dev(x: &[f32]) -> f32 {
    variance(x).sqrt()
}

/// Root mean square of the signal.
pub fn rms(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32).sqrt()
}

/// Fisher skewness (third standardized moment). Zero for constant signals.
pub fn skewness(x: &[f32]) -> f32 {
    let s = std_dev(x);
    if x.is_empty() || s < f32::EPSILON {
        return 0.0;
    }
    let m = mean(x);
    let n = x.len() as f32;
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f32>() / n
}

/// Excess kurtosis (fourth standardized moment minus 3). Zero for constant
/// signals; zero for a perfect Gaussian in expectation.
pub fn kurtosis(x: &[f32]) -> f32 {
    let s = std_dev(x);
    if x.is_empty() || s < f32::EPSILON {
        return 0.0;
    }
    let m = mean(x);
    let n = x.len() as f32;
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f32>() / n - 3.0
}

/// Minimum value.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `x` is empty.
pub fn min(x: &[f32]) -> Result<f32, DspError> {
    x.iter()
        .copied()
        .fold(None, |acc: Option<f32>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or(DspError::EmptyInput)
}

/// Maximum value.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `x` is empty.
pub fn max(x: &[f32]) -> Result<f32, DspError> {
    x.iter()
        .copied()
        .fold(None, |acc: Option<f32>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or(DspError::EmptyInput)
}

/// Peak-to-peak range (`max - min`), or `0.0` for an empty slice.
pub fn range(x: &[f32]) -> f32 {
    match (min(x), max(x)) {
        (Ok(lo), Ok(hi)) => hi - lo,
        _ => 0.0,
    }
}

/// Index of the maximum element, `None` when empty. Ties resolve to the
/// first occurrence.
pub fn argmax(x: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element, `None` when empty. Ties resolve to the
/// first occurrence.
pub fn argmin(x: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::BadParameter`] if `p` is outside `[0, 100]` or not finite.
pub fn percentile(x: &[f32], p: f32) -> Result<f32, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) || !p.is_finite() {
        return Err(DspError::BadParameter {
            name: "p",
            reason: "percentile must lie in [0, 100]",
        });
    }
    let mut sorted: Vec<f32> = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f32;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50th percentile).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn median(x: &[f32]) -> Result<f32, DspError> {
    percentile(x, 50.0)
}

/// Interquartile range (75th minus 25th percentile), `0.0` when empty.
pub fn iqr(x: &[f32]) -> f32 {
    match (percentile(x, 75.0), percentile(x, 25.0)) {
        (Ok(q3), Ok(q1)) => q3 - q1,
        _ => 0.0,
    }
}

/// Median absolute deviation from the median, `0.0` when empty.
pub fn mad(x: &[f32]) -> f32 {
    let Ok(med) = median(x) else { return 0.0 };
    let devs: Vec<f32> = x.iter().map(|v| (v - med).abs()).collect();
    median(&devs).unwrap_or(0.0)
}

/// Number of sign changes of the mean-removed signal (mean crossings).
pub fn mean_crossings(x: &[f32]) -> usize {
    if x.len() < 2 {
        return 0;
    }
    let m = mean(x);
    x.windows(2)
        .filter(|w| (w[0] - m).signum() != (w[1] - m).signum() && (w[0] - m) != 0.0)
        .count()
}

/// Number of zero crossings of the raw signal.
pub fn zero_crossings(x: &[f32]) -> usize {
    if x.len() < 2 {
        return 0;
    }
    x.windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[0] != 0.0)
        .count()
}

/// Mean absolute first difference — the average sample-to-sample activity,
/// used by the feature extractor as a roughness measure.
pub fn mean_abs_diff(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / (x.len() - 1) as f32
}

/// Mean absolute second difference.
pub fn mean_abs_diff2(x: &[f32]) -> f32 {
    if x.len() < 3 {
        return 0.0;
    }
    x.windows(3)
        .map(|w| (w[2] - 2.0 * w[1] + w[0]).abs())
        .sum::<f32>()
        / (x.len() - 2) as f32
}

/// Least-squares slope of `x` against sample index (units per sample).
pub fn slope(x: &[f32]) -> f32 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f32;
    let t_mean = (nf - 1.0) / 2.0;
    let x_mean = mean(x);
    let mut num = 0.0f32;
    let mut den = 0.0f32;
    for (i, &v) in x.iter().enumerate() {
        let dt = i as f32 - t_mean;
        num += dt * (v - x_mean);
        den += dt * dt;
    }
    if den < f32::EPSILON {
        0.0
    } else {
        num / den
    }
}

/// Normalized autocorrelation at integer `lag`.
///
/// Returns `0.0` when the lag exceeds the series length or the signal is
/// constant (autocorrelation undefined).
pub fn autocorrelation(x: &[f32], lag: usize) -> f32 {
    let n = x.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(x);
    let var = variance(x) * n as f32;
    if var < f32::EPSILON {
        return 0.0;
    }
    let mut acc = 0.0f32;
    for i in 0..n - lag {
        acc += (x[i] - m) * (x[i + lag] - m);
    }
    acc / var
}

/// Pearson correlation between two equal-length series.
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when the lengths differ and
/// [`DspError::EmptyInput`] when either slice is empty.
pub fn pearson(x: &[f32], y: &[f32]) -> Result<f32, DspError> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if x.len() != y.len() {
        return Err(DspError::BadLength {
            expected: "two series of equal length",
            actual: y.len(),
        });
    }
    let mx = mean(x);
    let my = mean(y);
    let mut num = 0.0f32;
    let mut dx = 0.0f32;
    let mut dy = 0.0f32;
    for (&a, &b) in x.iter().zip(y) {
        num += (a - mx) * (b - my);
        dx += (a - mx) * (a - mx);
        dy += (b - my) * (b - my);
    }
    let den = (dx * dy).sqrt();
    if den < f32::EPSILON {
        Ok(0.0)
    } else {
        Ok(num / den)
    }
}

/// Total signal energy, `Σ x[i]²`.
pub fn energy(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum()
}

/// Line length, `Σ |x[i+1] - x[i]|` — a standard biosignal activity measure.
pub fn line_length(x: &[f32]) -> f32 {
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Hjorth mobility: `std(dx) / std(x)`; `0.0` for constant signals.
pub fn hjorth_mobility(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    let sx = std_dev(x);
    if sx < f32::EPSILON {
        return 0.0;
    }
    let dx: Vec<f32> = x.windows(2).map(|w| w[1] - w[0]).collect();
    std_dev(&dx) / sx
}

/// Hjorth complexity: `mobility(dx) / mobility(x)`; `0.0` when undefined.
pub fn hjorth_complexity(x: &[f32]) -> f32 {
    if x.len() < 3 {
        return 0.0;
    }
    let mob = hjorth_mobility(x);
    if mob < f32::EPSILON {
        return 0.0;
    }
    let dx: Vec<f32> = x.windows(2).map(|w| w[1] - w[0]).collect();
    hjorth_mobility(&dx) / mob
}

/// Z-score normalization: returns `(x - mean) / std`, or a zero vector when
/// the signal is constant.
pub fn zscore(x: &[f32]) -> Vec<f32> {
    let m = mean(x);
    let s = std_dev(x);
    if s < f32::EPSILON {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-5;

    #[test]
    fn mean_variance_std_of_known_series() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < EPS);
        assert!((variance(&x) - 4.0).abs() < EPS);
        assert!((std_dev(&x) - 2.0).abs() < EPS);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(range(&[]), 0.0);
        assert_eq!(min(&[]), Err(DspError::EmptyInput));
        assert_eq!(median(&[]), Err(DspError::EmptyInput));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn skewness_sign_matches_asymmetry() {
        let right_tail = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left_tail = [-10.0, 1.0, 1.0, 1.0, 1.0];
        assert!(skewness(&right_tail) > 0.5);
        assert!(skewness(&left_tail) < -0.5);
        assert_eq!(skewness(&[3.0; 8]), 0.0);
    }

    #[test]
    fn kurtosis_of_constant_is_zero() {
        assert_eq!(kurtosis(&[1.0; 16]), 0.0);
    }

    #[test]
    fn kurtosis_heavy_tail_positive() {
        let mut x = vec![0.0f32; 64];
        x[0] = 20.0;
        x[63] = -20.0;
        assert!(kurtosis(&x) > 1.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&x, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&x, 100.0).unwrap(), 5.0);
        assert_eq!(median(&x).unwrap(), 3.0);
        assert!(percentile(&x, 101.0).is_err());
        assert!(percentile(&x, -0.1).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let x = [0.0, 10.0];
        assert!((percentile(&x, 25.0).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn iqr_and_mad_of_uniform_grid() {
        let x: Vec<f32> = (0..101).map(|i| i as f32).collect();
        assert!((iqr(&x) - 50.0).abs() < EPS);
        assert!((mad(&x) - 25.0).abs() < EPS);
    }

    #[test]
    fn crossings_counts() {
        let x = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(zero_crossings(&x), 3);
        assert_eq!(mean_crossings(&x), 3);
        // Signal entirely above zero never crosses zero but crosses its mean.
        let y = [1.0, 3.0, 1.0, 3.0];
        assert_eq!(zero_crossings(&y), 0);
        assert_eq!(mean_crossings(&y), 3);
    }

    #[test]
    fn slope_recovers_linear_trend() {
        let x: Vec<f32> = (0..50).map(|i| 0.5 * i as f32 + 3.0).collect();
        assert!((slope(&x) - 0.5).abs() < 1e-4);
        assert_eq!(slope(&[7.0]), 0.0);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let x: Vec<f32> = (0..128)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 16.0).sin())
            .collect();
        assert!(autocorrelation(&x, 0) > 0.999);
        assert!(autocorrelation(&x, 16) > 0.8); // one full period
        assert!(autocorrelation(&x, 8) < -0.8); // anti-phase
        assert_eq!(autocorrelation(&x, 1000), 0.0);
    }

    #[test]
    fn pearson_correlation_known_cases() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < EPS);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < EPS);
        assert!(pearson(&x, &[1.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
    }

    #[test]
    fn hjorth_parameters_behave() {
        let slow: Vec<f32> = (0..256)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 128.0).sin())
            .collect();
        let fast: Vec<f32> = (0..256)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 8.0).sin())
            .collect();
        assert!(hjorth_mobility(&fast) > hjorth_mobility(&slow));
        assert_eq!(hjorth_mobility(&[1.0; 32]), 0.0);
        assert!(hjorth_complexity(&slow) >= 0.0);
    }

    #[test]
    fn zscore_has_zero_mean_unit_std() {
        let x = [1.0, 5.0, 9.0, 2.0, 8.0];
        let z = zscore(&x);
        assert!(mean(&z).abs() < 1e-5);
        assert!((std_dev(&z) - 1.0).abs() < 1e-5);
        assert_eq!(zscore(&[4.0; 5]), vec![0.0; 5]);
    }

    #[test]
    fn diff_measures() {
        let x = [0.0, 1.0, 0.0, 1.0];
        assert!((mean_abs_diff(&x) - 1.0).abs() < EPS);
        assert!((mean_abs_diff2(&x) - 2.0).abs() < EPS);
        assert!((line_length(&x) - 3.0).abs() < EPS);
    }

    #[test]
    fn argmax_argmin_first_tie() {
        let x = [1.0, 3.0, 3.0, 0.0, 0.0];
        assert_eq!(argmax(&x), Some(1));
        assert_eq!(argmin(&x), Some(3));
    }
}
