//! Welch power-spectral-density estimation and band-power features.
//!
//! The frequency-domain features of the CLEAR extractor (BVP spectral bands,
//! GSR low-frequency power, LF/HF HRV ratios) are computed from a Welch PSD:
//! the signal is split into overlapping tapered segments whose periodograms
//! are averaged, trading frequency resolution for variance reduction — the
//! right trade-off for the 60-second physiological windows of the paper.

use crate::fft::{self, Complex32};
use crate::window::WindowKind;
use crate::DspError;

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Bin center frequencies in Hz, ascending, `freqs[0] == 0`.
    pub freqs: Vec<f32>,
    /// Power density per bin, same length as `freqs` (units²/Hz).
    pub power: Vec<f32>,
}

impl Psd {
    /// Total power in the inclusive-exclusive frequency band `[lo, hi)` Hz,
    /// integrated with the rectangle rule.
    ///
    /// Out-of-range bands yield `0.0`.
    pub fn band_power(&self, lo: f32, hi: f32) -> f32 {
        if self.freqs.len() < 2 {
            return 0.0;
        }
        let df = self.freqs[1] - self.freqs[0];
        self.freqs
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= lo && **f < hi)
            .map(|(_, p)| p * df)
            .sum()
    }

    /// Total power across the whole estimated spectrum.
    pub fn total_power(&self) -> f32 {
        self.band_power(0.0, f32::INFINITY)
    }

    /// Frequency of the highest-power bin, excluding DC (bin 0).
    pub fn peak_frequency(&self) -> f32 {
        if self.power.len() < 2 {
            return 0.0;
        }
        let idx = crate::stats::argmax(&self.power[1..]).map_or(0, |i| i + 1);
        self.freqs[idx]
    }

    /// Spectral centroid: the power-weighted mean frequency.
    pub fn spectral_centroid(&self) -> f32 {
        let total: f32 = self.power.iter().sum();
        if total < f32::EPSILON {
            return 0.0;
        }
        self.freqs
            .iter()
            .zip(&self.power)
            .map(|(f, p)| f * p)
            .sum::<f32>()
            / total
    }

    /// Spectral (Shannon) entropy of the normalized PSD, in nats.
    ///
    /// A flat spectrum maximizes it; a single tone minimizes it.
    pub fn spectral_entropy(&self) -> f32 {
        let total: f32 = self.power.iter().sum();
        if total < f32::EPSILON {
            return 0.0;
        }
        -self
            .power
            .iter()
            .map(|p| p / total)
            .filter(|p| *p > f32::EPSILON)
            .map(|p| p * p.ln())
            .sum::<f32>()
    }

    /// Frequency below which `fraction` of the total power lies (spectral
    /// roll-off). `fraction` is clamped to `[0, 1]`.
    pub fn rolloff(&self, fraction: f32) -> f32 {
        let fraction = fraction.clamp(0.0, 1.0);
        let total: f32 = self.power.iter().sum();
        if total < f32::EPSILON {
            return 0.0;
        }
        let target = total * fraction;
        let mut acc = 0.0;
        for (f, p) in self.freqs.iter().zip(&self.power) {
            acc += p;
            if acc >= target {
                return *f;
            }
        }
        *self.freqs.last().unwrap_or(&0.0)
    }
}

/// Configuration for [`welch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchConfig {
    /// Samples per segment (will be zero-padded to a power of two for the
    /// FFT). Must be at least 2.
    pub segment_len: usize,
    /// Overlap between consecutive segments in samples; must be smaller than
    /// `segment_len`. Half-overlap is the classic Welch choice.
    pub overlap: usize,
    /// Taper applied to each segment.
    pub window: WindowKind,
}

impl WelchConfig {
    /// Classic Welch configuration: given segment length, 50 % overlap,
    /// Hann window.
    pub fn with_segment_len(segment_len: usize) -> Self {
        Self {
            segment_len,
            overlap: segment_len / 2,
            window: WindowKind::Hann,
        }
    }
}

impl Default for WelchConfig {
    fn default() -> Self {
        Self::with_segment_len(256)
    }
}

/// Welch PSD estimate of `x` sampled at `fs` Hz.
///
/// Segments that would run past the end of the signal are dropped; if the
/// signal is shorter than one segment, the whole signal forms a single
/// (zero-padded) segment.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal,
/// [`DspError::BadParameter`] when `fs <= 0`, `segment_len < 2`, or
/// `overlap >= segment_len`.
pub fn welch(x: &[f32], fs: f32, config: &WelchConfig) -> Result<Psd, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fs.is_nan() || fs <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rate must be positive",
        });
    }
    if config.segment_len < 2 {
        return Err(DspError::BadParameter {
            name: "segment_len",
            reason: "segments need at least 2 samples",
        });
    }
    if config.overlap >= config.segment_len {
        return Err(DspError::BadParameter {
            name: "overlap",
            reason: "overlap must be smaller than the segment length",
        });
    }

    let seg_len = config.segment_len.min(x.len());
    let nfft = fft::next_pow2(seg_len);
    let step = config.segment_len - config.overlap;
    let win = config.window.coefficients(seg_len);
    let win_norm = win.iter().map(|w| w * w).sum::<f32>();

    let half = nfft / 2;
    let mut accum = vec![0.0f32; half + 1];
    let mut count = 0usize;

    let mut start = 0;
    loop {
        let end = start + seg_len;
        if end > x.len() {
            break;
        }
        let seg = &x[start..end];
        let seg_mean = crate::stats::mean(seg);
        let mut buf: Vec<Complex32> = seg
            .iter()
            .zip(&win)
            .map(|(&v, &w)| Complex32::new((v - seg_mean) * w, 0.0))
            .collect();
        buf.resize(nfft, Complex32::default());
        fft::fft_in_place(&mut buf).expect("nfft is a power of two");
        for (k, a) in accum.iter_mut().enumerate() {
            let scale = if k == 0 || k == half { 1.0 } else { 2.0 };
            *a += scale * buf[k].norm_sqr() / (fs * win_norm);
        }
        count += 1;
        if step == 0 {
            break;
        }
        start += step;
    }
    if count == 0 {
        // Signal shorter than one segment: single zero-padded segment.
        let seg = x;
        let win = config.window.coefficients(seg.len());
        let win_norm: f32 = win.iter().map(|w| w * w).sum();
        let seg_mean = crate::stats::mean(seg);
        let mut buf: Vec<Complex32> = seg
            .iter()
            .zip(&win)
            .map(|(&v, &w)| Complex32::new((v - seg_mean) * w, 0.0))
            .collect();
        buf.resize(nfft, Complex32::default());
        fft::fft_in_place(&mut buf).expect("nfft is a power of two");
        for (k, a) in accum.iter_mut().enumerate() {
            let scale = if k == 0 || k == half { 1.0 } else { 2.0 };
            *a += scale * buf[k].norm_sqr() / (fs * win_norm.max(f32::EPSILON));
        }
        count = 1;
    }

    let power: Vec<f32> = accum.into_iter().map(|p| p / count as f32).collect();
    let freqs: Vec<f32> = (0..=half)
        .map(|k| fft::bin_frequency(k, nfft, fs))
        .collect();
    Ok(Psd { freqs, power })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f32, f0: f32, amp: f32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| amp * (2.0 * std::f32::consts::PI * f0 * i as f32 / fs).sin())
            .collect()
    }

    #[test]
    fn welch_locates_tone_frequency() {
        let fs = 64.0;
        let x = tone(fs, 8.0, 1.0, 1024);
        let psd = welch(&x, fs, &WelchConfig::with_segment_len(256)).unwrap();
        assert!((psd.peak_frequency() - 8.0).abs() < 0.5);
    }

    #[test]
    fn band_power_concentrates_around_tone() {
        let fs = 64.0;
        let x = tone(fs, 8.0, 2.0, 2048);
        let psd = welch(&x, fs, &WelchConfig::with_segment_len(256)).unwrap();
        let in_band = psd.band_power(7.0, 9.0);
        let out_band = psd.band_power(16.0, 30.0);
        assert!(in_band > 50.0 * out_band.max(1e-9));
        // Total power ≈ A²/2 = 2.0 for a mean-removed tone.
        assert!((psd.total_power() - 2.0).abs() < 0.3);
    }

    #[test]
    fn two_tones_split_between_bands() {
        let fs = 64.0;
        let mut x = tone(fs, 4.0, 1.0, 2048);
        for (v, t) in x.iter_mut().zip(tone(fs, 20.0, 1.0, 2048)) {
            *v += t;
        }
        let psd = welch(&x, fs, &WelchConfig::with_segment_len(256)).unwrap();
        let low = psd.band_power(3.0, 5.0);
        let high = psd.band_power(19.0, 21.0);
        assert!((low - high).abs() < 0.2 * low.max(high));
    }

    #[test]
    fn spectral_entropy_orders_tone_below_noise() {
        let fs = 64.0;
        let x = tone(fs, 8.0, 1.0, 1024);
        // Deterministic wideband signal: sum of many incommensurate tones.
        let noise: Vec<f32> = (0..1024)
            .map(|i| {
                (1..20)
                    .map(|k| ((i * k) as f32 * 0.517 + k as f32).sin())
                    .sum::<f32>()
            })
            .collect();
        let cfg = WelchConfig::with_segment_len(256);
        let e_tone = welch(&x, fs, &cfg).unwrap().spectral_entropy();
        let e_noise = welch(&noise, fs, &cfg).unwrap().spectral_entropy();
        assert!(e_noise > e_tone);
    }

    #[test]
    fn centroid_and_rolloff_track_tone() {
        let fs = 64.0;
        let x = tone(fs, 10.0, 1.0, 2048);
        let psd = welch(&x, fs, &WelchConfig::with_segment_len(512)).unwrap();
        assert!((psd.spectral_centroid() - 10.0).abs() < 1.5);
        let r = psd.rolloff(0.9);
        assert!(r >= 9.0 && r <= 12.0, "rolloff {r}");
    }

    #[test]
    fn short_signal_single_segment_fallback() {
        let x = tone(32.0, 4.0, 1.0, 40); // shorter than default 256 segment
        let psd = welch(&x, 32.0, &WelchConfig::default()).unwrap();
        assert!(!psd.power.is_empty());
        assert!((psd.peak_frequency() - 4.0).abs() < 1.5);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let x = vec![0.0f32; 64];
        assert!(welch(&[], 32.0, &WelchConfig::default()).is_err());
        assert!(welch(&x, 0.0, &WelchConfig::default()).is_err());
        assert!(welch(
            &x,
            32.0,
            &WelchConfig {
                segment_len: 1,
                overlap: 0,
                window: WindowKind::Hann
            }
        )
        .is_err());
        assert!(welch(
            &x,
            32.0,
            &WelchConfig {
                segment_len: 32,
                overlap: 32,
                window: WindowKind::Hann
            }
        )
        .is_err());
    }

    #[test]
    fn band_power_outside_range_is_zero() {
        let x = tone(64.0, 8.0, 1.0, 512);
        let psd = welch(&x, 64.0, &WelchConfig::with_segment_len(128)).unwrap();
        assert_eq!(psd.band_power(100.0, 200.0), 0.0);
    }
}
