//! Cohort preparation: raw recordings → feature maps, indexed by subject.

use crate::config::ClearConfig;
use clear_features::{FeatureExtractor, FeatureMap, Normalizer};
use clear_nn::data::Dataset;
use clear_nn::tensor::Tensor;
use clear_sim::{Cohort, Emotion, SubjectId};

/// A cohort with every recording already reduced to its `123 × W` feature
/// map, plus subject-level indexing helpers used by the LOSO harnesses.
#[derive(Debug, Clone)]
pub struct PreparedCohort {
    cohort: Cohort,
    maps: Vec<FeatureMap>,
    windows: usize,
}

impl PreparedCohort {
    /// Generates the synthetic cohort of `config` and extracts all feature
    /// maps. This is the expensive one-time preprocessing step (the
    /// paper's "approximately 800 feature maps").
    pub fn prepare(config: &ClearConfig) -> Self {
        let cohort = Cohort::generate(&config.cohort);
        let extractor = FeatureExtractor::new(config.cohort.signal, config.window);
        let maps = extractor.feature_maps(cohort.recordings());
        let windows = maps.first().map_or(0, FeatureMap::window_count);
        Self {
            cohort,
            maps,
            windows,
        }
    }

    /// Extracts feature maps for an externally generated `cohort` — e.g.
    /// a drifted phase from [`clear_sim::DriftScenario`] — using the
    /// windowing of `config`. [`PreparedCohort::prepare`] is equivalent
    /// to calling this on `Cohort::generate(&config.cohort)`.
    pub fn prepare_from(cohort: Cohort, config: &ClearConfig) -> Self {
        let extractor = FeatureExtractor::new(cohort.config().signal, config.window);
        let maps = extractor.feature_maps(cohort.recordings());
        let windows = maps.first().map_or(0, FeatureMap::window_count);
        Self {
            cohort,
            maps,
            windows,
        }
    }

    /// The underlying cohort (roster, ground truth).
    pub fn cohort(&self) -> &Cohort {
        &self.cohort
    }

    /// Feature-map windows per recording (`W`).
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// All subject ids, ascending.
    pub fn subject_ids(&self) -> Vec<SubjectId> {
        self.cohort
            .subjects()
            .iter()
            .map(|s| SubjectId(s.id))
            .collect()
    }

    /// Indices (into the recording/map arrays) of one subject's data.
    pub fn indices_of(&self, subject: SubjectId) -> Vec<usize> {
        self.cohort
            .recordings()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.subject == subject)
            .map(|(i, _)| i)
            .collect()
    }

    /// The feature map and label of recording `index`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn map_and_label(&self, index: usize) -> (&FeatureMap, Emotion) {
        (&self.maps[index], self.cohort.recordings()[index].emotion)
    }

    /// All feature maps, parallel to `cohort().recordings()`.
    pub fn maps(&self) -> &[FeatureMap] {
        &self.maps
    }

    /// Fits a normalizer on the maps of `subjects` only (training-side
    /// statistics; evaluation subjects must stay unseen).
    ///
    /// # Panics
    ///
    /// Panics if `subjects` contributes no maps.
    pub fn fit_normalizer(&self, subjects: &[SubjectId]) -> Normalizer {
        let refs: Vec<&FeatureMap> = subjects
            .iter()
            .flat_map(|&s| self.indices_of(s))
            .map(|i| &self.maps[i])
            .collect();
        Normalizer::fit(&refs)
    }

    /// Normalized per-user feature vector (mean column over the subject's
    /// selected map indices).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn user_vector(&self, indices: &[usize], normalizer: &Normalizer) -> Vec<f32> {
        let refs: Vec<&FeatureMap> = indices.iter().map(|&i| &self.maps[i]).collect();
        normalizer.apply_vector(&clear_features::map::user_vector(&refs))
    }

    /// Builds a normalized NN dataset from recording indices.
    pub fn nn_dataset(&self, indices: &[usize], normalizer: &Normalizer) -> Dataset {
        let mut out = Dataset::new();
        for &i in indices {
            let mut map = self.maps[i].clone();
            map.normalize(normalizer);
            let w = map.window_count();
            let f = map.feature_count();
            let tensor = Tensor::from_vec(&[1, f, w], map.as_slice().to_vec());
            out.push(tensor, self.cohort.recordings()[i].emotion.class_index());
        }
        out
    }

    /// Per-subject physiological baseline: the mean feature column over a
    /// subject's recordings at `indices`. Computing it requires **no
    /// labels** — a deployed device accumulates it from raw data — so the
    /// classification path may subtract it even for brand-new users.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn baseline_vector(&self, indices: &[usize]) -> Vec<f32> {
        let refs: Vec<&FeatureMap> = indices.iter().map(|&i| &self.maps[i]).collect();
        clear_features::map::user_vector(&refs)
    }

    /// Baseline of one subject over *all* their data (the deployed-device
    /// view: raw data is plentiful, labels are scarce).
    pub fn subject_baseline(&self, subject: SubjectId) -> Vec<f32> {
        self.baseline_vector(&self.indices_of(subject))
    }

    /// A feature map with the subject baseline subtracted from every
    /// window column (the per-volunteer baseline correction of the WEMAC
    /// processing chain — classifiers see *changes from personal
    /// baseline*, not absolute levels).
    pub fn corrected_map(&self, index: usize, baseline: &[f32]) -> FeatureMap {
        let map = &self.maps[index];
        let w = map.window_count();
        let mut columns = Vec::with_capacity(w);
        for col in 0..w {
            let column: Vec<f32> = (0..map.feature_count())
                .map(|f| map.get(f, col) - baseline[f])
                .collect();
            columns.push(column);
        }
        FeatureMap::from_columns(&columns)
    }

    /// Fits a normalizer on the *baseline-corrected* maps of `subjects`
    /// (each subject corrected by their own full-data baseline).
    ///
    /// # Panics
    ///
    /// Panics if `subjects` contributes no maps.
    pub fn fit_normalizer_corrected(&self, subjects: &[SubjectId]) -> Normalizer {
        let maps: Vec<FeatureMap> = subjects
            .iter()
            .flat_map(|&s| {
                let baseline = self.subject_baseline(s);
                self.indices_of(s)
                    .into_iter()
                    .map(move |i| self.corrected_map(i, &baseline))
            })
            .collect();
        let refs: Vec<&FeatureMap> = maps.iter().collect();
        Normalizer::fit(&refs)
    }

    /// Builds a baseline-corrected, normalized NN dataset: every map at
    /// `indices` has `baseline` subtracted, then `normalizer` applied.
    pub fn corrected_nn_dataset(
        &self,
        indices: &[usize],
        baseline: &[f32],
        normalizer: &Normalizer,
    ) -> Dataset {
        let mut out = Dataset::new();
        for &i in indices {
            let mut map = self.corrected_map(i, baseline);
            map.normalize(normalizer);
            let w = map.window_count();
            let f = map.feature_count();
            let tensor = Tensor::from_vec(&[1, f, w], map.as_slice().to_vec());
            out.push(tensor, self.cohort.recordings()[i].emotion.class_index());
        }
        out
    }

    /// Union dataset of several subjects, each baseline-corrected by their
    /// own full-data baseline and normalized with `normalizer`.
    pub fn corrected_dataset_for_subjects(
        &self,
        subjects: &[SubjectId],
        normalizer: &Normalizer,
    ) -> Dataset {
        let mut out = Dataset::new();
        for &s in subjects {
            let baseline = self.subject_baseline(s);
            out.extend_from(&self.corrected_nn_dataset(&self.indices_of(s), &baseline, normalizer));
        }
        out
    }

    /// Ground-truth archetype index of a subject (scoring only).
    ///
    /// # Panics
    ///
    /// Panics for an unknown subject.
    pub fn archetype_of(&self, subject: SubjectId) -> usize {
        self.cohort
            .archetype_of(subject)
            .expect("unknown subject")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (ClearConfig, PreparedCohort) {
        let config = ClearConfig::quick(5);
        let data = PreparedCohort::prepare(&config);
        (config, data)
    }

    #[test]
    fn preparation_extracts_one_map_per_recording() {
        let (config, data) = quick();
        assert_eq!(data.maps().len(), config.cohort.total_recordings());
        assert_eq!(data.subject_ids().len(), config.cohort.total_subjects());
        assert!(data.windows() >= 4);
    }

    #[test]
    fn subject_indexing_partitions_recordings() {
        let (config, data) = quick();
        let mut total = 0;
        for s in data.subject_ids() {
            let idx = data.indices_of(s);
            assert_eq!(idx.len(), config.cohort.recordings_per_subject);
            total += idx.len();
            for i in idx {
                assert_eq!(data.cohort().recordings()[i].subject, s);
            }
        }
        assert_eq!(total, data.maps().len());
    }

    #[test]
    fn nn_dataset_shapes_and_labels() {
        let (_, data) = quick();
        let subjects = data.subject_ids();
        let norm = data.fit_normalizer(&subjects);
        let idx = data.indices_of(subjects[0]);
        let ds = data.nn_dataset(&idx, &norm);
        assert_eq!(ds.len(), idx.len());
        let s = &ds.samples()[0];
        assert_eq!(s.input.shape(), &[1, 123, data.windows()]);
        assert!(s.label <= 1);
        // Labels alternate fear / non-fear in the simulator.
        let counts = ds.class_counts();
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn user_vectors_have_feature_dimension() {
        let (_, data) = quick();
        let subjects = data.subject_ids();
        let norm = data.fit_normalizer(&subjects);
        let v = data.user_vector(&data.indices_of(subjects[0]), &norm);
        assert_eq!(v.len(), 123);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn user_vectors_separate_archetypes_better_than_random() {
        // Same-archetype subjects must on average sit closer than
        // different-archetype subjects — the property Global Clustering
        // relies on.
        let (_, data) = quick();
        let subjects = data.subject_ids();
        let norm = data.fit_normalizer(&subjects);
        let vecs: Vec<(usize, Vec<f32>)> = subjects
            .iter()
            .map(|&s| {
                (
                    data.archetype_of(s),
                    data.user_vector(&data.indices_of(s), &norm),
                )
            })
            .collect();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..vecs.len() {
            for j in i + 1..vecs.len() {
                let d = clear_clustering::distance(&vecs[i].1, &vecs[j].1);
                if vecs[i].0 == vecs[j].0 {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&same) < mean(&diff),
            "same-archetype distance {} should be below cross-archetype {}",
            mean(&same),
            mean(&diff)
        );
    }
}
