//! Production deployment artifacts: persisting a trained CLEAR system and
//! onboarding users incrementally.
//!
//! The experiment harnesses re-train everything per fold; a product does
//! not. [`ClearBundle`] is the serializable artifact the cloud ships to
//! devices — normalization statistics, cluster centroids with their
//! internal sub-centroid hierarchy, and the per-cluster checkpoints.
//! [`ClearDeployment`] wraps a bundle at runtime: it onboards new users
//! from unlabeled feature maps, serves per-user predictions, and upgrades
//! users in place when labeled data arrives.

use crate::config::ClearConfig;
use crate::pipeline::CloudTraining;
use clear_clustering::hierarchy::ClusterHierarchy;
use clear_features::{FeatureMap, Normalizer, FEATURE_COUNT};
use clear_nn::data::Dataset;
use clear_nn::loss::predict_class;
use clear_nn::network::Network;
use clear_nn::tensor::Tensor;
use clear_nn::train::TrainConfig;
use clear_sim::Emotion;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors of the deployment layer.
#[derive(Debug)]
pub enum DeployError {
    /// (De)serialization failure.
    Serde(String),
    /// Referenced an unknown user.
    UnknownUser(String),
    /// Input data was unusable (empty, wrong shape).
    BadInput(&'static str),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Serde(e) => write!(f, "bundle serialization failed: {e}"),
            DeployError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            DeployError::BadInput(why) => write!(f, "bad input: {why}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// The serializable cloud artifact: everything a fleet of edge devices
/// needs to run CLEAR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClearBundle {
    /// Normalization statistics of the *raw*-map path (clustering and
    /// cold-start assignment).
    pub normalizer: Normalizer,
    /// Normalization statistics of the classifier path (fit on
    /// baseline-corrected maps).
    pub clf_normalizer: Normalizer,
    /// Internal sub-centroid hierarchy for cold-start assignment.
    pub hierarchy: ClusterHierarchy,
    /// One pre-trained checkpoint per cluster.
    pub models: Vec<Network>,
    /// Feature-map window count the models expect.
    pub windows: usize,
}

impl ClearBundle {
    /// Extracts the shippable bundle from a finished cloud training run.
    pub fn from_cloud(cloud: &CloudTraining) -> Self {
        Self {
            normalizer: cloud.normalizer().clone(),
            clf_normalizer: cloud.clf_normalizer().clone(),
            hierarchy: cloud.hierarchy().clone(),
            models: (0..cloud.cluster_count())
                .map(|c| cloud.model(c).clone())
                .collect(),
            windows: cloud.windows(),
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::Serde`] on serializer failure.
    pub fn to_json(&self) -> Result<String, DeployError> {
        serde_json::to_string(self).map_err(|e| DeployError::Serde(e.to_string()))
    }

    /// Restores a bundle from [`ClearBundle::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::Serde`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self, DeployError> {
        serde_json::from_str(json).map_err(|e| DeployError::Serde(e.to_string()))
    }

    /// Number of clusters in the bundle.
    pub fn cluster_count(&self) -> usize {
        self.models.len()
    }
}

/// One onboarded user's runtime state.
#[derive(Debug, Clone)]
struct UserState {
    cluster: usize,
    /// The user's physiological baseline, accumulated from their unlabeled
    /// data at onboarding; subtracted before classification.
    baseline: Vec<f32>,
    /// Personalized checkpoint once fine-tuned; otherwise the cluster
    /// model serves this user.
    personalized: Option<Network>,
}

/// A runtime CLEAR service: cold-start onboarding, per-user inference and
/// in-place personalization.
#[derive(Debug, Clone)]
pub struct ClearDeployment {
    bundle: ClearBundle,
    users: BTreeMap<String, UserState>,
}

impl ClearDeployment {
    /// Starts a deployment from a cloud bundle.
    pub fn new(bundle: ClearBundle) -> Self {
        Self {
            bundle,
            users: BTreeMap::new(),
        }
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &ClearBundle {
        &self.bundle
    }

    /// Users currently onboarded.
    pub fn user_ids(&self) -> Vec<&str> {
        self.users.keys().map(String::as_str).collect()
    }

    /// Onboards a new user from *unlabeled* feature maps (the cold-start
    /// path): computes their user vector and assigns the closest cluster
    /// by the sub-centroid rule. Returns the assigned cluster.
    ///
    /// Re-onboarding an existing user re-runs assignment and discards any
    /// personalization.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::BadInput`] when `maps` is empty.
    pub fn onboard(&mut self, user: &str, maps: &[FeatureMap]) -> Result<usize, DeployError> {
        if maps.is_empty() {
            return Err(DeployError::BadInput("onboarding needs at least one map"));
        }
        let refs: Vec<&FeatureMap> = maps.iter().collect();
        let raw_vector = clear_features::map::user_vector(&refs);
        let vector = self.bundle.normalizer.apply_vector(&raw_vector);
        let cluster = self.bundle.hierarchy.assign(&vector);
        self.users.insert(
            user.to_string(),
            UserState {
                cluster,
                // The same unlabeled data provides the personal baseline.
                baseline: raw_vector,
                personalized: None,
            },
        );
        Ok(cluster)
    }

    /// The cluster a user was assigned to.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] if the user was never
    /// onboarded.
    pub fn cluster_of(&self, user: &str) -> Result<usize, DeployError> {
        self.users
            .get(user)
            .map(|s| s.cluster)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()))
    }

    /// Whether the user has a personalized (fine-tuned) model.
    pub fn is_personalized(&self, user: &str) -> bool {
        self.users
            .get(user)
            .is_some_and(|s| s.personalized.is_some())
    }

    /// Classifies one feature map for a user, using their personalized
    /// model when available, the cluster model otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] for unknown users.
    pub fn predict(&mut self, user: &str, map: &FeatureMap) -> Result<Emotion, DeployError> {
        let state = self
            .users
            .get(user)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()))?;
        let cluster = state.cluster;
        let mut normalized = corrected(map, &state.baseline);
        normalized.normalize(&self.bundle.clf_normalizer);
        let x = Tensor::from_vec(
            &[1, FEATURE_COUNT, normalized.window_count()],
            normalized.as_slice().to_vec(),
        );
        // Borrow the right network mutably (forward caches activations).
        let state = self.users.get_mut(user).expect("user just looked up");
        let logits = match &mut state.personalized {
            Some(net) => net.forward(&x, false),
            None => self.bundle.models[cluster].forward(&x, false),
        };
        Ok(Emotion::from_class_index(predict_class(&logits)))
    }

    /// Personalizes a user's model from labeled feature maps (the paper's
    /// fine-tuning stage). Subsequent predictions use the new checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] for unknown users and
    /// [`DeployError::BadInput`] for an empty labeled set.
    pub fn personalize(
        &mut self,
        user: &str,
        labeled: &[(FeatureMap, Emotion)],
        config: &TrainConfig,
    ) -> Result<(), DeployError> {
        if labeled.is_empty() {
            return Err(DeployError::BadInput("personalization needs labeled maps"));
        }
        let cluster = self.cluster_of(user)?;
        let baseline = self
            .users
            .get(user)
            .expect("cluster_of verified existence")
            .baseline
            .clone();
        let mut dataset = Dataset::new();
        for (map, emotion) in labeled {
            let mut normalized = corrected(map, &baseline);
            normalized.normalize(&self.bundle.clf_normalizer);
            dataset.push(
                Tensor::from_vec(
                    &[1, FEATURE_COUNT, normalized.window_count()],
                    normalized.as_slice().to_vec(),
                ),
                emotion.class_index(),
            );
        }
        let mut net = self.bundle.models[cluster].clone();
        clear_nn::train::train(&mut net, &dataset, None, config);
        self.users
            .get_mut(user)
            .expect("cluster_of verified existence")
            .personalized = Some(net);
        Ok(())
    }

    /// Drops a user's state (e.g. account deletion — the privacy path).
    ///
    /// Returns whether the user existed.
    pub fn offboard(&mut self, user: &str) -> bool {
        self.users.remove(user).is_some()
    }
}

/// Subtracts a per-user baseline vector from every window column.
fn corrected(map: &FeatureMap, baseline: &[f32]) -> FeatureMap {
    let w = map.window_count();
    let columns: Vec<Vec<f32>> = (0..w)
        .map(|col| {
            (0..map.feature_count())
                .map(|f| map.get(f, col) - baseline[f])
                .collect()
        })
        .collect();
    FeatureMap::from_columns(&columns)
}

/// Convenience: fits the cloud stage and wraps it as a deployment, the
/// one-call path from prepared data to a serving system.
pub fn deploy(
    data: &crate::dataset::PreparedCohort,
    subjects: &[clear_sim::SubjectId],
    config: &ClearConfig,
) -> ClearDeployment {
    let cloud = CloudTraining::fit(data, subjects, config);
    ClearDeployment::new(ClearBundle::from_cloud(&cloud))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PreparedCohort;

    fn deployment() -> (ClearConfig, PreparedCohort, ClearDeployment, Vec<usize>) {
        let config = ClearConfig::quick(17);
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (&newcomer, initial) = subjects.split_last().unwrap();
        let dep = deploy(&data, initial, &config);
        let indices = data.indices_of(newcomer);
        (config, data, dep, indices)
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let (_, _, dep, _) = deployment();
        let json = dep.bundle().to_json().unwrap();
        let restored = ClearBundle::from_json(&json).unwrap();
        assert_eq!(restored.cluster_count(), dep.bundle().cluster_count());
        assert_eq!(restored.windows, dep.bundle().windows);
        assert!(ClearBundle::from_json("{").is_err());
    }

    #[test]
    fn onboarding_and_prediction_flow() {
        let (_, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = indices[..2]
            .iter()
            .map(|&i| data.maps()[i].clone())
            .collect();
        let cluster = dep.onboard("alice", &maps).unwrap();
        assert!(cluster < dep.bundle().cluster_count());
        assert_eq!(dep.cluster_of("alice").unwrap(), cluster);
        assert!(!dep.is_personalized("alice"));
        let emotion = dep.predict("alice", &data.maps()[indices[3]]).unwrap();
        assert!(matches!(emotion, Emotion::Fear | Emotion::NonFear));
        assert_eq!(dep.user_ids(), vec!["alice"]);
    }

    #[test]
    fn personalization_switches_serving_model() {
        let (config, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = indices[..1]
            .iter()
            .map(|&i| data.maps()[i].clone())
            .collect();
        dep.onboard("bob", &maps).unwrap();
        let labeled: Vec<(FeatureMap, Emotion)> = indices[1..4]
            .iter()
            .map(|&i| {
                let (m, e) = data.map_and_label(i);
                (m.clone(), e)
            })
            .collect();
        dep.personalize("bob", &labeled, &config.finetune).unwrap();
        assert!(dep.is_personalized("bob"));
        // Prediction still works through the personalized path.
        let _ = dep.predict("bob", &data.maps()[indices[5]]).unwrap();
        // Offboarding erases the user.
        assert!(dep.offboard("bob"));
        assert!(!dep.offboard("bob"));
        assert!(dep.predict("bob", &data.maps()[indices[5]]).is_err());
    }

    #[test]
    fn unknown_users_and_bad_inputs_error() {
        let (config, data, mut dep, indices) = deployment();
        assert!(dep.cluster_of("nobody").is_err());
        assert!(dep.predict("nobody", &data.maps()[0]).is_err());
        assert!(dep.onboard("empty", &[]).is_err());
        let err = dep.personalize("nobody", &[(data.maps()[indices[0]].clone(), Emotion::Fear)], &config.finetune);
        assert!(err.is_err());
        let msg = dep.cluster_of("nobody").unwrap_err().to_string();
        assert!(msg.contains("nobody"));
    }

    #[test]
    fn reonboarding_resets_personalization() {
        let (config, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("carol", &maps).unwrap();
        let labeled = vec![(data.maps()[indices[1]].clone(), Emotion::NonFear)];
        dep.personalize("carol", &labeled, &config.finetune).unwrap();
        assert!(dep.is_personalized("carol"));
        dep.onboard("carol", &maps).unwrap();
        assert!(!dep.is_personalized("carol"));
    }
}
