//! Cohort assembly: subjects × stimuli → recordings.
//!
//! Mirrors the WEMAC protocol scale: ~44 volunteers (the paper's clusters
//! sum to 17+13+7+7), ~18 one-minute stimulus recordings each, half
//! fear-eliciting, giving ≈ 800 feature maps after extraction — the number
//! the paper reports.

use crate::archetype::ArchetypeId;
use crate::signals::{synth_bvp, synth_gsr, synth_skt, Evocation, SignalConfig};
use crate::stimulus::{EmotionCategory, StimulusProtocol};
use crate::subject::{IdiosyncrasyScale, SubjectProfile};
use crate::Emotion;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stable identifier of a subject within a cohort.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SubjectId(pub usize);

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V{:02}", self.0)
    }
}

/// One stimulus presentation: the raw traces of all three modalities plus
/// ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// The recorded subject.
    pub subject: SubjectId,
    /// Index of the stimulus within the subject's session.
    pub stimulus: usize,
    /// Ground-truth label.
    pub emotion: Emotion,
    /// Categorical emotion of the stimulus, when the cohort was generated
    /// from an explicit [`StimulusProtocol`]; `None` for the fast binary
    /// protocol of [`Cohort::generate`].
    pub category: Option<EmotionCategory>,
    /// Evoked-response intensity of this presentation (hidden from CLEAR).
    pub intensity: f32,
    /// Blood-volume-pulse trace.
    pub bvp: Vec<f32>,
    /// Skin-conductance trace, µS.
    pub gsr: Vec<f32>,
    /// Skin-temperature trace, °C.
    pub skt: Vec<f32>,
}

/// Configuration of a synthetic cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Subjects per archetype, in archetype-id order. The paper's empirical
    /// cluster sizes are 17/13/7/7.
    pub subjects_per_archetype: [usize; 4],
    /// Stimulus recordings per subject (half fear, half non-fear,
    /// interleaved).
    pub recordings_per_subject: usize,
    /// How far subjects deviate from their archetype.
    pub idiosyncrasy: IdiosyncrasyScale,
    /// Fraction of the fear-response pattern leaking into non-fear stimuli
    /// (emotional films are never neutral); this is the main difficulty
    /// knob of the task.
    pub class_overlap: f32,
    /// Sampling rates and stimulus duration.
    pub signal: SignalConfig,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
}

impl CohortConfig {
    /// The paper-scale cohort: 44 subjects (17/13/7/7), 18 recordings each
    /// (792 ≈ the paper's "approximately 800 feature maps").
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            subjects_per_archetype: [17, 13, 7, 7],
            recordings_per_subject: 18,
            idiosyncrasy: IdiosyncrasyScale::default(),
            class_overlap: 0.68,
            signal: SignalConfig::default(),
            seed,
        }
    }

    /// A tiny cohort (2 subjects per archetype, 6 recordings each, short
    /// stimuli) for unit tests and doc tests.
    pub fn small(seed: u64) -> Self {
        Self {
            subjects_per_archetype: [2, 2, 2, 2],
            recordings_per_subject: 6,
            idiosyncrasy: IdiosyncrasyScale::default(),
            class_overlap: 0.68,
            signal: SignalConfig {
                stimulus_secs: 30.0,
                ..SignalConfig::default()
            },
            seed,
        }
    }

    /// Total number of subjects.
    pub fn total_subjects(&self) -> usize {
        self.subjects_per_archetype.iter().sum()
    }

    /// Total number of recordings.
    pub fn total_recordings(&self) -> usize {
        self.total_subjects() * self.recordings_per_subject
    }
}

impl Default for CohortConfig {
    fn default() -> Self {
        Self::paper_scale(2025)
    }
}

/// A generated cohort: the subject roster and all their recordings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cohort {
    config: CohortConfig,
    subjects: Vec<SubjectProfile>,
    recordings: Vec<Recording>,
}

impl Cohort {
    /// Generates a cohort deterministically from `config.seed`.
    ///
    /// Subject order is shuffled so archetypes are not contiguous in id
    /// space (the clustering stage must not be able to cheat on ordering).
    pub fn generate(config: &CohortConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Roster: archetype assignment, shuffled.
        let mut archetype_of: Vec<usize> = config
            .subjects_per_archetype
            .iter()
            .enumerate()
            .flat_map(|(arch, &n)| std::iter::repeat(arch).take(n))
            .collect();
        // Fisher-Yates with the cohort RNG.
        for i in (1..archetype_of.len()).rev() {
            let j = rng.gen_range(0..=i);
            archetype_of.swap(i, j);
        }

        let subjects: Vec<SubjectProfile> = archetype_of
            .iter()
            .enumerate()
            .map(|(id, &arch)| {
                SubjectProfile::sample(id, ArchetypeId(arch), config.idiosyncrasy, &mut rng)
            })
            .collect();

        // Recordings: alternate fear / non-fear stimuli per subject.
        let mut recordings = Vec::with_capacity(config.total_recordings());
        for subject in &subjects {
            let mut srng = SmallRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(subject.id as u64),
            );
            for stim in 0..config.recordings_per_subject {
                let emotion = if stim % 2 == 0 {
                    Emotion::Fear
                } else {
                    Emotion::NonFear
                };
                let intensity = (1.0 + 0.15 * gauss(&mut srng)).clamp(0.4, 1.6);
                let evocation = Evocation { emotion, intensity };
                let bvp = synth_bvp(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                let gsr = synth_gsr(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                let skt = synth_skt(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                recordings.push(Recording {
                    subject: SubjectId(subject.id),
                    stimulus: stim,
                    emotion,
                    category: None,
                    intensity,
                    bvp,
                    gsr,
                    skt,
                });
            }
        }

        Self {
            config: config.clone(),
            subjects,
            recordings,
        }
    }

    /// Generates a cohort whose recordings follow an explicit
    /// [`StimulusProtocol`] — the ten-emotion WEMAC-style session — rather
    /// than the plain alternating binary protocol of [`Cohort::generate`].
    ///
    /// Clip arousal scales each recording's evoked intensity, so e.g. calm
    /// clips are easy negatives while anger clips are hard ones.
    ///
    /// # Panics
    ///
    /// Panics if the protocol length differs from
    /// `config.recordings_per_subject`.
    pub fn generate_with_protocol(config: &CohortConfig, protocol: &StimulusProtocol) -> Self {
        assert_eq!(
            protocol.len(),
            config.recordings_per_subject,
            "protocol length must match recordings_per_subject"
        );
        let mut cohort = Self::generate(config);
        // Regenerate every recording under the protocol's categories and
        // arousal levels (subject roster and seeds are reused, so the
        // population is identical to the fast path's).
        let mut recordings = Vec::with_capacity(config.total_recordings());
        for subject in &cohort.subjects {
            let mut srng = SmallRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(subject.id as u64)
                    ^ 0x5717,
            );
            for (stim, clip) in protocol.clips().iter().enumerate() {
                let emotion = clip.label();
                let base = clip.intensity() / EmotionCategory::Fear.arousal();
                let intensity = (base * (1.0 + 0.15 * gauss(&mut srng))).clamp(0.05, 1.8);
                let evocation = Evocation { emotion, intensity };
                let bvp = synth_bvp(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                let gsr = synth_gsr(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                let skt = synth_skt(
                    subject,
                    &evocation,
                    config.class_overlap,
                    &config.signal,
                    &mut srng,
                );
                recordings.push(Recording {
                    subject: SubjectId(subject.id),
                    stimulus: stim,
                    emotion,
                    category: Some(clip.category),
                    intensity,
                    bvp,
                    gsr,
                    skt,
                });
            }
        }
        cohort.recordings = recordings;
        cohort
    }

    /// Assembles a cohort from pre-built parts (the drift generator
    /// synthesizes its own recordings from shifted profiles).
    pub(crate) fn from_parts(
        config: CohortConfig,
        subjects: Vec<SubjectProfile>,
        recordings: Vec<Recording>,
    ) -> Self {
        Self {
            config,
            subjects,
            recordings,
        }
    }

    /// The configuration this cohort was generated from.
    pub fn config(&self) -> &CohortConfig {
        &self.config
    }

    /// The subject roster, ordered by subject id.
    pub fn subjects(&self) -> &[SubjectProfile] {
        &self.subjects
    }

    /// All recordings, grouped by subject in roster order.
    pub fn recordings(&self) -> &[Recording] {
        &self.recordings
    }

    /// Recordings belonging to one subject.
    pub fn recordings_of(&self, subject: SubjectId) -> Vec<&Recording> {
        self.recordings
            .iter()
            .filter(|r| r.subject == subject)
            .collect()
    }

    /// Ground-truth archetype of a subject (for scoring clustering quality
    /// only — CLEAR itself never sees this).
    pub fn archetype_of(&self, subject: SubjectId) -> Option<ArchetypeId> {
        self.subjects
            .iter()
            .find(|s| s.id == subject.0)
            .map(|s| s.archetype)
    }
}

pub(crate) fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(1e-6..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_has_expected_shape() {
        let config = CohortConfig::small(3);
        let cohort = Cohort::generate(&config);
        assert_eq!(cohort.subjects().len(), 8);
        assert_eq!(cohort.recordings().len(), 48);
        assert_eq!(cohort.config(), &config);
        for (i, s) in cohort.subjects().iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn archetype_counts_match_config() {
        let config = CohortConfig::small(3);
        let cohort = Cohort::generate(&config);
        let mut counts = [0usize; 4];
        for s in cohort.subjects() {
            counts[s.archetype.0] += 1;
        }
        assert_eq!(counts, config.subjects_per_archetype);
    }

    #[test]
    fn archetypes_are_shuffled_across_subject_ids() {
        let config = CohortConfig {
            subjects_per_archetype: [5, 5, 5, 5],
            ..CohortConfig::small(3)
        };
        let cohort = Cohort::generate(&config);
        let order: Vec<usize> = cohort.subjects().iter().map(|s| s.archetype.0).collect();
        let sorted = {
            let mut o = order.clone();
            o.sort_unstable();
            o
        };
        assert_ne!(order, sorted, "roster should not be archetype-sorted");
    }

    #[test]
    fn labels_are_balanced_per_subject() {
        let cohort = Cohort::generate(&CohortConfig::small(5));
        for subject in cohort.subjects() {
            let recs = cohort.recordings_of(SubjectId(subject.id));
            let fear = recs.iter().filter(|r| r.emotion == Emotion::Fear).count();
            assert_eq!(fear, recs.len() / 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = CohortConfig::small(7);
        let a = Cohort::generate(&config);
        let b = Cohort::generate(&config);
        assert_eq!(a.recordings()[0].bvp, b.recordings()[0].bvp);
        assert_eq!(
            a.subjects().iter().map(|s| s.archetype).collect::<Vec<_>>(),
            b.subjects().iter().map(|s| s.archetype).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Cohort::generate(&CohortConfig::small(1));
        let b = Cohort::generate(&CohortConfig::small(2));
        assert_ne!(a.recordings()[0].bvp, b.recordings()[0].bvp);
    }

    #[test]
    fn archetype_lookup() {
        let cohort = Cohort::generate(&CohortConfig::small(9));
        let sid = SubjectId(0);
        assert_eq!(
            cohort.archetype_of(sid),
            Some(cohort.subjects()[0].archetype)
        );
        assert_eq!(cohort.archetype_of(SubjectId(999)), None);
    }

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let config = CohortConfig::paper_scale(1);
        assert_eq!(config.total_subjects(), 44);
        assert_eq!(config.total_recordings(), 792); // ≈ 800 feature maps
    }

    #[test]
    fn recording_traces_have_configured_lengths() {
        let config = CohortConfig::small(11);
        let cohort = Cohort::generate(&config);
        let r = &cohort.recordings()[0];
        assert_eq!(r.bvp.len(), config.signal.bvp_len());
        assert_eq!(r.gsr.len(), config.signal.gsr_len());
        assert_eq!(r.skt.len(), config.signal.skt_len());
    }
}
