//! Streaming-ingestion benchmark: 10,000 concurrent sessions of raw
//! multi-rate signal (SKT 4 Hz … BVP 64 Hz) pumped through one engine,
//! writing `BENCH_stream.json` so the streaming perf trajectory is
//! tracked across revisions.
//!
//! Reported numbers:
//!
//! * ingest throughput — chunks/sec and raw samples/sec across the whole
//!   cohort of sessions at 8 pump workers;
//! * chunk-to-prediction latency — p50/p99/max milliseconds from a map's
//!   final contributing chunk entering `ingest_many` to its predictions
//!   returning from a drain;
//! * peak resident buffer bytes — the single-session watermark against
//!   the edge-model byte budget, and the all-sessions total.
//!
//! The budget invariant is asserted in-process (every session stays under
//! the `clear-edge`-sized byte budget, nothing is shed), so a published
//! BENCH_stream.json implies the bound held for the whole run.

use clear_bench::cli_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, ServingPolicy};
use clear_edge::Device;
use clear_features::FeatureMap;
use clear_serve::{EngineConfig, ServeEngine};
use clear_sim::{chunk_schedule, ChunkSizes, SignalConfig};
use clear_stream::{ChunkIngest, PumpConfig, SessionConfig, StreamPump};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Concurrent streaming sessions.
const SESSIONS: usize = 10_000;
/// Distinct base signals shared across sessions (the sessions are what
/// is under test; 10k distinct signal copies would only stress the
/// harness's memory).
const BASE_STREAMS: usize = 8;
/// Pump worker threads for `ingest_many`.
const THREADS: usize = 8;
/// Pump drain cadence in ticks.
const DRAIN_EVERY: usize = 2;

#[derive(Debug, Serialize)]
struct LatencyStats {
    p50_ms: f32,
    p99_ms: f32,
    max_ms: f32,
}

#[derive(Debug, Serialize)]
struct StreamBench {
    sessions: usize,
    threads: usize,
    ticks: usize,
    chunks: u64,
    samples: u64,
    windows: u64,
    maps: u64,
    predictions: usize,
    elapsed_secs: f32,
    chunks_per_sec: f32,
    samples_per_sec: f32,
    predictions_per_sec: f32,
    chunk_to_prediction: LatencyStats,
    byte_budget: usize,
    min_resident_bytes: usize,
    peak_session_bytes: usize,
    peak_total_resident_bytes: usize,
    shed_dropped_windows: u64,
    shed_rejected_chunks: u64,
    shed_sparse_hop_windows: u64,
}

fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

/// Maps `[lo, hi)` of the subject at `rank` (modulo cohort size).
fn maps_of(data: &PreparedCohort, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect()
}

/// The raw signal of one recording of the subject at `rank` (a recording
/// not used for onboarding, where the subject has enough).
fn raw_stream_of(data: &PreparedCohort, rank: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let pick = 2.min(indices.len() - 1);
    let rec = &data.cohort().recordings()[indices[pick]];
    (rec.bvp.clone(), rec.gsr.clone(), rec.skt.clone())
}

fn counter(snapshot: &clear_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

fn percentile(sorted_ms: &[f32], q: f32) -> f32 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f32 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let cli = cli_from_args();

    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    // Reduced training profile: the benchmark measures streaming, not SGD.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (_, initial) = subjects.split_last().expect("cohort is non-empty");
    let bundle = deploy(&data, initial, &config).bundle().clone();
    let signal = config.cohort.signal;

    // Base signals and per-session seeded arrival schedules.
    let base: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..BASE_STREAMS)
        .map(|rank| raw_stream_of(&data, rank))
        .collect();
    let total = SignalConfig {
        stimulus_secs: base[0].0.len() as f32 / signal.fs_bvp,
        ..signal
    };
    let plans: Vec<Vec<ChunkSizes>> = (0..SESSIONS)
        .map(|j| chunk_schedule(&total, 2.0, 5.0, j as u64))
        .collect();

    // Per-session byte budget from the edge memory model: the GPU
    // activation budget split across all concurrent sessions.
    let session = SessionConfig::new(signal, config.window, bundle.windows)
        .sized_for_device(Device::Gpu, SESSIONS);
    let budget = session.byte_budget;
    eprintln!(
        "{SESSIONS} sessions, {} B budget each (min viable {} B)",
        budget,
        session.min_resident_bytes()
    );

    let engine = Arc::new(ServeEngine::with_policy(
        bundle,
        lenient(),
        EngineConfig {
            shards: 8,
            max_queue_depth: 1024,
            ..EngineConfig::default()
        },
    ));
    let pump = StreamPump::new(engine, PumpConfig::new(session));
    let users: Vec<String> = (0..SESSIONS).map(|j| format!("stream-user-{j:05}")).collect();
    let t_onboard = Instant::now();
    for (j, user) in users.iter().enumerate() {
        pump.engine()
            .onboard(user, &maps_of(&data, j % BASE_STREAMS, 0, 2))
            .expect("onboarding maps");
        pump.open(user).expect("open session");
    }
    eprintln!(
        "onboarded + opened {SESSIONS} sessions in {:.1} s",
        t_onboard.elapsed().as_secs_f32()
    );

    let before = registry.snapshot();
    let max_ticks = plans.iter().map(Vec::len).max().unwrap();
    let mut offsets = vec![(0usize, 0usize, 0usize); SESSIONS];
    let mut last_ingest: Vec<Instant> = vec![Instant::now(); SESSIONS];
    let mut latencies_ms: Vec<f32> = Vec::new();
    let mut predictions = 0usize;
    let mut peak_total = 0usize;

    let t0 = Instant::now();
    let drain_into = |latencies_ms: &mut Vec<f32>, predictions: &mut usize,
                      last_ingest: &[Instant]| {
        for drain in pump.drain() {
            let j: usize = drain.user["stream-user-".len()..]
                .parse()
                .expect("bench user name");
            let ms = last_ingest[j].elapsed().as_secs_f32() * 1e3;
            for _ in 0..drain.maps {
                latencies_ms.push(ms);
            }
            *predictions += drain.result.expect("serving error during drain").len();
        }
    };
    for tick in 0..max_ticks {
        let t_tick = Instant::now();
        let mut batch = Vec::with_capacity(SESSIONS);
        let mut in_tick = Vec::with_capacity(SESSIONS);
        for j in 0..SESSIONS {
            if tick >= plans[j].len() {
                continue;
            }
            let (bvp, gsr, skt) = &base[j % BASE_STREAMS];
            let c = plans[j][tick];
            let (ob, og, os) = offsets[j];
            batch.push(ChunkIngest {
                user: &users[j],
                bvp: &bvp[ob..ob + c.bvp],
                gsr: &gsr[og..og + c.gsr],
                skt: &skt[os..os + c.skt],
            });
            offsets[j] = (ob + c.bvp, og + c.gsr, os + c.skt);
            in_tick.push(j);
        }
        for result in pump.ingest_many(&batch, THREADS) {
            result.expect("no chunk may be shed at this budget");
        }
        for j in in_tick {
            last_ingest[j] = t_tick;
        }
        peak_total = peak_total.max(pump.resident_bytes());
        assert!(
            pump.peak_session_bytes() <= budget,
            "peak session {} B exceeds budget {} B at tick {tick}",
            pump.peak_session_bytes(),
            budget
        );
        if tick % DRAIN_EVERY == DRAIN_EVERY - 1 {
            drain_into(&mut latencies_ms, &mut predictions, &last_ingest);
        }
    }
    drain_into(&mut latencies_ms, &mut predictions, &last_ingest);
    let elapsed = t0.elapsed().as_secs_f32();

    let after = registry.snapshot();
    let chunks = counter(&after, clear_obs::counters::STREAM_CHUNKS)
        - counter(&before, clear_obs::counters::STREAM_CHUNKS);
    let samples = counter(&after, clear_obs::counters::STREAM_SAMPLES)
        - counter(&before, clear_obs::counters::STREAM_SAMPLES);
    let windows = counter(&after, clear_obs::counters::STREAM_WINDOWS)
        - counter(&before, clear_obs::counters::STREAM_WINDOWS);
    let maps = counter(&after, clear_obs::counters::STREAM_MAPS)
        - counter(&before, clear_obs::counters::STREAM_MAPS);
    let shed_dropped = counter(&after, clear_obs::counters::STREAM_SHED_DROPPED_WINDOWS);
    let shed_rejected = counter(&after, clear_obs::counters::STREAM_SHED_REJECTED_CHUNKS);
    let shed_sparse = counter(&after, clear_obs::counters::STREAM_SHED_SPARSE_HOP_WINDOWS);

    // The run is only publishable if the bound held and nothing was shed:
    // every session sustained its stream inside the budget.
    assert!(maps >= SESSIONS as u64, "not every session completed a map");
    assert_eq!(shed_dropped + shed_rejected + shed_sparse, 0, "budget shed data");
    assert!(predictions > 0);

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let results = StreamBench {
        sessions: SESSIONS,
        threads: THREADS,
        ticks: max_ticks,
        chunks,
        samples,
        windows,
        maps,
        predictions,
        elapsed_secs: elapsed,
        chunks_per_sec: chunks as f32 / elapsed.max(1e-9),
        samples_per_sec: samples as f32 / elapsed.max(1e-9),
        predictions_per_sec: predictions as f32 / elapsed.max(1e-9),
        chunk_to_prediction: LatencyStats {
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
            max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        },
        byte_budget: budget,
        min_resident_bytes: session.min_resident_bytes(),
        peak_session_bytes: pump.peak_session_bytes(),
        peak_total_resident_bytes: peak_total,
        shed_dropped_windows: shed_dropped,
        shed_rejected_chunks: shed_rejected,
        shed_sparse_hop_windows: shed_sparse,
    };
    eprintln!(
        "{} chunks ({:.0}/s), {} maps, {} predictions ({:.0}/s) in {elapsed:.1} s",
        results.chunks,
        results.chunks_per_sec,
        results.maps,
        results.predictions,
        results.predictions_per_sec
    );
    eprintln!(
        "chunk→prediction p50 {:.1} ms, p99 {:.1} ms; peak session {} B / budget {} B",
        results.chunk_to_prediction.p50_ms,
        results.chunk_to_prediction.p99_ms,
        results.peak_session_bytes,
        results.byte_budget
    );

    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_stream.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_stream_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    clear_obs::uninstall();
}
