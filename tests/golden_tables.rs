//! Golden regression harness for the paper tables.
//!
//! The shape checks in `table1`/`contracts` catch qualitative breakage
//! (orderings flipping), but a refactor can silently shift every number
//! while preserving the shape. This harness pins the *exact* measured
//! values of Table I (all six rows) and Table II (per-device blocks +
//! measurements) on a reduced deterministic profile to a JSON record
//! under `tests/golden/`, and fails with a field-by-field diff when any
//! value moves.
//!
//! Blessing: the golden file is (re)written when it does not exist yet,
//! or when the `GOLDEN_BLESS` environment variable is set:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_tables
//! ```
//!
//! Re-bless only when a change is *supposed* to move the numbers (a new
//! feature, an intentional algorithm change) — never to silence a diff
//! you cannot explain.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::experiments::{run_table1, run_table2, Table1, Table2};
use clear::edge::Device;
use serde_json::Value;
use std::path::Path;
use std::sync::OnceLock;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/tables_quick.json"
);
const SEED: u64 = 2025;

/// The pinned profile: `quick(2025)` with the training knobs turned down
/// the same way the benchmark binaries do. The golden record pins
/// *determinism*, not accuracy, so the cheapest profile that still
/// produces every table row is the right one.
fn golden_config() -> ClearConfig {
    let mut config = ClearConfig::quick(SEED);
    config.train.epochs = 2;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    config
}

/// Both tables, measured once per test binary.
fn measured() -> &'static (Table1, Table2) {
    static MEASURED: OnceLock<(Table1, Table2)> = OnceLock::new();
    MEASURED.get_or_init(|| {
        let config = golden_config();
        let data = PreparedCohort::prepare(&config);
        let table1 = run_table1(&data, &config, |_, _, _| {});
        let table2 = run_table2(&data, &config, |_, _, _| {});
        (table1, table2)
    })
}

fn measured_value() -> Value {
    let (table1, table2) = measured();
    serde_json::json!({
        "seed": SEED,
        "table1": serde_json::to_value(table1).expect("Table1 serializes"),
        "table2": serde_json::to_value(table2).expect("Table2 serializes"),
    })
}

/// Recursive field-by-field diff; every mismatch becomes one line with
/// its JSON path.
fn diff_values(path: &str, golden: &Value, measured: &Value, out: &mut Vec<String>) {
    match (golden, measured) {
        (Value::Object(g), Value::Object(m)) => {
            for (key, gv) in g {
                match m.get(key) {
                    Some(mv) => diff_values(&format!("{path}.{key}"), gv, mv, out),
                    None => out.push(format!("{path}.{key}: missing from measured output")),
                }
            }
            for key in m.keys().filter(|k| !g.contains_key(*k)) {
                out.push(format!("{path}.{key}: not in the golden record"));
            }
        }
        (Value::Array(g), Value::Array(m)) => {
            if g.len() != m.len() {
                out.push(format!(
                    "{path}: golden has {} elements, measured has {}",
                    g.len(),
                    m.len()
                ));
            } else {
                for (i, (gv, mv)) in g.iter().zip(m).enumerate() {
                    diff_values(&format!("{path}[{i}]"), gv, mv, out);
                }
            }
        }
        _ => {
            if golden != measured {
                out.push(format!("{path}: golden {golden} != measured {measured}"));
            }
        }
    }
}

fn bless(measured: &Value) {
    let json = serde_json::to_string_pretty(measured).expect("golden record serializes");
    let path = Path::new(GOLDEN_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("golden directory is creatable");
    }
    std::fs::write(path, &json).expect("golden record is writable");
    // The file must round-trip to exactly what we measured, or future
    // runs would diff against a corrupted record.
    let reread: Value = serde_json::from_str(&json).expect("golden record re-parses");
    assert_eq!(
        &reread, measured,
        "golden record did not survive serialization (non-finite value?)"
    );
    eprintln!("golden_tables: BLESSED new golden record at {GOLDEN_PATH}");
}

#[test]
fn measured_tables_match_the_golden_record() {
    let measured = measured_value();
    let path = Path::new(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_BLESS").is_some() || !path.exists() {
        bless(&measured);
        return;
    }
    let raw = std::fs::read_to_string(path).expect("golden record is readable");
    let golden: Value = serde_json::from_str(&raw).expect("golden record parses");
    let mut diffs = Vec::new();
    diff_values("tables", &golden, &measured, &mut diffs);
    assert!(
        diffs.is_empty(),
        "measured tables diverged from the golden record in {} place(s):\n  {}\n\n\
         If this change is *supposed* to move the numbers, re-bless with\n  \
         GOLDEN_BLESS=1 cargo test --test golden_tables\n\
         and commit the updated tests/golden/tables_quick.json.",
        diffs.len(),
        diffs.join("\n  ")
    );
}

#[test]
fn golden_covers_all_rows() {
    let (table1, table2) = measured();
    // All six Table I rows, each aggregated over at least one fold with
    // finite percentages.
    let rows = [
        ("general", &table1.general),
        ("rt_cl", &table1.rt_cl),
        ("cl", &table1.cl),
        ("rt_clear", &table1.rt_clear),
        ("clear_wo_ft", &table1.clear_wo_ft),
        ("clear_w_ft", &table1.clear_w_ft),
    ];
    for (name, agg) in rows {
        assert!(agg.folds > 0, "{name}: aggregated over zero folds");
        for (what, v) in [
            ("accuracy_mean", agg.accuracy_mean),
            ("accuracy_std", agg.accuracy_std),
            ("f1_mean", agg.f1_mean),
            ("f1_std", agg.f1_std),
        ] {
            assert!(v.is_finite(), "{name}.{what} is not finite: {v}");
        }
    }
    assert!(
        (0.0..=1.0).contains(&table1.assignment_accuracy),
        "assignment accuracy out of range: {}",
        table1.assignment_accuracy
    );
    // Table II covers every device in every block.
    let devices = Device::all().len();
    assert_eq!(table2.without_ft.len(), devices);
    assert_eq!(table2.rt.len(), devices);
    assert_eq!(table2.with_ft.len(), devices);
    assert_eq!(table2.measurements.len(), devices);
}
