//! Robustness: the pipeline under realistic sensor artifacts.
//!
//! The paper targets "real-world usability" on wearables; these tests
//! corrupt recordings with motion bursts, dropouts and wideband noise and
//! check that (a) feature extraction stays total and finite, and (b) the
//! trained classifier degrades gracefully rather than collapsing.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::pipeline::CloudTraining;
use clear::features::{FeatureExtractor, WindowConfig};
use clear::nn::tensor::Tensor;
use clear::sim::artifacts::{corrupt, ArtifactConfig};
use clear::sim::{Cohort, CohortConfig};

#[test]
fn features_stay_finite_under_heavy_artifacts() {
    let config = CohortConfig::small(21);
    let cohort = Cohort::generate(&config);
    let extractor = FeatureExtractor::new(config.signal, WindowConfig::default());
    let heavy = ArtifactConfig {
        motion_bursts_per_min: 10.0,
        burst_gain: 8.0,
        dropout_probability: 1.0,
        dropout_secs: 5.0,
        noise_fraction: 0.4,
        ..ArtifactConfig::default()
    };
    for rec in cohort.recordings().iter().take(8) {
        let bad = corrupt(
            rec,
            config.signal.fs_bvp,
            config.signal.fs_gsr,
            config.signal.fs_skt,
            &heavy,
        );
        let map = extractor.feature_map(&bad);
        assert!(map.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(map.feature_count(), 123);
    }
}

#[test]
fn classifier_degrades_gracefully_not_catastrophically() {
    let config = ClearConfig::quick(55);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&vx, initial) = subjects.split_last().unwrap();
    let cloud = CloudTraining::fit(&data, initial, &config);
    let indices = data.indices_of(vx);
    let assigned = cloud.assign_user(&data, &indices[..1]);

    // Clean accuracy.
    let clean = cloud.evaluate(&data, assigned, &indices[1..]).accuracy;

    // Mildly corrupted copies of the same recordings, run through the same
    // feature extractor and classifier path.
    let sig = config.cohort.signal;
    let extractor = FeatureExtractor::new(sig, config.window);
    let mild = ArtifactConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut net = cloud.model(assigned).clone();
    let baseline = data.subject_baseline(vx);
    for &i in &indices[1..] {
        let rec = &data.cohort().recordings()[i];
        let bad = corrupt(rec, sig.fs_bvp, sig.fs_gsr, sig.fs_skt, &mild);
        let map = extractor.feature_map(&bad);
        // Manual corrected-normalized path mirroring user_dataset.
        let w = map.window_count();
        let columns: Vec<Vec<f32>> = (0..w)
            .map(|c| (0..123).map(|f| map.get(f, c) - baseline[f]).collect())
            .collect();
        let mut corrected_map = clear::features::FeatureMap::from_columns(&columns);
        corrected_map.normalize(cloud.clf_normalizer());
        let x = Tensor::from_vec(&[1, 123, w], corrected_map.as_slice().to_vec());
        let logits = net.forward(&x, false);
        if clear::nn::loss::predict_class(&logits) == rec.emotion.class_index() {
            correct += 1;
        }
        total += 1;
    }
    let corrupted_acc = correct as f32 / total as f32;
    // Graceful degradation: stay within 35 accuracy points of clean and
    // above chance-minus-noise on this small sample.
    assert!(
        corrupted_acc >= clean - 0.35,
        "collapsed under artifacts: clean {clean}, corrupted {corrupted_acc}"
    );
    assert!(corrupted_acc >= 0.3, "corrupted accuracy {corrupted_acc}");
}
