//! Lifecycle end-to-end: a drifting cohort raises drift signals from
//! real serving telemetry, background refit produces a candidate
//! generation, shadow evaluation and staged rollout adopt it cluster by
//! cluster — and through all of it the untouched clusters serve
//! bit-identical predictions. A forced regression is then detected by
//! the guard and rolled back to a bit-identical base generation.
//!
//! This test owns the process-global obs registry for its binary; it is
//! the only test here precisely so installation cannot race another test
//! (same arrangement as `observability.rs`).

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::deployment::{ClearBundle, Onboarding, Prediction};
use clear::core::pipeline::CloudTraining;
use clear::features::FeatureMap;
use clear::lifecycle::{
    AdoptedCluster, CandidateGeneration, DriftConfig, DriftMonitor, RefitConfig, Refitter,
    RolloutConfig, RolloutController, RolloutDecision, WindowSample,
};
use clear::obs::{self, FakeClock, Registry};
use clear::serve::{EngineConfig, ServeEngine, ServeRequest};
use clear::sim::{DriftScenario, Emotion, SubjectId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Everything bit-relevant about one gated prediction.
fn fingerprint(p: &Prediction) -> (Option<Emotion>, u32, u32, bool) {
    (
        p.emotion,
        p.confidence.to_bits(),
        p.quality.to_bits(),
        p.imputed,
    )
}

/// Serves `probe` observation-silently against the live models (no
/// candidate overrides, no state commits) — the non-mutating way to ask
/// "what would these users be told right now".
fn predict_all(engine: &ServeEngine, probe: &[ServeRequest<'_>]) -> Vec<Vec<Prediction>> {
    engine
        .predict_shadow(probe, &HashMap::new())
        .into_iter()
        .map(|r| r.expect("probe users are onboarded"))
        .collect()
}

/// Owned probe storage: every user paired with its recordings `2..` from
/// `data` (recordings `..2` are the onboarding budget).
fn probe_maps(
    users: &[(String, SubjectId)],
    data: &PreparedCohort,
) -> Vec<(String, Vec<FeatureMap>)> {
    users
        .iter()
        .map(|(name, subject)| {
            let idx = data.indices_of(*subject);
            let maps = idx[2..].iter().map(|&i| data.maps()[i].clone()).collect();
            (name.clone(), maps)
        })
        .collect()
}

fn requests<'a>(owned: &'a [(String, Vec<FeatureMap>)]) -> Vec<ServeRequest<'a>> {
    owned
        .iter()
        .map(|(user, maps)| ServeRequest { user, maps })
        .collect()
}

#[test]
fn drifting_cohort_is_detected_refit_and_rolled_out_with_bit_identical_controls() {
    let registry = Arc::new(Registry::with_clock(Box::new(FakeClock::new(1_000))));
    obs::install(Arc::clone(&registry));

    // Calibration: train the bundle on the stationary phase of a cohort
    // whose first two archetypes drift away afterwards. phase(0.0) is
    // bit-identical to the plain cohort, so this is an ordinary deploy.
    let config = ClearConfig::quick(41);
    let scenario = DriftScenario::new(config.cohort.clone(), 1.0, &[0, 1]);
    let base_data = PreparedCohort::prepare_from(scenario.phase(0.0), &config);
    let drifted_data = PreparedCohort::prepare_from(scenario.phase(1.0), &config);
    let subjects = base_data.subject_ids();
    let cloud = CloudTraining::fit(&base_data, &subjects, &config);
    let bundle = ClearBundle::from_cloud(&cloud);
    let engine = ServeEngine::new(bundle, EngineConfig::default());

    // Onboard every subject as a serving user on calibration-time data.
    let users: Vec<(String, SubjectId)> =
        subjects.iter().map(|&s| (format!("user-{s}"), s)).collect();
    for (name, subject) in &users {
        let idx = base_data.indices_of(*subject);
        let maps: Vec<FeatureMap> = idx[..2]
            .iter()
            .map(|&i| base_data.maps()[i].clone())
            .collect();
        let outcome = engine.onboard(name, &maps).expect("maps are non-empty");
        assert!(matches!(outcome, Onboarding::Assigned { .. }));
    }

    // ---- Monitor: real traffic, real telemetry ----
    // Two reference intervals of calibration-time traffic, then two
    // intervals of the same presentations seen through the drifted
    // physiology. Quality is label agreement of served windows.
    let mut monitor = DriftMonitor::new(DriftConfig {
        reference_windows: 2,
        recent_windows: 2,
        abstention_step: 0.05,
        quality_drop: 0.05,
        affinity_drop: 0.15,
        min_traffic: 8,
    });
    let serve_interval = |data: &PreparedCohort, range: std::ops::Range<usize>| -> WindowSample {
        let mut sample = WindowSample::default();
        for (name, subject) in &users {
            let idx = data.indices_of(*subject);
            let slice = &idx[range.clone()];
            let maps: Vec<FeatureMap> = slice.iter().map(|&i| data.maps()[i].clone()).collect();
            let predictions = engine.predict(name, &maps).expect("onboarded above");
            for (p, &i) in predictions.iter().zip(slice) {
                sample.served += 1;
                match p.emotion {
                    None => sample.abstained += 1,
                    Some(e) => {
                        let (_, label) = data.map_and_label(i);
                        sample.quality_sum += if e == label { 1.0 } else { 0.0 };
                        sample.quality_count += 1;
                    }
                }
            }
        }
        sample
    };
    monitor.observe(serve_interval(&base_data, 2..5));
    monitor.observe(serve_interval(&base_data, 5..8));
    assert!(monitor.assess().is_empty(), "window not filled: silent");
    monitor.observe(serve_interval(&drifted_data, 2..5));
    monitor.observe(serve_interval(&drifted_data, 5..8));
    let signals = monitor.assess();
    assert!(
        !signals.is_empty(),
        "severely drifted traffic must raise a drift signal"
    );

    // ---- Refit: background re-clustering, off the serving path ----
    let refitter = Refitter::new(RefitConfig {
        train: config.train.clone(),
        val_fraction: 0.25,
        min_members: 1,
    });
    let generation = refitter.refit(engine.bundle(), &drifted_data, 1);
    // Hand-off goes through the sealed artifact, as it would between
    // machines (or across a crash).
    let sealed = generation.seal().expect("generation seals");
    let generation = CandidateGeneration::open(&sealed).expect("sealed generation round-trips");
    let mut candidates = generation.accepted();
    assert!(
        !candidates.is_empty(),
        "refit on drifted data produced no surviving candidate"
    );
    let epochs_after_refit = registry
        .snapshot()
        .counters
        .get(obs::counters::TRAIN_EPOCHS)
        .copied()
        .unwrap_or(0);
    assert!(epochs_after_refit > 0, "cloud fit and refit both train");

    // ---- Stage the rollout so a populated control cluster survives ----
    let mut cluster_users: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for (name, _) in &users {
        let cluster = engine.cluster_of(name).expect("onboarded above");
        cluster_users.entry(cluster).or_default().push(name);
    }
    assert!(
        cluster_users.len() >= 2,
        "clustering collapsed to a single populated cluster"
    );
    candidates.retain(|c, _| cluster_users.contains_key(c));
    assert!(
        !candidates.is_empty(),
        "no surviving candidate cluster has live traffic"
    );
    if cluster_users.keys().all(|c| candidates.contains_key(c)) {
        let holdout = *candidates.keys().max().expect("non-empty");
        candidates.remove(&holdout);
    }

    // ---- Shadow evaluation and staged adoption ----
    // Wide-open gates: the gate *discrimination* is pinned by the crate's
    // unit tests and by the forced-regression episode below; here every
    // populated candidate must clear them and adopt.
    let controller = RolloutController::new(RolloutConfig {
        min_shadow_windows: 1,
        max_abstention_regression: 1.0,
        max_confidence_drop: 1.0,
    });
    let probe_owned = probe_maps(&users, &drifted_data);
    let probe = requests(&probe_owned);
    let before = predict_all(&engine, &probe);
    let report = controller.shadow_eval(&engine, &candidates, &probe);
    let decisions = controller.decide(&report, &candidates);
    for (cluster, decision) in &decisions {
        assert_eq!(
            *decision,
            RolloutDecision::Adopt,
            "populated candidate {cluster} failed an unfailable gate"
        );
    }
    let adopted = controller
        .roll_out(&engine, &candidates, &decisions)
        .expect("adoption is durable");
    assert_eq!(adopted.len(), candidates.len());
    for a in &adopted {
        assert!(a.generation > 0, "adopted generations start at 1");
        assert_eq!(engine.cluster_generation(a.cluster), a.generation);
    }
    let rolled = controller
        .guard(&engine, &adopted, &report, &probe)
        .expect("guard probe serves");
    assert!(
        rolled.is_empty(),
        "nothing regresses past a 100 % tolerance"
    );

    // ---- Migrated clusters change; untouched clusters are bit-identical ----
    let after = predict_all(&engine, &probe);
    let adopted_set: BTreeSet<usize> = adopted.iter().map(|a| a.cluster).collect();
    let mut changed: BTreeSet<usize> = BTreeSet::new();
    for (i, (name, _)) in users.iter().enumerate() {
        let cluster = engine.cluster_of(name).expect("onboarded above");
        assert_eq!(before[i].len(), after[i].len());
        let pairs = before[i].iter().zip(&after[i]);
        if adopted_set.contains(&cluster) {
            if pairs.clone().any(|(b, a)| fingerprint(b) != fingerprint(a)) {
                changed.insert(cluster);
            }
        } else {
            for (b, a) in pairs {
                assert_eq!(
                    fingerprint(b),
                    fingerprint(a),
                    "untouched cluster {cluster} changed its serving (user {name})"
                );
            }
        }
    }
    assert_eq!(
        changed, adopted_set,
        "every adopted cluster must visibly change its members' predictions"
    );

    // ---- Forced regression: the guard detects and restores ----
    let victim = *cluster_users
        .keys()
        .find(|c| !adopted_set.contains(c))
        .expect("a populated untouched cluster exists by construction");
    // The healthy baseline the guard compares against: calibration-time
    // traffic through the current (post-rollout) engine.
    let base_probe_owned = probe_maps(&users, &base_data);
    let base_probe = requests(&base_probe_owned);
    let baseline_report = controller.shadow_eval(&engine, &HashMap::new(), &base_probe);
    let victim_live = baseline_report.clusters[&victim].live_abstention_rate();
    assert!(
        victim_live < 0.9,
        "victim cluster already abstains on {victim_live} of calibration traffic"
    );
    let pre_forced = predict_all(&engine, &base_probe);

    // A candidate with its weights scaled to nothing: logits collapse
    // toward zero, softmax toward uniform, confidence below the 0.55
    // serving gate — it abstains on every window it is handed.
    let mut junk = engine.bundle().models[victim].clone();
    let tiny: Vec<f32> = junk.parameters_flat().iter().map(|w| w * 1e-3).collect();
    junk.set_parameters_flat(&tiny);
    let junk_generation = engine
        .adopt_cluster_model(victim, &junk)
        .expect("adoption is durable");
    assert_eq!(engine.cluster_generation(victim), junk_generation);

    let strict = RolloutController::new(RolloutConfig::default());
    let forced = [AdoptedCluster {
        cluster: victim,
        generation: junk_generation,
    }];
    let rolled_back = strict
        .guard(&engine, &forced, &baseline_report, &base_probe)
        .expect("guard probe serves");
    assert_eq!(
        rolled_back,
        vec![victim],
        "the guard must roll the regressed cluster back"
    );
    assert_eq!(
        engine.cluster_generation(victim),
        0,
        "rollback restores the base generation"
    );
    let post_rollback = predict_all(&engine, &base_probe);
    for (i, (name, _)) in users.iter().enumerate() {
        for (b, a) in pre_forced[i].iter().zip(&post_rollback[i]) {
            assert_eq!(
                fingerprint(b),
                fingerprint(a),
                "rollback must restore serving bit-for-bit (user {name})"
            );
        }
    }

    // ---- The serving path never trains; the lifecycle is accounted ----
    let snap = registry.snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        c(obs::counters::TRAIN_EPOCHS),
        epochs_after_refit,
        "training epochs moved during shadow evaluation / rollout / guard"
    );
    assert!(c(obs::counters::LIFECYCLE_REFITS) >= 1);
    assert!(c(obs::counters::LIFECYCLE_SHADOW_EVALS) >= 2);
    assert!(c(obs::counters::LIFECYCLE_SHADOW_WINDOWS) > 0);
    assert_eq!(
        c(obs::counters::LIFECYCLE_CLUSTERS_ADOPTED),
        adopted.len() as u64 + 1,
        "staged rollout plus the forced adoption"
    );
    assert_eq!(c(obs::counters::LIFECYCLE_CLUSTERS_ROLLED_BACK), 1);
}
