//! Cross-crate contracts: the invariants each crate promises its
//! consumers, checked at the seams (property-based where the input space
//! matters).

use clear::features::{catalog, extract_window, FEATURE_COUNT};
use clear::nn::tensor::Tensor;
use clear::sim::SignalConfig;
use proptest::prelude::*;

#[test]
fn feature_count_is_the_papers_123() {
    assert_eq!(FEATURE_COUNT, 123);
    assert_eq!(catalog::GSR_COUNT, 34);
    assert_eq!(catalog::BVP_COUNT, 84);
    assert_eq!(catalog::SKT_COUNT, 5);
}

#[test]
fn model_input_contract_matches_feature_maps() {
    // The core pipeline feeds [1, 123, W] tensors into networks built by
    // build_model; the seam is pinned here.
    let config = clear::core::config::ClearConfig::quick(3);
    let data = clear::core::dataset::PreparedCohort::prepare(&config);
    let net = clear::core::pipeline::build_model(data.windows(), &config, 0);
    let mut ws = clear::nn::workspace::Workspace::new();
    let x = Tensor::zeros(&[1, FEATURE_COUNT, data.windows()]);
    let y = net.forward(&x, false, &mut ws);
    assert_eq!(y.shape(), &[2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The window extractor returns exactly 123 finite features for ANY
    /// finite input signals, however short, constant or wild.
    #[test]
    fn extractor_is_total_over_arbitrary_signals(
        bvp in prop::collection::vec(-10.0f32..10.0, 0..512),
        gsr in prop::collection::vec(0.0f32..20.0, 0..128),
        skt in prop::collection::vec(20.0f32..40.0, 0..64),
    ) {
        let sig = SignalConfig::default();
        let v = extract_window(&bvp, &gsr, &skt, &sig);
        prop_assert_eq!(v.len(), FEATURE_COUNT);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    /// Edge quantization preserves classifier output shape and finiteness
    /// for any precision.
    #[test]
    fn lowered_networks_stay_total(seed in 0u64..50) {
        use clear::nn::quantize::{lower_network, Precision};
        use clear::nn::workspace::Workspace;
        let net = clear::nn::network::cnn_lstm_compact(123, 6, 2, seed);
        let mut ws = Workspace::new();
        for p in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let mut lowered = net.clone();
            lower_network(&mut lowered, p);
            let y = lowered.forward(&Tensor::zeros(&[1, 123, 6]), false, &mut ws);
            prop_assert_eq!(y.shape(), &[2usize]);
            prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
        }
        let _ = net.forward(&Tensor::zeros(&[1, 123, 6]), false, &mut ws);
    }

    /// Cluster assignment always returns a valid cluster index, for any
    /// query vector.
    #[test]
    fn hierarchy_assignment_is_total(query in prop::collection::vec(-100.0f32..100.0, 4)) {
        use clear::clustering::hierarchy::{ClusterHierarchy, HierarchyConfig};
        use clear::clustering::kmeans::{KMeans, KMeansConfig};
        let points: Vec<Vec<f32>> = (0..12)
            .map(|i| vec![i as f32, (i % 3) as f32, -(i as f32), 0.5 * i as f32])
            .collect();
        let model = KMeans::new(KMeansConfig { k: 3, ..Default::default() }).fit(&points);
        let h = ClusterHierarchy::build(&model, &points, &HierarchyConfig::default());
        let c = h.assign(&query);
        prop_assert!(c < 3);
    }
}
