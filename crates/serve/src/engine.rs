//! The multi-tenant serving engine.
//!
//! [`ServeEngine`] is the population-scale counterpart of
//! [`clear_core::deployment::ClearDeployment`]: same bundle, same policy,
//! same quality-gated pipeline (both delegate to
//! [`clear_core::serving`]), but every method takes `&self`, so distinct
//! users onboard, predict and personalize concurrently:
//!
//! * **Sharded registry** — user state lives in `N` shards, each behind
//!   its own `RwLock`; `shard = hash(user) % N`, so traffic for distinct
//!   users rarely contends and readers never block readers.
//! * **Cross-user batching** — [`ServeEngine::predict_many`] groups a
//!   request set by assigned cluster and serves each cluster's group
//!   through one workspace against the shared cluster checkpoint,
//!   instead of per-user model churn.
//! * **Bounded personalized-model cache** — adopted fine-tuned forks are
//!   stored as sparse weight deltas against the cluster base (the
//!   durable form) and kept hydrated in a bounded LRU; eviction and
//!   transparent rehydration are bit-exact, so the cache bound changes
//!   memory, never predictions.
//! * **Admission control** — each shard caps in-flight requests; beyond
//!   the cap callers get a typed [`ServeError::Overloaded`] instead of
//!   unbounded queueing.
//!
//! The contract tested by `tests/equivalence.rs`: for any request set,
//! per-request results are bit-identical to calling
//! `ClearDeployment::predict_batch` once per request in isolation,
//! regardless of shard count, cache bound (≥ 1) or caller thread count.
//!
//! * **Crash-consistent durability (opt-in)** — an engine opened with
//!   [`ServeEngine::recover`] logs every state mutation (onboard,
//!   deferred-map buffering, personalization adopt/rollback, quarantine,
//!   offboard) to a checksummed write-ahead log *before* the in-memory
//!   mutation commits, and periodically publishes atomic snapshots that
//!   let the log truncate. After a crash, `recover` on the same
//!   directory rebuilds an engine whose registry — and therefore whose
//!   predictions — is bit-identical to a never-crashed engine that
//!   processed the same committed operations (`tests/durability.rs`
//!   proves this at every write boundary). Engines built with
//!   [`ServeEngine::new`] skip all of it and serve purely in memory.

use crate::cache::ModelCache;
use clear_core::deployment::{
    ClearBundle, DeployError, Onboarding, PersonalizeOutcome, Prediction, ServeTier,
    ServingPolicy,
};
use clear_core::serving;
use clear_durable::wal::WAL_FILE;
use clear_durable::{
    read_records, AdoptedClusterRecord, DurableConfig, DurableError, EngineSnapshot, FsStorage,
    Storage, TenantRecord, Wal, WalOp, WalRecord,
};
use clear_edge::{personalized_cache_capacity, Device};
use clear_features::quality::assess_map;
use clear_features::FeatureMap;
use clear_nn::delta::WeightDelta;
use clear_nn::network::Network;
use clear_nn::train::TrainConfig;
use clear_nn::workspace::Workspace;
use clear_sim::Emotion;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Errors of the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// A deployment-layer error (unknown user, bad input, serde).
    Deploy(DeployError),
    /// The user's shard is at its in-flight request cap; retry later.
    Overloaded {
        /// The saturated shard.
        shard: usize,
        /// Observed in-flight depth including this request.
        depth: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The durability layer failed: a WAL append, snapshot or recovery
    /// hit storage failure or corruption. The in-memory mutation the
    /// operation would have made did *not* commit.
    Durable(DurableError),
    /// An engine invariant was violated — a bug in the engine itself,
    /// surfaced as a typed error instead of a panic so one broken
    /// request cannot take down a multi-tenant process.
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Deploy(e) => write!(f, "{e}"),
            ServeError::Overloaded {
                shard,
                depth,
                limit,
            } => {
                write!(
                    f,
                    "shard {shard} overloaded: {depth} in-flight requests exceed the cap of {limit}"
                )
            }
            ServeError::Durable(e) => write!(f, "{e}"),
            ServeError::Internal(why) => write!(f, "engine invariant violated: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Deploy(e) => Some(e),
            ServeError::Durable(e) => Some(e),
            ServeError::Overloaded { .. } | ServeError::Internal(_) => None,
        }
    }
}

impl From<DeployError> for ServeError {
    fn from(e: DeployError) -> Self {
        ServeError::Deploy(e)
    }
}

impl From<DurableError> for ServeError {
    fn from(e: DurableError) -> Self {
        ServeError::Durable(e)
    }
}

/// Sizing knobs of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Registry shards (floor 1). More shards, less lock contention.
    pub shards: usize,
    /// Personalized networks kept hydrated (floor 1); everything else
    /// lives as weight deltas and rehydrates on access.
    pub cache_capacity: usize,
    /// Per-shard in-flight request cap (floor 1) before
    /// [`ServeError::Overloaded`].
    pub max_queue_depth: usize,
    /// Numeric tier every request is served at. [`ServeTier::Exact`]
    /// (the default) is bit-identical to the historical scalar path;
    /// [`ServeTier::Fast`] runs int8 with automatic exact re-serve on
    /// abstention — the quality gates decide int8 eligibility per
    /// window, so the tier changes latency, never the abstention set.
    pub default_tier: ServeTier,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            cache_capacity: 32,
            max_queue_depth: 64,
            default_tier: ServeTier::Exact,
        }
    }
}

impl EngineConfig {
    /// Sizes the hydrated-model cache from a device's parameter budget
    /// after reserving room for the bundle's always-resident cluster
    /// checkpoints (see [`clear_edge::personalized_cache_capacity`]).
    pub fn for_device(bundle: &ClearBundle, device: Device) -> Self {
        let cache_capacity = bundle.models.first().map_or(1, |net| {
            personalized_cache_capacity(net, device, bundle.cluster_count())
        });
        Self {
            cache_capacity,
            ..Self::default()
        }
    }
}

/// One user's inference request inside a [`ServeEngine::predict_many`]
/// set.
#[derive(Debug, Clone, Copy)]
pub struct ServeRequest<'a> {
    /// The requesting user.
    pub user: &'a str,
    /// The feature maps to classify, in order.
    pub maps: &'a [FeatureMap],
}

/// Outcome of one [`ServeEngine::import_records`] call — the follower
/// side of WAL-shipped replication. Imports are tolerant of the faults a
/// lossy transport produces (duplicates, gaps from reordering) and
/// strict about everything else: a record that cannot apply cleanly
/// means the two logs describe different histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportReport {
    /// Highest LSN durably applied on this engine after the import
    /// (imports never regress it).
    pub applied_through: u64,
    /// Records skipped because their LSN was already applied — the
    /// normal fate of duplicated or re-shipped frames.
    pub duplicates: u64,
    /// First missing LSN, when the batch jumped past the log's tail
    /// (reordered or lost frames). Records from the gap onward were not
    /// applied; the shipper should resend from `gap_at`.
    pub gap_at: Option<u64>,
    /// Why this engine's state cannot have come from the same history as
    /// the shipped records (e.g. a quarantine for a user it never
    /// onboarded). The offending record and everything after it were
    /// rejected; the caller must quarantine this follower.
    pub diverged: Option<String>,
}

/// Occupancy snapshot of the personalized-model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Hydrated forks currently resident.
    pub resident: usize,
    /// The configured bound.
    pub capacity: usize,
}

/// One tenant's durable state. The personalized checkpoint is *not*
/// stored here — only its sparse delta against the cluster base; the
/// hydrated form lives in the bounded cache keyed by `generation`.
struct Tenant {
    cluster: usize,
    baseline: Vec<f32>,
    quarantined: usize,
    delta: Option<WeightDelta>,
    /// Bumped on every re-onboarding and adopted personalization, so
    /// cached forks from earlier states can never serve.
    generation: u64,
}

#[derive(Default)]
struct ShardState {
    tenants: HashMap<String, Tenant>,
    /// Good-quality maps accumulated for deferred onboardings.
    pending: HashMap<String, Vec<FeatureMap>>,
}

struct Shard {
    state: RwLock<ShardState>,
    /// In-flight requests currently admitted against this shard.
    depth: AtomicUsize,
}

/// RAII admission token: holds one unit of its shard's queue depth.
struct AdmissionGuard<'a> {
    depth: &'a AtomicUsize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A request fully resolved by batch assembly, ready for its cluster
/// group's forward passes.
struct Resolved {
    index: usize,
    user: String,
    shard: usize,
    cluster: usize,
    baseline: Vec<f32>,
    net: Option<Arc<Network>>,
}

/// One cluster's adopted serving model: a lifecycle generation that
/// replaced the base bundle checkpoint (see
/// [`ServeEngine::adopt_cluster_model`]).
struct AdoptedModel {
    /// Engine-wide generation stamp issued at adoption.
    generation: u64,
    /// The adopted weights as a delta from the base bundle model — the
    /// durable form carried by the WAL and snapshots.
    delta: WeightDelta,
    /// The hydrated serving checkpoint.
    net: Arc<Network>,
}

/// The durability sidecar of an engine opened with
/// [`ServeEngine::recover`]: the WAL, the storage it and snapshots live
/// on, and the automatic-snapshot cadence. Lock order is shards
/// (ascending index) → adopted cluster slots (ascending index) → WAL,
/// everywhere.
struct Durability {
    storage: Arc<dyn Storage>,
    wal: Mutex<Wal>,
    snapshot_every: usize,
    /// Operations logged since the last snapshot attempt.
    ops_since: AtomicUsize,
}

/// A concurrent, multi-tenant CLEAR serving engine. See the module docs
/// for the architecture and the sequential-equivalence contract.
pub struct ServeEngine {
    bundle: ClearBundle,
    policy: ServingPolicy,
    shards: Vec<Shard>,
    cache: ModelCache,
    max_queue_depth: usize,
    /// Numeric tier every request is served at (see
    /// [`EngineConfig::default_tier`]).
    tier: ServeTier,
    /// Source of fork-generation stamps. Globally monotone (never
    /// per-tenant), so a generation value is never reused across
    /// offboard/re-onboard cycles and a cached fork from a previous
    /// enrolment can never be rehydrated by construction. Cluster-model
    /// adoptions draw from the same counter, so user forks and cluster
    /// generations share one engine-wide ordering.
    next_generation: AtomicU64,
    /// Per-cluster adopted serving models, indexed by cluster. `None`
    /// serves the base bundle checkpoint — the state every engine
    /// starts in, bit-identical to the pre-lifecycle serving path.
    adopted: Vec<RwLock<Option<AdoptedModel>>>,
    durability: Option<Durability>,
}

impl ServeEngine {
    /// Starts an engine with the default [`ServingPolicy`].
    pub fn new(bundle: ClearBundle, config: EngineConfig) -> Self {
        Self::with_policy(bundle, ServingPolicy::default(), config)
    }

    /// Starts an engine with an explicit serving policy.
    pub fn with_policy(bundle: ClearBundle, policy: ServingPolicy, config: EngineConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| Shard {
                state: RwLock::new(ShardState::default()),
                depth: AtomicUsize::new(0),
            })
            .collect();
        let adopted = (0..bundle.cluster_count())
            .map(|_| RwLock::new(None))
            .collect();
        Self {
            bundle,
            policy,
            shards,
            cache: ModelCache::new(config.cache_capacity),
            max_queue_depth: config.max_queue_depth.max(1),
            tier: config.default_tier,
            next_generation: AtomicU64::new(0),
            adopted,
            durability: None,
        }
    }

    /// The numeric tier this engine serves at.
    pub fn tier(&self) -> ServeTier {
        self.tier
    }

    /// Opens (or re-opens after a crash) a durable engine rooted at
    /// `dir` with the default policy and snapshot cadence. The first
    /// open of an empty directory is a fresh durable engine; every later
    /// open recovers — snapshot first, then WAL replay of records past
    /// the snapshot's LSN horizon — and is bit-identical to an engine
    /// that never crashed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Durable`] on storage failure or when the
    /// snapshot/WAL fail verification ([`DurableError::CorruptArtifact`]).
    pub fn recover(
        dir: &Path,
        bundle: ClearBundle,
        config: EngineConfig,
    ) -> Result<Self, ServeError> {
        let storage: Arc<dyn Storage> = Arc::new(FsStorage::open(dir)?);
        Self::recover_with(
            storage,
            bundle,
            ServingPolicy::default(),
            config,
            DurableConfig::default(),
        )
    }

    /// [`ServeEngine::recover`] with every knob exposed: an injectable
    /// [`Storage`] backend (the crash-injection tests pass an in-memory
    /// fake), an explicit policy and an explicit snapshot cadence.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::recover`].
    pub fn recover_with(
        storage: Arc<dyn Storage>,
        bundle: ClearBundle,
        policy: ServingPolicy,
        config: EngineConfig,
        durable: DurableConfig,
    ) -> Result<Self, ServeError> {
        let _span = clear_obs::span(clear_obs::Stage::RecoverReplay);
        let snapshot = EngineSnapshot::load(storage.as_ref())?;
        let last_lsn = snapshot.as_ref().map_or(0, |s| s.last_lsn);
        let (wal, records) = Wal::open_after(Arc::clone(&storage), last_lsn)?;
        let mut engine = Self::with_policy(bundle, policy, config);
        let mut next_generation = 0u64;
        if let Some(snap) = snapshot {
            for t in snap.tenants {
                next_generation = next_generation.max(t.generation + 1);
                let shard = engine.shard_of(&t.user);
                engine.shards[shard].state.get_mut().tenants.insert(
                    t.user,
                    Tenant {
                        cluster: t.cluster,
                        baseline: t.baseline,
                        quarantined: t.quarantined as usize,
                        delta: t.delta,
                        generation: t.generation,
                    },
                );
            }
            for (user, maps) in snap.pending {
                let shard = engine.shard_of(&user);
                engine.shards[shard]
                    .state
                    .get_mut()
                    .pending
                    .insert(user, maps);
            }
            for a in snap.adopted {
                next_generation = next_generation.max(a.generation + 1);
                let net = engine.hydrate_adopted(a.cluster, &a.delta)?;
                *engine.adopted[a.cluster].get_mut() = Some(AdoptedModel {
                    generation: a.generation,
                    delta: a.delta,
                    net,
                });
            }
        }
        let mut replayed = 0u64;
        for record in records {
            if record.lsn <= last_lsn {
                continue;
            }
            engine.apply_logged(record.op, &mut next_generation)?;
            replayed += 1;
        }
        clear_obs::counter_add(clear_obs::counters::DURABLE_RECOVERED_OPS, replayed);
        engine.next_generation = AtomicU64::new(next_generation);
        engine.durability = Some(Durability {
            storage,
            wal: Mutex::new(wal),
            snapshot_every: durable.snapshot_every_ops,
            ops_since: AtomicUsize::new(0),
        });
        Ok(engine)
    }

    /// Rebuilds an adopted cluster checkpoint from its durable delta
    /// form: the delta applies to the immutable base bundle model, so
    /// the result is bit-identical to the network that was adopted.
    ///
    /// # Errors
    ///
    /// Returns a corruption error when the cluster is out of range for
    /// this bundle or the delta does not apply to its base model —
    /// either way the record cannot have come from this engine's
    /// history.
    fn hydrate_adopted(
        &self,
        cluster: usize,
        delta: &WeightDelta,
    ) -> Result<Arc<Network>, ServeError> {
        let base = self.bundle.models.get(cluster).ok_or_else(|| {
            DurableError::corrupt(
                "snapshot",
                format!("adopted model names cluster {cluster}, bundle has fewer"),
            )
        })?;
        let net = delta.apply(base).map_err(|e| {
            DurableError::corrupt(
                "snapshot",
                format!("adopted delta does not apply to cluster {cluster}'s base model: {e}"),
            )
        })?;
        Ok(Arc::new(net))
    }

    /// Applies one replayed WAL record to in-memory state. Replay is
    /// exact state reconstruction: ops carry results (assigned cluster,
    /// computed baseline, extracted delta), never inputs, so nothing is
    /// recomputed and nothing can be double-counted.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Durable`] when an adopted-model record
    /// cannot be reconstructed against this engine's bundle.
    fn apply_logged(&mut self, op: WalOp, next_generation: &mut u64) -> Result<(), ServeError> {
        if let WalOp::AdoptClusterModel {
            cluster,
            generation,
            delta,
        } = op
        {
            *next_generation = (*next_generation).max(generation + 1);
            let installed = match delta {
                None => None,
                Some(delta) => {
                    let net = self.hydrate_adopted(cluster, &delta)?;
                    Some(AdoptedModel {
                        generation,
                        delta: *delta,
                        net,
                    })
                }
            };
            let slot = self.adopted.get_mut(cluster).ok_or_else(|| {
                DurableError::corrupt(
                    "wal",
                    format!("adopted model names cluster {cluster}, bundle has fewer"),
                )
            })?;
            *slot.get_mut() = installed;
            return Ok(());
        }
        let shard = self.shard_of(op.user());
        let state = self.shards[shard].state.get_mut();
        match op {
            WalOp::Onboard {
                user,
                cluster,
                baseline,
                generation,
            } => {
                *next_generation = (*next_generation).max(generation + 1);
                state.pending.remove(&user);
                state.tenants.insert(
                    user,
                    Tenant {
                        cluster,
                        baseline,
                        quarantined: 0,
                        delta: None,
                        generation,
                    },
                );
            }
            WalOp::BufferMaps { user, maps } => {
                state.pending.entry(user).or_default().extend(maps);
            }
            WalOp::PersonalizeAdopt {
                user,
                generation,
                delta,
            } => {
                *next_generation = (*next_generation).max(generation + 1);
                if let Some(tenant) = state.tenants.get_mut(&user) {
                    tenant.generation = generation;
                    tenant.delta = Some(*delta);
                }
            }
            WalOp::PersonalizeRollback { .. } => {}
            WalOp::Quarantine { user, count } => {
                if let Some(tenant) = state.tenants.get_mut(&user) {
                    tenant.quarantined += count as usize;
                }
            }
            WalOp::Offboard { user } => {
                state.tenants.remove(&user);
                state.pending.remove(&user);
            }
            // Returned on above: engine-wide, not shard state.
            WalOp::AdoptClusterModel { .. } => {}
        }
        Ok(())
    }

    /// Whether this engine logs mutations to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Logs one operation ahead of its mutation. A no-op returning `Ok`
    /// on non-durable engines — the closure never runs, so the serving
    /// paths pay nothing for durability they did not opt into.
    fn log_op<F: FnOnce() -> WalOp>(&self, op: F) -> Result<(), ServeError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        d.wal.lock().append(vec![op()])?;
        d.ops_since.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Takes an automatic snapshot when enough operations have been
    /// logged. Best-effort by design: the operations it would cover are
    /// already durable in the WAL, so a snapshot failure is counted
    /// (`durable.snapshot_failures`) and the log simply keeps growing.
    fn maybe_snapshot(&self) {
        let Some(d) = &self.durability else {
            return;
        };
        if d.snapshot_every == 0 || d.ops_since.load(Ordering::SeqCst) < d.snapshot_every {
            return;
        }
        d.ops_since.store(0, Ordering::SeqCst);
        if self.snapshot().is_err() {
            clear_obs::counter_add(clear_obs::counters::DURABLE_SNAPSHOT_FAILURES, 1);
        }
    }

    /// Publishes a snapshot of the full engine state and truncates the
    /// WAL. The cut is consistent: every shard is read-locked while the
    /// state is captured, and the WAL mutex is held from capture through
    /// truncation so no append can land between the snapshot's LSN
    /// horizon and the truncation. A no-op returning `Ok` on non-durable
    /// engines.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Durable`] when the snapshot cannot be
    /// published or the WAL cannot be truncated; committed state is
    /// unaffected either way.
    pub fn snapshot(&self) -> Result<(), ServeError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        // Lock order: shards (ascending) → adopted slots (ascending) →
        // WAL, as everywhere.
        let guards: Vec<RwLockReadGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|i| self.read_shard(i)).collect();
        let slots: Vec<RwLockReadGuard<'_, Option<AdoptedModel>>> =
            self.adopted.iter().map(|s| s.read()).collect();
        let mut wal = d.wal.lock();
        let snap = Self::capture(wal.last_lsn(), &guards, &slots);
        drop(slots);
        drop(guards);
        snap.save(d.storage.as_ref())?;
        wal.truncate()?;
        d.ops_since.store(0, Ordering::SeqCst);
        Ok(())
    }

    /// Collects every shard's state into a normalized [`EngineSnapshot`]
    /// at the given LSN horizon. Callers hold the shard and adopted-slot
    /// guards (and the WAL lock that produced `last_lsn`), so the cut is
    /// consistent.
    fn capture(
        last_lsn: u64,
        guards: &[RwLockReadGuard<'_, ShardState>],
        slots: &[RwLockReadGuard<'_, Option<AdoptedModel>>],
    ) -> EngineSnapshot {
        let mut snap = EngineSnapshot {
            last_lsn,
            tenants: Vec::new(),
            pending: Vec::new(),
            adopted: Vec::new(),
        };
        for guard in guards {
            for (user, t) in &guard.tenants {
                snap.tenants.push(TenantRecord {
                    user: user.clone(),
                    cluster: t.cluster,
                    baseline: t.baseline.clone(),
                    quarantined: t.quarantined as u64,
                    generation: t.generation,
                    delta: t.delta.clone(),
                });
            }
            for (user, maps) in &guard.pending {
                snap.pending.push((user.clone(), maps.clone()));
            }
        }
        for (cluster, slot) in slots.iter().enumerate() {
            if let Some(a) = slot.as_ref() {
                snap.adopted.push(AdoptedClusterRecord {
                    cluster,
                    generation: a.generation,
                    delta: a.delta.clone(),
                });
            }
        }
        snap.normalize();
        snap
    }

    /// Captures the engine's full state as a transferable
    /// [`EngineSnapshot`] *without* publishing it or truncating the WAL —
    /// the snapshot-transfer source for seeding replicas and migrating
    /// partitions. The horizon is the WAL's last LSN at the instant of
    /// capture, taken under every shard lock, so an importer that seeds
    /// from this snapshot and then replays records past `last_lsn` lands
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Internal`] on a non-durable engine, which
    /// has no LSN horizon to anchor the snapshot to.
    pub fn export_snapshot(&self) -> Result<EngineSnapshot, ServeError> {
        let d = self
            .durability
            .as_ref()
            .ok_or(ServeError::Internal("snapshot export needs a durable engine"))?;
        let guards: Vec<RwLockReadGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|i| self.read_shard(i)).collect();
        let slots: Vec<RwLockReadGuard<'_, Option<AdoptedModel>>> =
            self.adopted.iter().map(|s| s.read()).collect();
        let wal = d.wal.lock();
        Ok(Self::capture(wal.last_lsn(), &guards, &slots))
    }

    /// Per-user state fingerprints for anti-entropy comparison: sorted
    /// `(key, checksum)` pairs covering every tenant record, deferred
    /// onboarding buffer and adopted cluster model, computed from a
    /// consistent cut (see [`ServeEngine::export_snapshot`]) via the
    /// sealed-envelope checksums of `clear-durable`. Two engines report
    /// equal fingerprints for a key iff their durable state for that key
    /// is byte-identical, so a replication scrub can find a stale or
    /// diverged replica without transferring any state.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::export_snapshot`] (requires a durable engine).
    pub fn user_fingerprints(&self) -> Result<Vec<(String, u32)>, ServeError> {
        Ok(self.export_snapshot()?.user_fingerprints()?)
    }

    /// Builds a durable engine whose state is exactly `snapshot`: the
    /// snapshot is published to `storage`, any stale WAL there is
    /// cleared (its records are covered by — or diverged from — the
    /// snapshot), and the engine recovers from the result. This is the
    /// snapshot-transfer sink: how a fresh or lagging replica adopts a
    /// leader's state before catching up on shipped records with
    /// `lsn > snapshot.last_lsn`.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::recover_with`].
    pub fn from_snapshot(
        storage: Arc<dyn Storage>,
        snapshot: &EngineSnapshot,
        bundle: ClearBundle,
        policy: ServingPolicy,
        config: EngineConfig,
        durable: DurableConfig,
    ) -> Result<Self, ServeError> {
        snapshot.save(storage.as_ref())?;
        storage.write_atomic(WAL_FILE, &[])?;
        Self::recover_with(storage, bundle, policy, config, durable)
    }

    /// LSN of the last operation this engine has durably logged (0 if
    /// none yet), or `None` on a non-durable engine.
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.lock().last_lsn())
    }

    /// LSN horizon of the engine's published snapshot (0 when no
    /// snapshot has been published), or `None` on a non-durable engine.
    /// Records at or below the horizon are no longer in the WAL file, so
    /// a follower that has acknowledged less than this needs a snapshot
    /// transfer, not a record ship.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Durable`] when the snapshot cannot be read.
    pub fn wal_horizon(&self) -> Result<Option<u64>, ServeError> {
        let Some(d) = &self.durability else {
            return Ok(None);
        };
        Ok(Some(
            EngineSnapshot::load(d.storage.as_ref())?.map_or(0, |s| s.last_lsn),
        ))
    }

    /// Reads this engine's WAL records with `lsn > after` — the shipping
    /// source of replication. Purely a storage read: no locks beyond the
    /// storage's own, no truncation, no effect on engine state. Records
    /// already covered by a published snapshot are gone from the log
    /// (see [`ServeEngine::wal_horizon`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Internal`] on a non-durable engine and
    /// [`ServeError::Durable`] when the log cannot be read or parsed.
    pub fn export_records_after(&self, after: u64) -> Result<Vec<WalRecord>, ServeError> {
        let d = self
            .durability
            .as_ref()
            .ok_or(ServeError::Internal("WAL export needs a durable engine"))?;
        let records = read_records(d.storage.as_ref())?;
        Ok(records.into_iter().filter(|r| r.lsn > after).collect())
    }

    /// Applies a leader's WAL records to this engine — the follower side
    /// of replication. Each applicable record is appended to this
    /// engine's own WAL (verbatim, LSN included) *before* the in-memory
    /// mutation commits, so a follower is itself crash-consistent and
    /// its log stays bit-comparable to its leader's. Duplicates are
    /// skipped, a gap stops the import at the gap, and a record that
    /// cannot have come from this engine's history (see
    /// [`ImportReport::diverged`]) rejects the rest of the batch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Internal`] on a non-durable engine and
    /// [`ServeError::Durable`] when this engine's own WAL rejects an
    /// append (the record is then *not* applied).
    pub fn import_records(&self, records: &[WalRecord]) -> Result<ImportReport, ServeError> {
        let d = self
            .durability
            .as_ref()
            .ok_or(ServeError::Internal("record import needs a durable engine"))?;
        let mut report = ImportReport {
            applied_through: d.wal.lock().last_lsn(),
            duplicates: 0,
            gap_at: None,
            diverged: None,
        };
        for record in records {
            if let WalOp::AdoptClusterModel {
                cluster,
                generation,
                delta,
            } = &record.op
            {
                // Engine-wide op: it locks its cluster slot, not a
                // shard. Validate (and hydrate) before anything is
                // appended, so a record that cannot have come from this
                // replica's bundle rejects with nothing written.
                if *cluster >= self.adopted.len() {
                    report.diverged = Some(format!(
                        "record {} adopts a model for cluster {cluster} this replica's bundle \
                         does not have",
                        record.lsn
                    ));
                    break;
                }
                let hydrated = match delta {
                    None => None,
                    Some(delta) => match self.hydrate_adopted(*cluster, delta) {
                        Ok(net) => Some(net),
                        Err(_) => {
                            report.diverged = Some(format!(
                                "record {} carries a delta that does not apply to this \
                                 replica's base model for cluster {cluster}",
                                record.lsn
                            ));
                            break;
                        }
                    },
                };
                // Lock order: adopted slot → WAL, as everywhere.
                let mut slot = self.adopted[*cluster].write();
                let mut wal = d.wal.lock();
                let last = wal.last_lsn();
                if record.lsn <= last {
                    report.duplicates += 1;
                    continue;
                }
                if record.lsn > last + 1 {
                    report.gap_at = Some(last + 1);
                    break;
                }
                wal.append_records(std::slice::from_ref(record))?;
                drop(wal);
                d.ops_since.fetch_add(1, Ordering::SeqCst);
                self.next_generation.fetch_max(generation + 1, Ordering::SeqCst);
                *slot = match (delta, hydrated) {
                    (Some(delta), Some(net)) => Some(AdoptedModel {
                        generation: *generation,
                        delta: (**delta).clone(),
                        net,
                    }),
                    _ => None,
                };
                report.applied_through = record.lsn;
                continue;
            }
            let user = record.op.user();
            let shard = self.shard_of(user);
            // Lock order: shard → WAL, as everywhere.
            let mut state = self.write_shard(shard);
            let mut wal = d.wal.lock();
            let last = wal.last_lsn();
            if record.lsn <= last {
                report.duplicates += 1;
                continue;
            }
            if record.lsn > last + 1 {
                report.gap_at = Some(last + 1);
                break;
            }
            let unknown_tenant = !state.tenants.contains_key(user);
            let divergent = match &record.op {
                WalOp::Quarantine { .. } | WalOp::PersonalizeAdopt { .. } => unknown_tenant,
                WalOp::Offboard { .. } => unknown_tenant && !state.pending.contains_key(user),
                _ => false,
            };
            if divergent {
                report.diverged = Some(format!(
                    "record {} mutates user \"{user}\" this replica never onboarded",
                    record.lsn
                ));
                break;
            }
            wal.append_records(std::slice::from_ref(record))?;
            drop(wal);
            d.ops_since.fetch_add(1, Ordering::SeqCst);
            Self::apply_imported(&mut state, &self.next_generation, record.op.clone());
            drop(state);
            // Any cached fork predates the imported mutation.
            if matches!(
                record.op,
                WalOp::Onboard { .. } | WalOp::PersonalizeAdopt { .. } | WalOp::Offboard { .. }
            ) {
                self.cache.remove(user);
            }
            report.applied_through = record.lsn;
        }
        self.maybe_snapshot();
        Ok(report)
    }

    /// Applies one imported record under its shard's write lock — the
    /// `&self` twin of [`ServeEngine::apply_logged`] (which runs during
    /// recovery on `&mut self`). Generation stamps merge via `fetch_max`,
    /// keeping the global no-reuse invariant across imports.
    fn apply_imported(state: &mut ShardState, next_generation: &AtomicU64, op: WalOp) {
        match op {
            WalOp::Onboard {
                user,
                cluster,
                baseline,
                generation,
            } => {
                next_generation.fetch_max(generation + 1, Ordering::SeqCst);
                state.pending.remove(&user);
                state.tenants.insert(
                    user,
                    Tenant {
                        cluster,
                        baseline,
                        quarantined: 0,
                        delta: None,
                        generation,
                    },
                );
            }
            WalOp::BufferMaps { user, maps } => {
                state.pending.entry(user).or_default().extend(maps);
            }
            WalOp::PersonalizeAdopt {
                user,
                generation,
                delta,
            } => {
                next_generation.fetch_max(generation + 1, Ordering::SeqCst);
                if let Some(tenant) = state.tenants.get_mut(&user) {
                    tenant.generation = generation;
                    tenant.delta = Some(*delta);
                }
            }
            WalOp::PersonalizeRollback { .. } => {}
            WalOp::Quarantine { user, count } => {
                if let Some(tenant) = state.tenants.get_mut(&user) {
                    tenant.quarantined += count as usize;
                }
            }
            WalOp::Offboard { user } => {
                state.tenants.remove(&user);
                state.pending.remove(&user);
            }
            // Engine-wide: applied by `import_records` itself, which
            // holds the cluster slot instead of a shard lock.
            WalOp::AdoptClusterModel { .. } => {}
        }
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &ClearBundle {
        &self.bundle
    }

    /// The serving policy in force.
    pub fn policy(&self) -> &ServingPolicy {
        &self.policy
    }

    /// Registry shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard admission cap. A caller batching requests through
    /// [`ServeEngine::predict_many`] must keep each request set at or
    /// below this, since admission slots are held for the entire set
    /// (the streaming pump chunks its drains by this limit).
    pub fn queue_limit(&self) -> usize {
        self.max_queue_depth
    }

    /// Occupancy of the personalized-model cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            resident: self.cache.len(),
            capacity: self.cache.capacity(),
        }
    }

    fn shard_of(&self, user: &str) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        user.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn read_shard(&self, shard: usize) -> RwLockReadGuard<'_, ShardState> {
        let _span = clear_obs::span(clear_obs::Stage::ServeShardWait);
        self.shards[shard].state.read()
    }

    fn write_shard(&self, shard: usize) -> RwLockWriteGuard<'_, ShardState> {
        let _span = clear_obs::span(clear_obs::Stage::ServeShardWait);
        self.shards[shard].state.write()
    }

    fn admit(&self, shard: usize) -> Result<AdmissionGuard<'_>, ServeError> {
        let depth = &self.shards[shard].depth;
        let observed = depth.fetch_add(1, Ordering::SeqCst) + 1;
        if observed > self.max_queue_depth {
            depth.fetch_sub(1, Ordering::SeqCst);
            clear_obs::counter_add(clear_obs::counters::OVERLOADED, 1);
            return Err(ServeError::Overloaded {
                shard,
                depth: observed,
                limit: self.max_queue_depth,
            });
        }
        Ok(AdmissionGuard { depth })
    }

    /// Looks a hydrated personalized fork up, rebuilding it from its
    /// delta (outside any shard lock) on a miss.
    fn hydrate(
        &self,
        user: &str,
        cluster: usize,
        generation: u64,
        delta: &WeightDelta,
    ) -> Result<Arc<Network>, ServeError> {
        if let Some(net) = self.cache.get(user, generation) {
            clear_obs::counter_add(clear_obs::counters::CACHE_HITS, 1);
            return Ok(net);
        }
        clear_obs::counter_add(clear_obs::counters::CACHE_MISSES, 1);
        let base = self
            .bundle
            .models
            .get(cluster)
            .ok_or(DeployError::BadInput("bundle has no model for cluster"))?;
        let net = delta
            .apply(base)
            .map_err(|e| DeployError::Serde(format!("delta rehydration failed: {e}")))?;
        clear_obs::counter_add(clear_obs::counters::CACHE_REHYDRATIONS, 1);
        let net = Arc::new(net);
        let evicted = self.cache.insert(user, generation, Arc::clone(&net));
        if evicted > 0 {
            clear_obs::counter_add(clear_obs::counters::CACHE_EVICTIONS, evicted);
        }
        Ok(net)
    }

    /// Onboards a user from unlabeled maps — the same quality guardrail
    /// and deferred-accumulation behavior as
    /// [`clear_core::deployment::ClearDeployment::onboard`].
    /// Re-onboarding stamps the tenant with a fresh (globally unique)
    /// generation, discarding any personalization (durable delta *and*
    /// cached fork).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::BadInput`] (wrapped) when `maps` is empty,
    /// and [`ServeError::Durable`] when the write-ahead log rejects the
    /// operation (no state changes in that case).
    pub fn onboard(&self, user: &str, maps: &[FeatureMap]) -> Result<Onboarding, ServeError> {
        let _span = clear_obs::span(clear_obs::Stage::Onboard);
        if maps.is_empty() {
            return Err(DeployError::BadInput("onboarding needs at least one map").into());
        }
        // Quality assessment happens outside the shard lock.
        let good: Vec<FeatureMap> = maps
            .iter()
            .filter(|m| assess_map(m).score >= self.policy.min_onboarding_quality)
            .cloned()
            .collect();
        let required = self.policy.min_onboarding_maps.max(1);
        let shard = self.shard_of(user);
        let mut state = self.write_shard(shard);
        let accumulated = state.pending.get(user).map_or(0, Vec::len) + good.len();
        if accumulated < required {
            self.log_op(|| WalOp::BufferMaps {
                user: user.to_string(),
                maps: good.clone(),
            })?;
            state
                .pending
                .entry(user.to_string())
                .or_default()
                .extend(good);
            drop(state);
            clear_obs::counter_add(clear_obs::counters::ONBOARD_DEFERRED, 1);
            self.maybe_snapshot();
            return Ok(Onboarding::Deferred {
                accumulated,
                required,
            });
        }
        let mut buffered = state.pending.get(user).cloned().unwrap_or_default();
        buffered.extend(good);
        let (cluster, baseline) = serving::assign_cluster(&self.bundle, &buffered);
        let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
        self.log_op(|| WalOp::Onboard {
            user: user.to_string(),
            cluster,
            baseline: baseline.clone(),
            generation,
        })?;
        state.pending.remove(user);
        state.tenants.insert(
            user.to_string(),
            Tenant {
                cluster,
                baseline,
                quarantined: 0,
                delta: None,
                generation,
            },
        );
        drop(state);
        // Any cached fork belongs to the previous enrolment.
        self.cache.remove(user);
        clear_obs::counter_add(clear_obs::counters::ONBOARD_ASSIGNED, 1);
        self.maybe_snapshot();
        Ok(Onboarding::Assigned { cluster })
    }

    /// Serves one user's batch — a [`ServeEngine::predict_many`] set of
    /// size one.
    ///
    /// # Errors
    ///
    /// As for `predict_many`'s per-request results.
    pub fn predict(&self, user: &str, maps: &[FeatureMap]) -> Result<Vec<Prediction>, ServeError> {
        match self.predict_many(&[ServeRequest { user, maps }]).pop() {
            Some(result) => result,
            None => Err(ServeError::Internal(
                "predict_many returned no result for a one-request set",
            )),
        }
    }

    /// Serves one user's batch without committing any state: quarantined
    /// windows are gated and reported exactly as in [`ServeEngine::predict`],
    /// but their counts are neither logged nor applied. This is how a
    /// follower replica serves while its partition is leaderless — the
    /// served bits match the leader's, and nothing is written that the
    /// next shipped records would conflict with.
    ///
    /// # Errors
    ///
    /// As for [`ServeEngine::predict`].
    pub fn predict_readonly(
        &self,
        user: &str,
        maps: &[FeatureMap],
    ) -> Result<Vec<Prediction>, ServeError> {
        match self
            .predict_set(&[ServeRequest { user, maps }], false, None)
            .pop()
        {
            Some(result) => result,
            None => Err(ServeError::Internal(
                "predict_set returned no result for a one-request set",
            )),
        }
    }

    /// Serves a cross-user request set. Assembly resolves every request
    /// (admission, tenant snapshot, shape checks, fork hydration), then
    /// the resolved requests are grouped by assigned cluster and each
    /// group runs through one reused workspace. Results come back in
    /// request order, each exactly what a sequential
    /// `ClearDeployment::predict_batch` call would have produced:
    ///
    /// * empty `maps` → `Ok(vec![])` without admission or user lookup;
    /// * unknown user / shape mismatch → that request errors, the rest
    ///   proceed;
    /// * a saturated shard → [`ServeError::Overloaded`] for that request.
    pub fn predict_many(
        &self,
        requests: &[ServeRequest<'_>],
    ) -> Vec<Result<Vec<Prediction>, ServeError>> {
        self.predict_set(requests, true, None)
    }

    /// Dual-predicts a request set against candidate cluster models —
    /// the shadow-evaluation hook of the lifecycle layer. Requests are
    /// resolved, gated and served exactly as [`ServeEngine::predict_many`]
    /// would, except that clusters named in `candidates` serve the
    /// candidate checkpoint instead of their live one, nothing commits
    /// (no WAL append, no quarantine bookkeeping), and serve-side
    /// counters stay untouched (`lifecycle.shadow_windows` counts the
    /// traffic instead). Personalized users keep their forks on both
    /// sides, mirroring what a real rollout would — and would not —
    /// change.
    pub fn predict_shadow(
        &self,
        requests: &[ServeRequest<'_>],
        candidates: &HashMap<usize, Arc<Network>>,
    ) -> Vec<Result<Vec<Prediction>, ServeError>> {
        self.predict_set(requests, false, Some(candidates))
    }

    /// [`ServeEngine::predict_many`] with the quarantine commit made
    /// explicit — read-only callers (follower serving) pass `false` and
    /// the engine guarantees no WAL append and no registry mutation —
    /// and the shadow candidate overrides made explicit (see
    /// [`ServeEngine::predict_shadow`]).
    fn predict_set(
        &self,
        requests: &[ServeRequest<'_>],
        commit_quarantine: bool,
        shadow: Option<&HashMap<usize, Arc<Network>>>,
    ) -> Vec<Result<Vec<Prediction>, ServeError>> {
        let mut slots: Vec<Option<Result<Vec<Prediction>, ServeError>>> =
            requests.iter().map(|_| None).collect();
        // Admission tokens are held until every request in the set has
        // been served: depth counts in-flight work, not queue length.
        let mut guards: Vec<AdmissionGuard<'_>> = Vec::with_capacity(requests.len());
        let mut resolved: Vec<Resolved> = Vec::with_capacity(requests.len());
        {
            let _span = clear_obs::span(clear_obs::Stage::ServeBatchAssembly);
            for (index, request) in requests.iter().enumerate() {
                if request.maps.is_empty() {
                    slots[index] = Some(Ok(Vec::new()));
                    continue;
                }
                let shard = self.shard_of(request.user);
                match self.admit(shard) {
                    Ok(guard) => guards.push(guard),
                    Err(e) => {
                        slots[index] = Some(Err(e));
                        continue;
                    }
                }
                let snapshot = {
                    let state = self.read_shard(shard);
                    state
                        .tenants
                        .get(request.user)
                        .map(|t| (t.cluster, t.baseline.clone(), t.delta.clone(), t.generation))
                };
                let Some((cluster, baseline, delta, generation)) = snapshot else {
                    slots[index] = Some(Err(
                        DeployError::UnknownUser(request.user.to_string()).into()
                    ));
                    continue;
                };
                if let Some(e) = request
                    .maps
                    .iter()
                    .find_map(|m| serving::check_shape(&self.bundle, m).err())
                {
                    slots[index] = Some(Err(e.into()));
                    continue;
                }
                let net = match &delta {
                    None => None,
                    Some(delta) => match self.hydrate(request.user, cluster, generation, delta) {
                        Ok(net) => Some(net),
                        Err(e) => {
                            slots[index] = Some(Err(e));
                            continue;
                        }
                    },
                };
                resolved.push(Resolved {
                    index,
                    user: request.user.to_string(),
                    shard,
                    cluster,
                    baseline,
                    net,
                });
            }
        }

        // One group per cluster: the shared centroid reconstruction and
        // one workspace amortize across every request in the group.
        let mut by_cluster: BTreeMap<usize, Vec<Resolved>> = BTreeMap::new();
        for r in resolved {
            by_cluster.entry(r.cluster).or_default().push(r);
        }
        let is_shadow = shadow.is_some();
        for (cluster, group) in by_cluster {
            let centroid = serving::cluster_raw_centroid(&self.bundle, cluster);
            // Resolved once per group, so every prediction emitted for
            // this cluster in this set carries exactly one generation —
            // a rollout landing mid-set affects the next set, never a
            // suffix of this one. Shadow candidates override the live
            // choice; otherwise the adopted generation (when present)
            // overrides the base bundle model.
            let cluster_model: Option<Arc<Network>> = shadow
                .and_then(|c| c.get(&cluster).cloned())
                .or_else(|| {
                    self.adopted
                        .get(cluster)
                        .and_then(|slot| slot.read().as_ref().map(|a| Arc::clone(&a.net)))
                });
            let mut ws = Workspace::new();
            for r in group {
                let maps = requests[r.index].maps;
                let _span = if is_shadow {
                    clear_obs::SpanGuard::noop()
                } else {
                    clear_obs::span(clear_obs::Stage::PredictBatch)
                };
                if is_shadow {
                    // Shadow serves are observation-silent: the drift
                    // monitor must never see its own dual-predict
                    // traffic reflected in the serve counters.
                    clear_obs::counter_add(
                        clear_obs::counters::LIFECYCLE_SHADOW_WINDOWS,
                        maps.len() as u64,
                    );
                } else {
                    clear_obs::counter_add(clear_obs::counters::BATCHES, 1);
                    clear_obs::counter_add(clear_obs::counters::BATCH_WINDOWS, maps.len() as u64);
                    clear_obs::size_record(clear_obs::BATCH_SIZE_HISTOGRAM, maps.len() as u64);
                }
                let ctx = serving::ServeContext {
                    bundle: &self.bundle,
                    policy: &self.policy,
                    cluster,
                    baseline: &r.baseline,
                    centroid: &centroid,
                    personalized: r.net.as_deref(),
                    cluster_model: cluster_model.as_deref(),
                    shadow: is_shadow,
                    tier: self.tier,
                };
                let mut predictions = Vec::with_capacity(maps.len());
                let mut quarantined = 0usize;
                let mut failed = None;
                for map in maps {
                    match serving::predict_one_gated(&ctx, map, &mut ws) {
                        Ok((prediction, q)) => {
                            if q {
                                quarantined += 1;
                            }
                            predictions.push(prediction);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                let mut result: Result<Vec<Prediction>, ServeError> = match failed {
                    Some(e) => Err(e.into()),
                    None => Ok(predictions),
                };
                if quarantined > 0 && commit_quarantine {
                    let mut state = self.write_shard(r.shard);
                    if state.tenants.contains_key(&r.user) {
                        // WAL-before-mutate: if the log rejects the
                        // quarantine, the count is not bumped and the
                        // request reports the durability failure.
                        match self.log_op(|| WalOp::Quarantine {
                            user: r.user.clone(),
                            count: quarantined as u64,
                        }) {
                            Ok(()) => {
                                if let Some(tenant) = state.tenants.get_mut(&r.user) {
                                    tenant.quarantined += quarantined;
                                }
                            }
                            Err(e) => {
                                if result.is_ok() {
                                    result = Err(e);
                                }
                            }
                        }
                    }
                }
                slots[r.index] = Some(result);
            }
        }
        drop(guards);
        self.maybe_snapshot();
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(ServeError::Internal(
                        "a request was never resolved to a result",
                    ))
                })
            })
            .collect()
    }

    /// Personalizes a user from labeled maps with the same
    /// validation-holdout rollback rule as the deployment. Fine-tuning
    /// runs outside every lock; on adoption the fork is stored as a
    /// sparse delta in the user's shard (bumping their generation) and
    /// hydrated into the cache.
    ///
    /// # Errors
    ///
    /// Wrapped [`DeployError`]s as for the deployment, plus
    /// [`ServeError::Overloaded`] when the user's shard is saturated.
    pub fn personalize(
        &self,
        user: &str,
        labeled: &[(FeatureMap, Emotion)],
        config: &TrainConfig,
    ) -> Result<PersonalizeOutcome, ServeError> {
        let _span = clear_obs::span(clear_obs::Stage::Personalize);
        if labeled.is_empty() {
            return Err(DeployError::BadInput("personalization needs labeled maps").into());
        }
        let shard = self.shard_of(user);
        let _guard = self.admit(shard)?;
        let (cluster, baseline) = {
            let state = self.read_shard(shard);
            let tenant = state
                .tenants
                .get(user)
                .ok_or_else(|| DeployError::UnknownUser(user.to_string()))?;
            (tenant.cluster, tenant.baseline.clone())
        };
        let (outcome, checkpoint) = serving::personalize_from(
            &self.bundle,
            &self.policy,
            cluster,
            &baseline,
            labeled,
            config,
        )?;
        if let Some(net) = checkpoint {
            let base = self
                .bundle
                .models
                .get(cluster)
                .ok_or(DeployError::BadInput("bundle has no model for cluster"))?;
            let delta = WeightDelta::between(base, &net)
                .map_err(|e| DeployError::Serde(format!("delta extraction failed: {e}")))?;
            let generation = {
                let mut state = self.write_shard(shard);
                let tenant = state
                    .tenants
                    .get_mut(user)
                    .ok_or_else(|| DeployError::UnknownUser(user.to_string()))?;
                let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
                self.log_op(|| WalOp::PersonalizeAdopt {
                    user: user.to_string(),
                    generation,
                    delta: Box::new(delta.clone()),
                })?;
                tenant.generation = generation;
                tenant.delta = Some(delta);
                generation
            };
            let evicted = self.cache.insert(user, generation, Arc::new(net));
            if evicted > 0 {
                clear_obs::counter_add(clear_obs::counters::CACHE_EVICTIONS, evicted);
            }
        } else {
            // Nothing mutated, but the audit trail records the rejected
            // round.
            self.log_op(|| WalOp::PersonalizeRollback {
                user: user.to_string(),
            })?;
        }
        self.maybe_snapshot();
        Ok(outcome)
    }

    /// Installs `net` as the serving model for one cluster — the
    /// per-cluster commit step of a lifecycle rollout. The checkpoint is
    /// stored durably as a sparse [`WeightDelta`] against the cluster's
    /// immutable base bundle model, stamped with a fresh engine-wide
    /// generation, and WAL-logged before it becomes visible, so recovery
    /// replays the adoption decision and a recovered engine serves the
    /// same generation bit-for-bit. Personalized users are untouched:
    /// their forks anchor to the base model and keep winning resolution.
    ///
    /// Returns the generation stamp the cluster now serves.
    ///
    /// # Errors
    ///
    /// Wrapped [`DeployError::BadInput`] for an out-of-range cluster,
    /// [`DeployError::Serde`] when the checkpoint's shape does not match
    /// the base model, and [`ServeError::Durable`] when the WAL rejects
    /// the append (the cluster keeps its previous model in that case).
    pub fn adopt_cluster_model(&self, cluster: usize, net: &Network) -> Result<u64, ServeError> {
        let _span = clear_obs::span(clear_obs::Stage::LifecycleRollout);
        let base = self
            .bundle
            .models
            .get(cluster)
            .ok_or(DeployError::BadInput("bundle has no model for cluster"))?;
        let delta = WeightDelta::between(base, net)
            .map_err(|e| DeployError::Serde(format!("delta extraction failed: {e}")))?;
        // Hydrate through the delta (not a clone of `net`) so the bytes
        // served now are the bytes recovery will reconstruct.
        let hydrated = Arc::new(
            delta
                .apply(base)
                .map_err(|e| DeployError::Serde(format!("delta does not re-apply: {e}")))?,
        );
        let generation = {
            // Lock order: adopted slot → WAL. Holding the slot across
            // the append keeps per-slot WAL order equal to install
            // order, so replay converges to the live state.
            let mut slot = self.adopted[cluster].write();
            let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
            self.log_op(|| WalOp::AdoptClusterModel {
                cluster,
                generation,
                delta: Some(Box::new(delta.clone())),
            })?;
            *slot = Some(AdoptedModel {
                generation,
                delta,
                net: hydrated,
            });
            generation
        };
        clear_obs::counter_add(clear_obs::counters::LIFECYCLE_CLUSTERS_ADOPTED, 1);
        self.maybe_snapshot();
        Ok(generation)
    }

    /// Rolls a cluster back to its immutable base bundle model — the
    /// lifecycle controller's regression escape hatch. The restore is
    /// WAL-logged (as an adoption of "no delta") so recovery lands on
    /// the base model too. Returns the generation stamp of the restore,
    /// or 0 without touching the WAL when the cluster already serves
    /// base — rollback of a never-adopted cluster is a no-op, not an
    /// error.
    ///
    /// # Errors
    ///
    /// Wrapped [`DeployError::BadInput`] for an out-of-range cluster and
    /// [`ServeError::Durable`] when the WAL rejects the append (the
    /// adopted model stays in place in that case).
    pub fn restore_cluster_model(&self, cluster: usize) -> Result<u64, ServeError> {
        if cluster >= self.adopted.len() {
            return Err(DeployError::BadInput("bundle has no model for cluster").into());
        }
        let generation = {
            let mut slot = self.adopted[cluster].write();
            if slot.is_none() {
                return Ok(0);
            }
            let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
            self.log_op(|| WalOp::AdoptClusterModel {
                cluster,
                generation,
                delta: None,
            })?;
            *slot = None;
            generation
        };
        clear_obs::counter_add(clear_obs::counters::LIFECYCLE_CLUSTERS_ROLLED_BACK, 1);
        self.maybe_snapshot();
        Ok(generation)
    }

    /// The generation stamp a cluster currently serves: 0 while on the
    /// base bundle model, the adoption's stamp after a rollout.
    pub fn cluster_generation(&self, cluster: usize) -> u64 {
        self.adopted
            .get(cluster)
            .and_then(|slot| slot.read().as_ref().map(|a| a.generation))
            .unwrap_or(0)
    }

    /// Number of clusters the bundle serves (adoption slots).
    pub fn cluster_count(&self) -> usize {
        self.adopted.len()
    }

    /// Drops a user's state (tenant, deferred onboarding buffer and any
    /// cached fork). Returns whether the user existed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Durable`] when the write-ahead log rejects
    /// the operation; the user's state is untouched in that case.
    pub fn offboard(&self, user: &str) -> Result<bool, ServeError> {
        let shard = self.shard_of(user);
        let existed = {
            let mut state = self.write_shard(shard);
            if !state.tenants.contains_key(user) && !state.pending.contains_key(user) {
                false
            } else {
                self.log_op(|| WalOp::Offboard {
                    user: user.to_string(),
                })?;
                let pending = state.pending.remove(user).is_some();
                state.tenants.remove(user).is_some() || pending
            }
        };
        self.cache.remove(user);
        self.maybe_snapshot();
        Ok(existed)
    }

    /// The fork-generation stamp a user's state currently carries —
    /// bumped by every re-onboarding and adopted personalization, and
    /// preserved verbatim across replication, failover and migration.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`DeployError::UnknownUser`] if the user was
    /// never onboarded.
    pub fn generation_of(&self, user: &str) -> Result<u64, ServeError> {
        self.read_shard(self.shard_of(user))
            .tenants
            .get(user)
            .map(|t| t.generation)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()).into())
    }

    /// The cluster a user was assigned to.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`DeployError::UnknownUser`] if the user was
    /// never onboarded.
    pub fn cluster_of(&self, user: &str) -> Result<usize, ServeError> {
        self.read_shard(self.shard_of(user))
            .tenants
            .get(user)
            .map(|t| t.cluster)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()).into())
    }

    /// Whether the user has an adopted personalized fork (resident or
    /// evicted).
    pub fn is_personalized(&self, user: &str) -> bool {
        self.read_shard(self.shard_of(user))
            .tenants
            .get(user)
            .is_some_and(|t| t.delta.is_some())
    }

    /// Windows quarantined so far for a user (0 for unknown users).
    pub fn quarantined_count(&self, user: &str) -> usize {
        self.read_shard(self.shard_of(user))
            .tenants
            .get(user)
            .map_or(0, |t| t.quarantined)
    }

    /// Good-quality maps accumulated for a user whose onboarding is
    /// still deferred (0 for assigned or unknown users).
    pub fn pending_maps(&self, user: &str) -> usize {
        self.read_shard(self.shard_of(user))
            .pending
            .get(user)
            .map_or(0, Vec::len)
    }

    /// All onboarded users, sorted.
    pub fn user_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.state.read().tenants.keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }
}
