//! Sub-centroid hierarchy and cold-start cluster assignment.
//!
//! Paper §III-B1: when a new user enters the system with only unlabeled
//! data, CLEAR computes *internal centroids* `C_{k,i}` for sub-clusters
//! within each main cluster and assigns the user to *"the cluster that
//! minimizes the overall summation of distances to these internal
//! centroids"*. The hierarchy captures within-cluster structure that a
//! single centroid blurs, making the unsupervised assignment markedly more
//! accurate near cluster boundaries.

use crate::distance;
use crate::kmeans::{KMeans, KMeansConfig, KMeansModel};
use serde::{Deserialize, Serialize};

/// Per-cluster internal sub-centroids supporting cold-start assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterHierarchy {
    /// `sub_centroids[k]` holds the internal centroids `C_{k,i}` of main
    /// cluster `k`.
    sub_centroids: Vec<Vec<Vec<f32>>>,
}

/// Configuration of the hierarchy construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Maximum sub-clusters per main cluster; clusters with fewer members
    /// get one sub-centroid per member.
    pub sub_k: usize,
    /// RNG seed for the internal k-means runs.
    pub seed: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self { sub_k: 3, seed: 17 }
    }
}

impl ClusterHierarchy {
    /// Builds the hierarchy from a fitted top-level model and the training
    /// points it was fit on.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != model.assignments().len()` or
    /// `config.sub_k == 0`.
    pub fn build(model: &KMeansModel, points: &[Vec<f32>], config: &HierarchyConfig) -> Self {
        assert_eq!(
            points.len(),
            model.assignments().len(),
            "points must be the model's training set"
        );
        assert!(config.sub_k > 0, "sub_k must be positive");
        let mut sub_centroids = Vec::with_capacity(model.k());
        for c in 0..model.k() {
            let members: Vec<Vec<f32>> = model
                .members(c)
                .into_iter()
                .map(|i| points[i].clone())
                .collect();
            if members.is_empty() {
                // Degenerate cluster: fall back to its top-level centroid.
                sub_centroids.push(vec![model.centroids()[c].clone()]);
                continue;
            }
            let k = config.sub_k.min(members.len());
            let sub = KMeans::new(KMeansConfig {
                k,
                max_iter: 50,
                n_init: 4,
                seed: config.seed.wrapping_add(c as u64),
            })
            .fit(&members);
            sub_centroids.push(sub.centroids().to_vec());
        }
        Self { sub_centroids }
    }

    /// Number of main clusters.
    pub fn k(&self) -> usize {
        self.sub_centroids.len()
    }

    /// The internal centroids of main cluster `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn sub_centroids(&self, k: usize) -> &[Vec<f32>] {
        &self.sub_centroids[k]
    }

    /// Mean distance from `p` to cluster `k`'s internal centroids — the
    /// paper's assignment score (normalized by sub-cluster count so
    /// clusters with more internal centroids are not penalized).
    pub fn score(&self, p: &[f32], k: usize) -> f32 {
        let subs = &self.sub_centroids[k];
        subs.iter().map(|c| distance(p, c)).sum::<f32>() / subs.len() as f32
    }

    /// Cold-start assignment: the cluster minimizing [`Self::score`].
    pub fn assign(&self, p: &[f32]) -> usize {
        let _span = clear_obs::span(clear_obs::Stage::ClusterAssign);
        let mut best = 0;
        let mut best_s = f32::INFINITY;
        for k in 0..self.k() {
            let s = self.score(p, k);
            if s < best_s {
                best_s = s;
                best = k;
            }
        }
        best
    }

    /// Assignment scores for all clusters, ascending by cluster index.
    pub fn scores(&self, p: &[f32]) -> Vec<f32> {
        (0..self.k()).map(|k| self.score(p, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two elongated bar clusters where single centroids blur structure.
    /// (Bars are kept shorter than their separation so the top-level
    /// k-means reliably splits them apart rather than along the bars.)
    fn elongated() -> (Vec<Vec<f32>>, KMeansModel) {
        let mut pts = Vec::new();
        // Cluster 0: horizontal bar y≈0, x in [0, 5.7].
        for i in 0..20 {
            pts.push(vec![i as f32 * 0.3, (i % 3) as f32 * 0.1]);
        }
        // Cluster 1: horizontal bar y≈5, x in [0, 5.7].
        for i in 0..20 {
            pts.push(vec![i as f32 * 0.3, 5.0 + (i % 3) as f32 * 0.1]);
        }
        let model = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .fit(&pts);
        (pts, model)
    }

    #[test]
    fn hierarchy_has_requested_structure() {
        let (pts, model) = elongated();
        let h = ClusterHierarchy::build(&model, &pts, &HierarchyConfig::default());
        assert_eq!(h.k(), 2);
        for k in 0..2 {
            assert_eq!(h.sub_centroids(k).len(), 3);
        }
    }

    #[test]
    fn assignment_matches_obvious_membership() {
        let (pts, model) = elongated();
        let h = ClusterHierarchy::build(&model, &pts, &HierarchyConfig::default());
        // A point clearly on the y≈0 bar.
        let low = vec![3.0f32, 0.05];
        let high = vec![3.0f32, 5.05];
        let c_low = h.assign(&low);
        let c_high = h.assign(&high);
        assert_ne!(c_low, c_high);
        assert_eq!(c_low, model.predict(&low));
        assert_eq!(c_high, model.predict(&high));
    }

    #[test]
    fn sub_centroids_capture_elongation_better_than_single_centroid() {
        // Point at the far end of the elongated cluster 0: the single
        // top-level centroid sits at the bar's middle, but a sub-centroid
        // sits near the end, shrinking the assignment score.
        let (pts, model) = elongated();
        let h = ClusterHierarchy::build(&model, &pts, &HierarchyConfig::default());
        let end_point = vec![5.6f32, 0.0];
        let own = model.predict(&end_point);
        let d_top = distance(&end_point, &model.centroids()[own]);
        let d_best_sub = h
            .sub_centroids(own)
            .iter()
            .map(|c| distance(&end_point, c))
            .fold(f32::INFINITY, f32::min);
        assert!(d_best_sub < d_top, "sub {d_best_sub} vs top {d_top}");
    }

    #[test]
    fn scores_are_consistent_with_assign() {
        let (pts, model) = elongated();
        let h = ClusterHierarchy::build(&model, &pts, &HierarchyConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = vec![rng.gen_range(0.0..6.0f32), rng.gen_range(-1.0..6.0f32)];
            let scores = h.scores(&p);
            let argmin = scores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(h.assign(&p), argmin);
        }
    }

    #[test]
    fn tiny_clusters_degrade_gracefully() {
        let pts = vec![vec![0.0f32], vec![0.1], vec![10.0]];
        let model = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .fit(&pts);
        let h = ClusterHierarchy::build(&model, &pts, &HierarchyConfig { sub_k: 5, seed: 1 });
        // Each cluster has at most as many sub-centroids as members.
        for k in 0..h.k() {
            assert!(h.sub_centroids(k).len() <= 2);
            assert!(!h.sub_centroids(k).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "training set")]
    fn mismatched_points_panic() {
        let pts = vec![vec![0.0f32], vec![1.0]];
        let model = KMeans::new(KMeansConfig {
            k: 1,
            ..Default::default()
        })
        .fit(&pts);
        let _ = ClusterHierarchy::build(&model, &pts[..1].to_vec(), &HierarchyConfig::default());
    }
}
