//! Property proofs for the consistent-hash partitioner.
//!
//! Two invariants carry the cluster's rebalancing story:
//!
//! 1. **Minimal movement** — adding a member moves keys only *to* that
//!    member; removing one moves only *its* keys. Everything else stays
//!    exactly where it was.
//! 2. **Balance** — with 64 virtual nodes per member, no member's share
//!    of a large key population strays far from its fair share.

use clear_cluster::{HashRing, Partitioner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adding_a_member_moves_keys_only_to_it(
        members in proptest::collection::btree_set(0usize..32, 1..8),
        newcomer in 32usize..40,
        keys in proptest::collection::vec("[a-z]{1,12}", 50..200),
    ) {
        let mut ring = HashRing::new(32);
        for &m in &members {
            ring.add(m);
        }
        let before: Vec<usize> = keys.iter().map(|k| ring.owner_of(k).unwrap()).collect();
        ring.add(newcomer);
        let after: Vec<usize> = keys.iter().map(|k| ring.owner_of(k).unwrap()).collect();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                prop_assert_eq!(
                    *a, newcomer,
                    "key {:?} moved to member {} instead of the newcomer", keys[i], a
                );
            }
        }
    }

    #[test]
    fn removing_a_member_moves_only_its_keys(
        members in proptest::collection::btree_set(0usize..32, 2..8),
        victim_pick in any::<prop::sample::Index>(),
        keys in proptest::collection::vec("[a-z]{1,12}", 50..200),
    ) {
        let mut ring = HashRing::new(32);
        for &m in &members {
            ring.add(m);
        }
        let member_list: Vec<usize> = members.iter().copied().collect();
        let victim = member_list[victim_pick.index(member_list.len())];
        let before: Vec<usize> = keys.iter().map(|k| ring.owner_of(k).unwrap()).collect();
        ring.remove(victim);
        let after: Vec<usize> = keys.iter().map(|k| ring.owner_of(k).unwrap()).collect();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b == victim {
                prop_assert_ne!(*a, victim, "key {:?} still owned by the removed member", keys[i]);
            } else {
                prop_assert_eq!(
                    b, a,
                    "key {:?} moved although its owner was not removed", keys[i]
                );
            }
        }
    }

    #[test]
    fn member_shares_stay_balanced(
        member_count in 2usize..8,
        salt in 0u64..1000,
    ) {
        let mut ring = HashRing::new(64);
        for m in 0..member_count {
            ring.add(m);
        }
        let total = 2048usize;
        let mut counts = vec![0usize; member_count];
        for i in 0..total {
            counts[ring.owner_of(&format!("key-{salt}-{i}")).unwrap()] += 1;
        }
        let ideal = total as f64 / member_count as f64;
        for (m, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) < ideal * 3.0,
                "member {} owns {} of {} keys (ideal {:.0}) — too hot", m, c, total, ideal
            );
            prop_assert!(
                (c as f64) > ideal / 8.0,
                "member {} owns {} of {} keys (ideal {:.0}) — starved", m, c, total, ideal
            );
        }
    }

    #[test]
    fn partition_placement_moves_minimally_and_users_never_move(
        members in proptest::collection::btree_set(0usize..16, 1..6),
        newcomer in 16usize..20,
        users in proptest::collection::vec("[a-z]{1,10}", 20..80),
    ) {
        let mut part = Partitioner::new(16, 32);
        for &m in &members {
            part.add_member(m);
        }
        let user_partitions: Vec<usize> = users.iter().map(|u| part.partition_of(u)).collect();
        let leaders_before: Vec<usize> =
            (0..16).map(|p| part.leader_of(p).unwrap()).collect();
        part.add_member(newcomer);
        // Users never change partition on membership change.
        let user_partitions_after: Vec<usize> =
            users.iter().map(|u| part.partition_of(u)).collect();
        prop_assert_eq!(user_partitions, user_partitions_after);
        // Partition leadership moves only to the newcomer.
        for p in 0..16 {
            let now = part.leader_of(p).unwrap();
            if now != leaders_before[p] {
                prop_assert_eq!(now, newcomer, "partition {} moved to an old member", p);
            }
        }
        // Leader and follower are always distinct when possible.
        if part.members().len() >= 2 {
            for p in 0..16 {
                let leader = part.leader_of(p).unwrap();
                let follower = part.follower_of(p).unwrap();
                prop_assert_ne!(leader, follower, "partition {} self-replicates", p);
            }
        }
    }

    #[test]
    fn r_replica_placement_never_co_locates_and_moves_minimally(
        members in proptest::collection::btree_set(0usize..16, 1..6),
        newcomer in 16usize..20,
        replicas in 1usize..4,
    ) {
        let mut part = Partitioner::new(16, 32);
        for &m in &members {
            part.add_member(m);
        }
        // Placement never co-locates: leader and all followers are
        // pairwise distinct, clamped to available membership.
        let check_distinct = |part: &Partitioner| -> Result<(), TestCaseError> {
            for p in 0..16 {
                let leader = part.leader_of(p).unwrap();
                let followers = part.followers_of(p, replicas);
                let expected = replicas.min(part.members().len() - 1);
                prop_assert_eq!(
                    followers.len(), expected,
                    "partition {} placed {} followers, wanted {}", p, followers.len(), expected
                );
                let mut all = followers.clone();
                all.push(leader);
                let total = all.len();
                all.sort_unstable();
                all.dedup();
                prop_assert_eq!(all.len(), total, "partition {} co-locates replicas", p);
            }
            Ok(())
        };
        check_distinct(&part)?;
        // Adding a member changes only replica sets the ring reassigns:
        // every changed set involves the newcomer (it joined the set, or
        // its arrival shifted the clockwise walk past the leader).
        let before: Vec<(usize, Vec<usize>)> = (0..16)
            .map(|p| (part.leader_of(p).unwrap(), part.followers_of(p, replicas)))
            .collect();
        part.add_member(newcomer);
        check_distinct(&part)?;
        for p in 0..16 {
            let now = (part.leader_of(p).unwrap(), part.followers_of(p, replicas));
            if now != before[p] {
                let gained = now.0 == newcomer || now.1.contains(&newcomer);
                prop_assert!(
                    gained,
                    "partition {} replica set changed without involving the newcomer: \
                     {:?} -> {:?}", p, before[p], now
                );
            }
        }
    }
}
