//! # clear-core — the CLEAR pipeline
//!
//! This crate assembles the substrates (`clear-sim`, `clear-features`,
//! `clear-clustering`, `clear-nn`, `clear-edge`) into the full CLEAR
//! methodology of the paper:
//!
//! 1. **Cloud stage** ([`pipeline`]): feature maps → Global Clustering
//!    (refined k-means over per-user feature vectors, K = 4) → one
//!    CNN-LSTM pre-trained per cluster, with the best-validation
//!    checkpoint retained.
//! 2. **Edge stage** ([`pipeline`]): cold-start Cluster Assignment of an
//!    unseen user from a small fraction of *unlabeled* data (summed
//!    distance to each cluster's internal sub-centroids), followed by
//!    optional fine-tuning with a small fraction of labeled data.
//!
//! The evaluation harnesses ([`evaluation`]) reproduce the paper's
//! protocols: Leave-One-Subject-Out throughout, CL validation (intra-
//! cluster LOSO) with robustness tests, the General-model baseline, full
//! CLEAR validation with and without fine-tuning, and the cloud-edge
//! deployment study of Table II ([`experiments`]).
//!
//! ## Example
//!
//! ```no_run
//! use clear_core::config::ClearConfig;
//! use clear_core::dataset::PreparedCohort;
//! use clear_core::pipeline::CloudTraining;
//!
//! let config = ClearConfig::quick(7);
//! let data = PreparedCohort::prepare(&config);
//! let subjects = data.subject_ids();
//! let cloud = CloudTraining::fit(&data, &subjects, &config);
//! println!("trained {} cluster models", cloud.cluster_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dataset;
pub mod deployment;
pub mod evaluation;
pub mod experiments;
pub mod pipeline;
pub mod serving;

pub use config::ClearConfig;
pub use dataset::PreparedCohort;
pub use deployment::{
    ClearBundle, ClearDeployment, DeployError, ModelSource, Onboarding, PersonalizeOutcome,
    Prediction, ServingPolicy,
};
pub use pipeline::CloudTraining;
