//! Feature explorer: which of the 123 physiological features carry the
//! fear signal, and how does that differ across response archetypes?
//!
//! Generates one subject per archetype, extracts feature maps for fear and
//! non-fear stimuli, and prints each archetype's most discriminative
//! features (largest standardized mean difference). This reproduces the
//! intuition behind CLEAR: *different user groups express fear through
//! different physiological channels*, which is why per-cluster models beat
//! a single general model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example feature_explorer
//! ```

use clear::features::{catalog, FeatureExtractor, WindowConfig, FEATURE_COUNT};
use clear::sim::{Cohort, CohortConfig, Emotion};

fn main() {
    let config = CohortConfig {
        subjects_per_archetype: [1, 1, 1, 1],
        recordings_per_subject: 24,
        ..CohortConfig::paper_scale(11)
    };
    let cohort = Cohort::generate(&config);
    let extractor = FeatureExtractor::new(config.signal, WindowConfig::default());

    for subject in cohort.subjects() {
        // Mean feature vector per emotion class.
        let mut fear = vec![0.0f64; FEATURE_COUNT];
        let mut calm = vec![0.0f64; FEATURE_COUNT];
        let mut sq = vec![0.0f64; FEATURE_COUNT];
        let (mut nf, mut nc) = (0usize, 0usize);
        let recs = cohort.recordings_of(clear::sim::SubjectId(subject.id));
        for rec in &recs {
            let col = extractor.feature_map(rec).mean_column();
            match rec.emotion {
                Emotion::Fear => {
                    for (a, v) in fear.iter_mut().zip(&col) {
                        *a += *v as f64;
                    }
                    nf += 1;
                }
                Emotion::NonFear => {
                    for (a, v) in calm.iter_mut().zip(&col) {
                        *a += *v as f64;
                    }
                    nc += 1;
                }
            }
            for (a, v) in sq.iter_mut().zip(&col) {
                *a += (*v as f64) * (*v as f64);
            }
        }
        let n = (nf + nc) as f64;
        // Standardized mean difference per feature.
        let mut scored: Vec<(usize, f64)> = (0..FEATURE_COUNT)
            .map(|i| {
                let mf = fear[i] / nf as f64;
                let mc = calm[i] / nc as f64;
                let mean = (fear[i] + calm[i]) / n;
                let var = (sq[i] / n - mean * mean).max(1e-12);
                (i, (mf - mc) / var.sqrt())
            })
            .collect();
        scored.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());

        println!(
            "\nsubject V{:02} ({}): top discriminative features (fear vs non-fear)",
            subject.id, subject.archetype
        );
        for (idx, d) in scored.iter().take(6) {
            let def = catalog::CATALOG[*idx];
            println!(
                "  {:<24} [{} / {}]  effect size {:+.2}",
                def.name, def.modality, def.domain, d
            );
        }
    }
    println!(
        "\nNote how the dominant channel changes with the archetype — the\n\
         structure CLEAR's Global Clustering discovers without labels."
    );
}
