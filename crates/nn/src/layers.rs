//! Neural-network layers with exact backward passes.
//!
//! Each layer processes one sample at a time (mini-batches accumulate
//! gradients across consecutive `forward`/`backward` calls before an
//! optimizer step). Layers hold *weights only* — everything mutable per
//! call (activations, gradients, the LSTM tape, pooling argmax, dropout
//! masks) lives in the caller's [`Workspace`](crate::workspace::Workspace)
//! — so checkpoints contain weights only, layers are `&self` during
//! execution, and one model can serve many concurrent callers.
//!
//! The backward pass reads each layer's forward input from the workspace
//! activation chain instead of a per-layer cache: the ReLU mask is the
//! input's sign, the conv/dense input is the previous activation, and so
//! on. Only genuinely derived state (pool argmax, LSTM step tape, dropout
//! mask) is stored.

use crate::backend::{InferenceBackend, KernelScratch};
use crate::tensor::Tensor;
use crate::workspace::{LayerState, LstmTape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sequential-network layer.
///
/// Using an enum (rather than trait objects) keeps networks serializable
/// and keeps dispatch static.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// 2D valid convolution.
    Conv2d(Conv2d),
    /// Rectified linear activation.
    Relu(Relu),
    /// Max pooling with stride equal to the kernel.
    MaxPool2d(MaxPool2d),
    /// `[C, H, W] → [W, C·H]` conversion feeding the LSTM (time = windows).
    MapToSequence(MapToSequence),
    /// Long short-term memory over a `[T, D]` sequence, returning the last
    /// hidden state.
    Lstm(Lstm),
    /// Fully connected layer.
    Dense(Dense),
    /// Inverted dropout (train-time only).
    Dropout(Dropout),
}

impl Layer {
    /// Runs the layer forward, writing the output activation into `out`
    /// and per-call state into `state`. `train` enables dropout. The
    /// compute-bearing layers dispatch through `backend` with `scratch`
    /// for kernel-private buffers; data-movement layers ignore both.
    pub(crate) fn forward_ws(
        &self,
        x: &Tensor,
        out: &mut Tensor,
        state: &mut LayerState,
        scratch: &mut KernelScratch,
        train: bool,
        backend: &dyn InferenceBackend,
    ) {
        match (self, state) {
            (Layer::Conv2d(l), LayerState::Conv2d { .. }) => backend.conv2d(l, x, out, scratch),
            (Layer::Relu(_), LayerState::Relu) => backend.relu(x, out),
            (Layer::MaxPool2d(l), LayerState::MaxPool2d { argmax }) => l.forward(x, out, argmax),
            (Layer::MapToSequence(l), LayerState::MapToSequence) => l.forward(x, out),
            (Layer::Lstm(l), LayerState::Lstm { tape, .. }) => {
                backend.lstm(l, x, out, tape, scratch)
            }
            (Layer::Dense(l), LayerState::Dense { .. }) => backend.gemm(l, x, out, scratch),
            (Layer::Dropout(l), LayerState::Dropout { mask, counter }) => {
                l.forward(x, out, mask, counter, train)
            }
            _ => panic!("workspace state does not match layer {}", self.name()),
        }
    }

    /// Propagates `gout` (gradient w.r.t. this layer's output) to `gin`
    /// (gradient w.r.t. its input), accumulating parameter gradients in
    /// `state`. `input` is the activation this layer consumed in the
    /// matching forward pass.
    pub(crate) fn backward_ws(
        &self,
        gout: &Tensor,
        input: &Tensor,
        gin: &mut Tensor,
        state: &mut LayerState,
    ) {
        match (self, state) {
            (Layer::Conv2d(l), LayerState::Conv2d { gw, gb }) => {
                l.backward(gout, input, gin, gw, gb)
            }
            (Layer::Relu(l), LayerState::Relu) => l.backward(gout, input, gin),
            (Layer::MaxPool2d(l), LayerState::MaxPool2d { argmax }) => {
                l.backward(gout, input, gin, argmax)
            }
            (Layer::MapToSequence(l), LayerState::MapToSequence) => l.backward(gout, input, gin),
            (Layer::Lstm(l), LayerState::Lstm { gwx, gwh, gb, tape }) => {
                l.backward(gout, input, gin, gwx, gwh, gb, tape)
            }
            (Layer::Dense(l), LayerState::Dense { gw, gb }) => l.backward(gout, input, gin, gw, gb),
            (Layer::Dropout(l), LayerState::Dropout { mask, .. }) => l.backward(gout, gin, mask),
            _ => panic!("workspace state does not match layer {}", self.name()),
        }
    }

    /// Visits each parameter slice (read-only), in optimizer order.
    pub fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        match self {
            Layer::Conv2d(l) => {
                f(&l.w);
                f(&l.b);
            }
            Layer::Lstm(l) => {
                f(&l.wx);
                f(&l.wh);
                f(&l.b);
            }
            Layer::Dense(l) => {
                f(&l.w);
                f(&l.b);
            }
            Layer::Relu(_) | Layer::MaxPool2d(_) | Layer::MapToSequence(_) | Layer::Dropout(_) => {}
        }
    }

    /// Visits each parameter slice mutably, in optimizer order (used by
    /// quantization and checkpoint restore).
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        match self {
            Layer::Conv2d(l) => {
                f(&mut l.w);
                f(&mut l.b);
            }
            Layer::Lstm(l) => {
                f(&mut l.wx);
                f(&mut l.wh);
                f(&mut l.b);
            }
            Layer::Dense(l) => {
                f(&mut l.w);
                f(&mut l.b);
            }
            Layer::Relu(_) | Layer::MaxPool2d(_) | Layer::MapToSequence(_) | Layer::Dropout(_) => {}
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.w.len() + l.b.len(),
            Layer::Lstm(l) => l.wx.len() + l.wh.len() + l.b.len(),
            Layer::Dense(l) => l.w.len() + l.b.len(),
            _ => 0,
        }
    }

    /// Short human-readable layer name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "Conv2d",
            Layer::Relu(_) => "ReLU",
            Layer::MaxPool2d(_) => "MaxPool2d",
            Layer::MapToSequence(_) => "MapToSequence",
            Layer::Lstm(_) => "LSTM",
            Layer::Dense(_) => "Dense",
            Layer::Dropout(_) => "Dropout",
        }
    }
}

fn xavier(fan_in: usize, fan_out: usize, n: usize, rng: &mut SmallRng) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

// ---------------------------------------------------------------- Conv2d --

/// Valid 2D convolution (stride 1), input `[C_in, H, W]`, output
/// `[C_out, H-kh+1, W-kw+1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    pub(crate) w: Vec<f32>,
    pub(crate) b: Vec<f32>,
}

impl Conv2d {
    /// New Xavier-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, kh: usize, kw: usize, seed: u64) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kh > 0 && kw > 0, "zero conv dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = out_ch * in_ch * kh * kw;
        let fan_in = in_ch * kh * kw;
        let fan_out = out_ch * kh * kw;
        Self {
            in_ch,
            out_ch,
            kh,
            kw,
            w: xavier(fan_in, fan_out, n, &mut rng),
            b: vec![0.0; out_ch],
        }
    }

    /// `(in_ch, out_ch, kh, kw)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.in_ch, self.out_ch, self.kh, self.kw)
    }

    /// The reference kernel: the plain loop nest every backend is
    /// specified against (see [`crate::backend`]).
    pub(crate) fn forward_scalar(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.rank(), 3, "Conv2d expects [C, H, W]");
        assert_eq!(x.shape()[0], self.in_ch, "Conv2d channel mismatch");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert!(
            h >= self.kh && w >= self.kw,
            "input {h}x{w} smaller than kernel {}x{}",
            self.kh,
            self.kw
        );
        let (oh, ow) = (h - self.kh + 1, w - self.kw + 1);
        out.resize(&[self.out_ch, oh, ow]);
        let xs = x.as_slice();
        let od = out.as_mut_slice();
        for o in 0..self.out_ch {
            for y in 0..oh {
                for xcol in 0..ow {
                    let mut acc = self.b[o];
                    for i in 0..self.in_ch {
                        for ky in 0..self.kh {
                            let wrow = ((o * self.in_ch + i) * self.kh + ky) * self.kw;
                            let xrow = (i * h + y + ky) * w + xcol;
                            for kx in 0..self.kw {
                                acc += self.w[wrow + kx] * xs[xrow + kx];
                            }
                        }
                    }
                    od[(o * oh + y) * ow + xcol] = acc;
                }
            }
        }
    }

    fn backward(
        &self,
        gout: &Tensor,
        x: &Tensor,
        gin: &mut Tensor,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (h - self.kh + 1, w - self.kw + 1);
        assert_eq!(gout.shape(), &[self.out_ch, oh, ow], "Conv2d grad shape");
        let xs = x.as_slice();
        let gs = gout.as_slice();
        gin.resize(&[self.in_ch, h, w]);
        gin.fill(0.0);
        let gd = gin.as_mut_slice();
        for o in 0..self.out_ch {
            for y in 0..oh {
                for xcol in 0..ow {
                    let g = gs[(o * oh + y) * ow + xcol];
                    if g == 0.0 {
                        continue;
                    }
                    gb[o] += g;
                    for i in 0..self.in_ch {
                        for ky in 0..self.kh {
                            let wrow = ((o * self.in_ch + i) * self.kh + ky) * self.kw;
                            let xrow = (i * h + y + ky) * w + xcol;
                            for kx in 0..self.kw {
                                gw[wrow + kx] += g * xs[xrow + kx];
                                gd[xrow + kx] += g * self.w[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------------ Relu --

/// Rectified linear unit, any rank. The backward mask is the forward
/// input's sign, so the layer is stateless.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }

    fn backward(&self, gout: &Tensor, x: &Tensor, gin: &mut Tensor) {
        assert_eq!(gout.shape(), x.shape(), "ReLU grad shape");
        gin.resize(x.shape());
        let gd = gin.as_mut_slice();
        for (i, (&g, &v)) in gout.as_slice().iter().zip(x.as_slice()).enumerate() {
            gd[i] = if v > 0.0 { g } else { 0.0 };
        }
    }
}

// ------------------------------------------------------------- MaxPool2d --

/// Max pooling over `[C, H, W]` with window `(ph, pw)` and stride equal to
/// the window; trailing remainders are dropped (floor semantics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    ph: usize,
    pw: usize,
}

impl MaxPool2d {
    /// New pooling layer with window `(ph, pw)`.
    ///
    /// # Panics
    ///
    /// Panics if either window dimension is zero.
    pub fn new(ph: usize, pw: usize) -> Self {
        assert!(ph > 0 && pw > 0, "pool window must be nonzero");
        Self { ph, pw }
    }

    /// `(ph, pw)`.
    pub fn window(&self) -> (usize, usize) {
        (self.ph, self.pw)
    }

    fn forward(&self, x: &Tensor, out: &mut Tensor, argmax: &mut Vec<usize>) {
        assert_eq!(x.rank(), 3, "MaxPool2d expects [C, H, W]");
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (oh, ow) = (h / self.ph, w / self.pw);
        assert!(oh > 0 && ow > 0, "input smaller than pool window");
        let xs = x.as_slice();
        out.resize(&[c, oh, ow]);
        argmax.resize(c * oh * ow, 0);
        let od = out.as_mut_slice();
        for ci in 0..c {
            for y in 0..oh {
                for xcol in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for py in 0..self.ph {
                        for px in 0..self.pw {
                            let idx = (ci * h + y * self.ph + py) * w + xcol * self.pw + px;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = (ci * oh + y) * ow + xcol;
                    od[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }

    fn backward(&self, gout: &Tensor, x: &Tensor, gin: &mut Tensor, argmax: &[usize]) {
        assert_eq!(gout.numel(), argmax.len(), "MaxPool2d grad shape");
        gin.resize(x.shape());
        gin.fill(0.0);
        let gd = gin.as_mut_slice();
        for (oidx, &g) in gout.as_slice().iter().enumerate() {
            gd[argmax[oidx]] += g;
        }
    }
}

// --------------------------------------------------------- MapToSequence --

/// Converts a `[C, H, W]` convolutional activation into a `[W, C·H]`
/// sequence — each feature-map window (time step) becomes one LSTM input.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MapToSequence {}

impl MapToSequence {
    /// New converter.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.rank(), 3, "MapToSequence expects [C, H, W]");
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        out.resize(&[w, c * h]);
        let od = out.as_mut_slice();
        let xs = x.as_slice();
        for t in 0..w {
            for ci in 0..c {
                for y in 0..h {
                    od[t * (c * h) + ci * h + y] = xs[(ci * h + y) * w + t];
                }
            }
        }
    }

    fn backward(&self, gout: &Tensor, x: &Tensor, gin: &mut Tensor) {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(gout.shape(), &[w, c * h], "MapToSequence grad shape");
        gin.resize(x.shape());
        let gd = gin.as_mut_slice();
        let gs = gout.as_slice();
        for t in 0..w {
            for ci in 0..c {
                for y in 0..h {
                    gd[(ci * h + y) * w + t] = gs[t * (c * h) + ci * h + y];
                }
            }
        }
    }
}

// ------------------------------------------------------------------ Lstm --

/// Single-layer LSTM consuming `[T, D]`, emitting the final hidden state
/// `[H]`. Gate order in the stacked weights is `i, f, g, o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    pub(crate) wx: Vec<f32>, // [4H, D]
    pub(crate) wh: Vec<f32>, // [4H, H]
    pub(crate) b: Vec<f32>,  // [4H]
}

impl Lstm {
    /// New Xavier-initialized LSTM with a forget-gate bias of 1.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input: usize, hidden: usize, seed: u64) -> Self {
        assert!(input > 0 && hidden > 0, "zero lstm dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        let wx = xavier(input, hidden, 4 * hidden * input, &mut rng);
        let wh = xavier(hidden, hidden, 4 * hidden * hidden, &mut rng);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias 1.0 (standard trick for gradient flow).
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self {
            input,
            hidden,
            wx,
            wh,
            b,
        }
    }

    /// `(input_size, hidden_size)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.input, self.hidden)
    }

    /// The reference kernel: the plain loop nest every backend is
    /// specified against (see [`crate::backend`]).
    pub(crate) fn forward_scalar(&self, x: &Tensor, out: &mut Tensor, tape: &mut LstmTape) {
        assert_eq!(x.rank(), 2, "LSTM expects [T, D]");
        assert_eq!(x.shape()[1], self.input, "LSTM input width mismatch");
        let t_len = x.shape()[0];
        let hdim = self.hidden;
        tape.begin(t_len, hdim);
        let xs = x.as_slice();
        for t in 0..t_len {
            let xt = &xs[t * self.input..(t + 1) * self.input];
            // z = Wx x + Wh h + b, gate blocks i|f|g|o.
            {
                let h_prev: &[f32] = if t == 0 {
                    &tape.zero
                } else {
                    &tape.hs[(t - 1) * hdim..t * hdim]
                };
                let gates_t = &mut tape.gates[t * 4 * hdim..(t + 1) * 4 * hdim];
                for row in 0..4 * hdim {
                    let mut acc = 0.0f32;
                    let wrow = &self.wx[row * self.input..(row + 1) * self.input];
                    for (wv, xv) in wrow.iter().zip(xt) {
                        acc += wv * xv;
                    }
                    let hrow = &self.wh[row * hdim..(row + 1) * hdim];
                    for (wv, hv) in hrow.iter().zip(h_prev) {
                        acc += wv * hv;
                    }
                    gates_t[row] = self.b[row] + acc;
                }
            }
            self.step_from_preacts(t, tape);
        }
        out.resize(&[hdim]);
        out.as_mut_slice()
            .copy_from_slice(&tape.hs[(t_len - 1) * hdim..t_len * hdim]);
    }

    /// Activates the step-`t` gate pre-activations in place and advances
    /// the cell and hidden state. Shared by every backend: only the
    /// pre-activation projections differ between kernels, the nonlinear
    /// step is always this exact f32 code.
    pub(crate) fn step_from_preacts(&self, t: usize, tape: &mut LstmTape) {
        let hdim = self.hidden;
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        {
            let gates_t = &mut tape.gates[t * 4 * hdim..(t + 1) * 4 * hdim];
            for j in 0..hdim {
                gates_t[j] = sigmoid(gates_t[j]); // i
                gates_t[hdim + j] = sigmoid(gates_t[hdim + j]); // f
                gates_t[2 * hdim + j] = gates_t[2 * hdim + j].tanh(); // g
                gates_t[3 * hdim + j] = sigmoid(gates_t[3 * hdim + j]); // o
            }
        }
        {
            let gates_t = &tape.gates[t * 4 * hdim..(t + 1) * 4 * hdim];
            let (cs_past, cs_now) = tape.cs.split_at_mut(t * hdim);
            let c_prev: &[f32] = if t == 0 {
                &tape.zero
            } else {
                &cs_past[(t - 1) * hdim..]
            };
            let c_t = &mut cs_now[..hdim];
            for j in 0..hdim {
                c_t[j] = gates_t[hdim + j] * c_prev[j] + gates_t[j] * gates_t[2 * hdim + j];
            }
            let hs_t = &mut tape.hs[t * hdim..(t + 1) * hdim];
            for j in 0..hdim {
                hs_t[j] = gates_t[3 * hdim + j] * c_t[j].tanh();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        gout: &Tensor,
        x: &Tensor,
        gin: &mut Tensor,
        gwx: &mut [f32],
        gwh: &mut [f32],
        gb: &mut [f32],
        tape: &mut LstmTape,
    ) {
        let hdim = self.hidden;
        assert_eq!(gout.shape(), &[hdim], "LSTM grad shape");
        let t_len = x.shape()[0];
        assert_eq!(tape.cs.len(), t_len * hdim, "LSTM backward before forward");
        tape.dh.resize(hdim, 0.0);
        tape.dh.copy_from_slice(gout.as_slice());
        tape.dc.resize(hdim, 0.0);
        tape.dc.iter_mut().for_each(|v| *v = 0.0);
        tape.dh_prev.resize(hdim, 0.0);
        tape.dz.resize(4 * hdim, 0.0);
        gin.resize(&[t_len, self.input]);
        gin.fill(0.0);
        let xs = x.as_slice();
        for t in (0..t_len).rev() {
            let gates = &tape.gates[t * 4 * hdim..(t + 1) * 4 * hdim];
            let c_t = &tape.cs[t * hdim..(t + 1) * hdim];
            let c_prev: &[f32] = if t == 0 {
                &tape.zero
            } else {
                &tape.cs[(t - 1) * hdim..t * hdim]
            };
            let h_prev: &[f32] = if t == 0 {
                &tape.zero
            } else {
                &tape.hs[(t - 1) * hdim..t * hdim]
            };
            // dz blocks i|f|g|o.
            for j in 0..hdim {
                let i = gates[j];
                let f = gates[hdim + j];
                let g = gates[2 * hdim + j];
                let o = gates[3 * hdim + j];
                let tc = c_t[j].tanh();
                let do_ = tape.dh[j] * tc;
                let dct = tape.dc[j] + tape.dh[j] * o * (1.0 - tc * tc);
                let di = dct * g;
                let df = dct * c_prev[j];
                let dg = dct * i;
                tape.dc[j] = dct * f; // becomes dc_{t-1}
                tape.dz[j] = di * i * (1.0 - i);
                tape.dz[hdim + j] = df * f * (1.0 - f);
                tape.dz[2 * hdim + j] = dg * (1.0 - g * g);
                tape.dz[3 * hdim + j] = do_ * o * (1.0 - o);
            }
            // Parameter gradients and upstream gradients.
            tape.dh_prev.iter_mut().for_each(|v| *v = 0.0);
            {
                let xt = &xs[t * self.input..(t + 1) * self.input];
                let gx = &mut gin.as_mut_slice()[t * self.input..(t + 1) * self.input];
                for row in 0..4 * hdim {
                    let dzr = tape.dz[row];
                    if dzr == 0.0 {
                        continue;
                    }
                    gb[row] += dzr;
                    let wx_row = row * self.input;
                    for (k, &xv) in xt.iter().enumerate() {
                        gwx[wx_row + k] += dzr * xv;
                        gx[k] += dzr * self.wx[wx_row + k];
                    }
                    let wh_row = row * hdim;
                    for (k, &hv) in h_prev.iter().enumerate() {
                        gwh[wh_row + k] += dzr * hv;
                        tape.dh_prev[k] += dzr * self.wh[wh_row + k];
                    }
                }
            }
            std::mem::swap(&mut tape.dh, &mut tape.dh_prev);
        }
    }
}

// ----------------------------------------------------------------- Dense --

/// Fully connected layer `[D] → [O]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    input: usize,
    output: usize,
    pub(crate) w: Vec<f32>, // [O, D]
    pub(crate) b: Vec<f32>,
}

impl Dense {
    /// New Xavier-initialized dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input: usize, output: usize, seed: u64) -> Self {
        assert!(input > 0 && output > 0, "zero dense dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        Self {
            input,
            output,
            w: xavier(input, output, input * output, &mut rng),
            b: vec![0.0; output],
        }
    }

    /// `(input_size, output_size)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.input, self.output)
    }

    /// The reference kernel: the plain loop nest every backend is
    /// specified against (see [`crate::backend`]).
    pub(crate) fn forward_scalar(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.rank(), 1, "Dense expects [D]");
        assert_eq!(x.numel(), self.input, "Dense input width mismatch");
        let xs = x.as_slice();
        out.resize(&[self.output]);
        let od = out.as_mut_slice();
        for (o, ov) in od.iter_mut().enumerate() {
            let row = &self.w[o * self.input..(o + 1) * self.input];
            *ov = self.b[o] + row.iter().zip(xs).map(|(w, x)| w * x).sum::<f32>();
        }
    }

    fn backward(
        &self,
        gout: &Tensor,
        x: &Tensor,
        gin: &mut Tensor,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        assert_eq!(gout.shape(), &[self.output], "Dense grad shape");
        let xs = x.as_slice();
        let gs = gout.as_slice();
        gin.resize(&[self.input]);
        gin.fill(0.0);
        let gd = gin.as_mut_slice();
        for (o, &g) in gs.iter().enumerate() {
            gb[o] += g;
            let row = o * self.input;
            for k in 0..self.input {
                gw[row + k] += g * xs[k];
                gd[k] += g * self.w[row + k];
            }
        }
    }
}

// --------------------------------------------------------------- Dropout --

/// Inverted dropout: active only in training mode, identity at inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
    seed: u64,
    // Serialized draw counter. The *live* counter advances in the
    // workspace's `LayerState` and is written back here by the trainer, so
    // the checkpoint format (and the mask stream across sequential
    // training runs) is unchanged from the caching-layer design.
    pub(crate) counter: u64,
}

impl Dropout {
    /// New dropout with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            seed,
            counter: 0,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn forward(
        &self,
        x: &Tensor,
        out: &mut Tensor,
        mask: &mut Vec<f32>,
        counter: &mut u64,
        train: bool,
    ) {
        mask.resize(x.numel(), 0.0);
        if !train || self.p == 0.0 {
            mask.iter_mut().for_each(|v| *v = 1.0);
            out.copy_from(x);
            return;
        }
        *counter = counter.wrapping_add(1);
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(*counter));
        let scale = 1.0 / (1.0 - self.p);
        for m in mask.iter_mut() {
            *m = if rng.gen_range(0.0..1.0f32) < self.p {
                0.0
            } else {
                scale
            };
        }
        out.resize(x.shape());
        let od = out.as_mut_slice();
        for (i, (&v, &m)) in x.as_slice().iter().zip(mask.iter()).enumerate() {
            od[i] = v * m;
        }
    }

    fn backward(&self, gout: &Tensor, gin: &mut Tensor, mask: &[f32]) {
        assert_eq!(gout.numel(), mask.len(), "Dropout grad shape");
        gin.resize(gout.shape());
        let gd = gin.as_mut_slice();
        for (i, (&g, &m)) in gout.as_slice().iter().zip(mask.iter()).enumerate() {
            gd[i] = g * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0);
        conv.w = vec![2.0];
        conv.b = vec![1.0];
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut y = Tensor::zeros(&[1]);
        conv.forward_scalar(&x, &mut y);
        assert_eq!(y.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn conv_output_shape() {
        let conv = Conv2d::new(2, 3, 3, 2, 1);
        let x = Tensor::zeros(&[2, 10, 5]);
        let mut y = Tensor::zeros(&[1]);
        conv.forward_scalar(&x, &mut y);
        assert_eq!(y.shape(), &[3, 8, 4]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 0.0, 9.0]);
        let mut y = Tensor::zeros(&[1]);
        let mut argmax = Vec::new();
        pool.forward(&x, &mut y, &mut argmax);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 9.0]);
        let g = Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]);
        let mut gin = Tensor::zeros(&[1]);
        pool.backward(&g, &x, &mut gin, &argmax);
        // Gradient routes only to the argmax positions.
        assert_eq!(gin.as_slice(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let relu = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let mut y = Tensor::zeros(&[1]);
        crate::backend::ScalarRef.relu(&x, &mut y);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::from_vec(&[4], vec![1.0, 1.0, 1.0, 1.0]);
        let mut gin = Tensor::zeros(&[1]);
        relu.backward(&g, &x, &mut gin);
        assert_eq!(gin.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn map_to_sequence_round_trip() {
        let m2s = MapToSequence::new();
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|v| v as f32).collect());
        let mut seq = Tensor::zeros(&[1]);
        m2s.forward(&x, &mut seq);
        assert_eq!(seq.shape(), &[3, 4]);
        // t=0 gathers column 0 of both channels: [0, 3, 6, 9].
        assert_eq!(&seq.as_slice()[..4], &[0.0, 3.0, 6.0, 9.0]);
        let mut back = Tensor::zeros(&[1]);
        m2s.backward(&seq, &x, &mut back);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn lstm_shapes_and_determinism() {
        let lstm = Lstm::new(5, 7, 3);
        let x = Tensor::from_vec(&[4, 5], (0..20).map(|v| v as f32 * 0.1).collect());
        let mut tape = LstmTape::default();
        let mut h1 = Tensor::zeros(&[1]);
        let mut h2 = Tensor::zeros(&[1]);
        lstm.forward_scalar(&x, &mut h1, &mut tape);
        lstm.forward_scalar(&x, &mut h2, &mut tape);
        assert_eq!(h1.shape(), &[7]);
        assert_eq!(h1.as_slice(), h2.as_slice());
        assert!(h1.as_slice().iter().all(|v| v.abs() < 1.0)); // tanh-bounded
    }

    #[test]
    fn lstm_remembers_sequence_order() {
        let lstm = Lstm::new(1, 4, 9);
        let up = Tensor::from_vec(&[3, 1], vec![0.1, 0.5, 0.9]);
        let down = Tensor::from_vec(&[3, 1], vec![0.9, 0.5, 0.1]);
        let mut tape = LstmTape::default();
        let mut h = Tensor::zeros(&[1]);
        lstm.forward_scalar(&up, &mut h, &mut tape);
        let hu = h.as_slice().to_vec();
        lstm.forward_scalar(&down, &mut h, &mut tape);
        let hd = h.as_slice().to_vec();
        assert_ne!(hu, hd, "order must matter to an LSTM");
    }

    #[test]
    fn dense_linear_map() {
        let mut dense = Dense::new(2, 2, 0);
        dense.w = vec![1.0, 2.0, 3.0, 4.0];
        dense.b = vec![0.5, -0.5];
        let mut y = Tensor::zeros(&[1]);
        dense.forward_scalar(&Tensor::from_vec(&[2], vec![1.0, 1.0]), &mut y);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[8], vec![1.0; 8]);
        let mut y = Tensor::zeros(&[1]);
        let mut mask = Vec::new();
        let mut counter = 0u64;
        d.forward(&x, &mut y, &mut mask, &mut counter, false);
        assert_eq!(y.as_slice(), x.as_slice());
        assert_eq!(counter, 0, "inference must not advance the mask stream");
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let d = Dropout::new(0.5, 7);
        let x = Tensor::from_vec(&[10_000], vec![1.0; 10_000]);
        let mut y = Tensor::zeros(&[1]);
        let mut mask = Vec::new();
        let mut counter = 0u64;
        d.forward(&x, &mut y, &mut mask, &mut counter, true);
        assert_eq!(counter, 1);
        let mean = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.06, "inverted-dropout mean {mean}");
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 4_000 && zeros < 6_000);
    }

    #[test]
    fn layer_enum_dispatch_and_param_count() {
        let layer = Layer::Dense(Dense::new(3, 2, 0));
        assert_eq!(layer.name(), "Dense");
        assert_eq!(layer.param_count(), 8);
        let mut state = LayerState::for_layer(&layer);
        let mut scratch = KernelScratch::default();
        let mut y = Tensor::zeros(&[1]);
        layer.forward_ws(
            &Tensor::zeros(&[3]),
            &mut y,
            &mut state,
            &mut scratch,
            false,
            &crate::backend::ScalarRef,
        );
        assert_eq!(y.shape(), &[2]);
        let mut visited = 0;
        layer.visit_params(&mut |p| {
            assert!(!p.is_empty());
            visited += 1;
        });
        assert_eq!(visited, 2);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let layer = Layer::Dense(Dense::new(2, 1, 0));
        let mut state = LayerState::for_layer(&layer);
        let mut scratch = KernelScratch::default();
        let x = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        let mut y = Tensor::zeros(&[1]);
        layer.forward_ws(&x, &mut y, &mut state, &mut scratch, true, &crate::backend::ScalarRef);
        let mut gin = Tensor::zeros(&[1]);
        layer.backward_ws(&Tensor::from_vec(&[1], vec![1.0]), &x, &mut gin, &mut state);
        let mut nonzero = false;
        state.visit_grads(&mut |g| nonzero |= g.iter().any(|&v| v != 0.0));
        assert!(nonzero);
        state.zero_grads();
        state.visit_grads(&mut |g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}
