//! Cluster benchmark: what WAL-shipped replication costs and what
//! failover buys. Writes `BENCH_cluster.json` so the cluster perf
//! trajectory is tracked across revisions.
//!
//! Reported numbers:
//!
//! * onboarding ops/sec on a single engine vs a three-member replicated
//!   cluster (every mutation framed, shipped over the simulated network
//!   and acknowledged by the follower);
//! * steady-state prediction windows/sec, single vs cluster — clean
//!   windows never append, so shipping should cost almost nothing here;
//! * onboarding throughput as a function of the replica count
//!   (R = 0 / 1 / 2, full write quorum) — what each additional
//!   synchronously acknowledged follower costs;
//! * anti-entropy scrub cost: wall time per partition for a
//!   fingerprint exchange across every follower on a settled cluster;
//! * failover wall time: killing the member that leads a partition,
//!   measured until the promoted follower is serving and a replacement
//!   follower has been seeded — plus the same measurement with live
//!   streaming sessions attached, until every queued map has been
//!   redelivered;
//! * catch-up wall time as a function of replication lag: the link to a
//!   follower is cut, the leader keeps committing, and the time to drain
//!   the accumulated WAL suffix after healing is measured per lag size.
//!
//! Before any timing, the cluster's output is asserted bit-identical to
//! the single engine — replication overhead is only meaningful because
//! replication changes no served bit.

use clear_bench::cli_from_args;
use clear_cluster::{
    ClusterConfig, FaultProfile, ReplicationConfig, ServeCluster, SimNet,
};
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::{deploy, Prediction, ServingPolicy};
use clear_features::FeatureMap;
use clear_serve::{EngineConfig, ServeEngine};
use clear_stream::{ClusterPump, SessionConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Tenants onboarded in the overhead runs.
const USERS: usize = 16;
/// Prediction passes over the full request set per measurement.
const ROUNDS: usize = 4;
/// Replication-lag sizes for the catch-up sweep.
const LAG_STEPS: [usize; 3] = [4, 16, 48];

#[derive(Debug, Serialize)]
struct CatchUpPoint {
    lag: u64,
    catch_up_ms: f32,
}

#[derive(Debug, Serialize)]
struct QuorumPoint {
    replicas: usize,
    write_quorum: usize,
    onboard_ops_per_sec: f32,
    overhead_x_vs_single: f32,
}

#[derive(Debug, Serialize)]
struct ClusterBench {
    users: usize,
    members: usize,
    partitions: usize,
    windows_per_request: usize,
    onboard_ops_per_sec_single: f32,
    onboard_ops_per_sec_cluster: f32,
    replication_overhead_x: f32,
    predict_windows_per_sec_single: f32,
    predict_windows_per_sec_cluster: f32,
    predict_overhead_x: f32,
    frames_shipped: u64,
    frames_acked: u64,
    net_messages: u64,
    failover_partitions: usize,
    failover_ms: f32,
    failover_live_sessions_ms: f32,
    scrub_ms_per_partition: f32,
    scrub_repairs: u64,
    quorum: Vec<QuorumPoint>,
    catch_up: Vec<CatchUpPoint>,
}

fn lenient() -> ServingPolicy {
    ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 4,
        cache_capacity: 8,
        max_queue_depth: 256,
        ..EngineConfig::default()
    }
}

fn cluster_config(replication: ReplicationConfig) -> ClusterConfig {
    ClusterConfig {
        partitions: 8,
        vnodes: 64,
        engine: engine_config(),
        ship_retries: 2,
        ship_timeout_ticks: 4,
        replication,
        scrub_every_ticks: 0,
    }
}

/// Maps `[lo, hi)` of the subject at `rank` (modulo cohort size),
/// clamped to the subject's recording count.
fn maps_of(data: &PreparedCohort, rank: usize, lo: usize, hi: usize) -> Vec<FeatureMap> {
    let subjects = data.subject_ids();
    let indices = data.indices_of(subjects[rank % subjects.len()]);
    let lo = lo.min(indices.len());
    let hi = hi.min(indices.len());
    indices[lo..hi]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect()
}

fn counter(snapshot: &clear_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

/// A user name guaranteed to land on `partition`, found by salting.
fn user_on_partition(c: &ServeCluster, partition: usize, salt: usize) -> String {
    (0..)
        .map(|n| format!("lag-{salt}-{n}"))
        .find(|name| c.partition_of(name) == partition)
        .expect("some salt lands on every partition")
}

/// Drives replication to completion, returning elapsed seconds.
fn settle(c: &mut ServeCluster) -> f32 {
    let t0 = Instant::now();
    for _ in 0..50 {
        if c.flush().is_ok() {
            return t0.elapsed().as_secs_f32();
        }
    }
    c.flush().expect("replication settles within the retry budget");
    t0.elapsed().as_secs_f32()
}

fn main() {
    let cli = cli_from_args();

    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    // Reduced training profile: the benchmark measures replication, not SGD.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (_, initial) = subjects.split_last().expect("cohort is non-empty");
    let bundle = deploy(&data, initial, &config).bundle().clone();

    // Single-engine baseline.
    let single = ServeEngine::with_policy(bundle.clone(), lenient(), engine_config());
    let t0 = Instant::now();
    for i in 0..USERS {
        single
            .onboard(&format!("user-{i}"), &maps_of(&data, i, 0, 2))
            .expect("onboarding maps");
    }
    let single_onboard_secs = t0.elapsed().as_secs_f32();

    // Three-member replicated cluster over a reliable simulated network
    // (one follower, single-ack quorum — the historical baseline).
    let mut cluster = ServeCluster::new(
        bundle.clone(),
        lenient(),
        &[0, 1, 2],
        cluster_config(ReplicationConfig {
            replicas: 1,
            write_quorum: 1,
        }),
        Box::new(SimNet::new(7, FaultProfile::reliable())),
    )
    .expect("cluster builds");
    let t0 = Instant::now();
    for i in 0..USERS {
        cluster
            .onboard(&format!("user-{i}"), &maps_of(&data, i, 0, 2))
            .expect("onboarding maps");
    }
    settle(&mut cluster);
    let cluster_onboard_secs = t0.elapsed().as_secs_f32();

    let onboard_ops_per_sec_single = USERS as f32 / single_onboard_secs.max(1e-9);
    let onboard_ops_per_sec_cluster = USERS as f32 / cluster_onboard_secs.max(1e-9);
    let replication_overhead_x =
        onboard_ops_per_sec_single / onboard_ops_per_sec_cluster.max(1e-9);
    eprintln!(
        "onboarding: {onboard_ops_per_sec_single:.0} ops/sec single, \
         {onboard_ops_per_sec_cluster:.0} ops/sec replicated ({replication_overhead_x:.2}x overhead)"
    );

    let requests: Vec<(String, Vec<FeatureMap>)> = (0..USERS)
        .map(|i| (format!("user-{i}"), maps_of(&data, i, 2, 6)))
        .collect();
    let windows_per_request = requests.first().map_or(0, |(_, maps)| maps.len());
    let total_windows = requests.iter().map(|(_, maps)| maps.len()).sum::<usize>();

    // Correctness gate: replication must change no served bit.
    let mut single_results: Vec<Vec<Prediction>> = Vec::new();
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        for (user, maps) in &requests {
            let r = single.predict(user, maps).expect("benchmark users are onboarded");
            if round == 0 {
                single_results.push(r);
            }
        }
    }
    let single_predict_secs = t0.elapsed().as_secs_f32();

    let mut cluster_results: Vec<Vec<Prediction>> = Vec::new();
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        for (user, maps) in &requests {
            let r = cluster.predict(user, maps).expect("benchmark users are onboarded");
            if round == 0 {
                cluster_results.push(r);
            }
        }
    }
    let cluster_predict_secs = t0.elapsed().as_secs_f32();
    assert_eq!(
        single_results, cluster_results,
        "cluster output diverged from the single engine"
    );

    let predict_windows_per_sec_single =
        (ROUNDS * total_windows) as f32 / single_predict_secs.max(1e-9);
    let predict_windows_per_sec_cluster =
        (ROUNDS * total_windows) as f32 / cluster_predict_secs.max(1e-9);
    let predict_overhead_x =
        predict_windows_per_sec_single / predict_windows_per_sec_cluster.max(1e-9);
    eprintln!(
        "prediction: {predict_windows_per_sec_single:.0} windows/sec single, \
         {predict_windows_per_sec_cluster:.0} windows/sec replicated ({predict_overhead_x:.2}x)"
    );

    // Quorum-overhead sweep: what each additional synchronously
    // acknowledged follower costs on the mutation path. R = 0 ships
    // nothing synchronously; R = 2 waits for both followers.
    let mut quorum = Vec::new();
    for replicas in [0usize, 1, 2] {
        let replication = ReplicationConfig {
            replicas,
            write_quorum: replicas,
        };
        let mut c = ServeCluster::new(
            bundle.clone(),
            lenient(),
            &[0, 1, 2],
            cluster_config(replication),
            Box::new(SimNet::new(23, FaultProfile::reliable())),
        )
        .expect("cluster builds");
        let t0 = Instant::now();
        for i in 0..USERS {
            c.onboard(&format!("user-{i}"), &maps_of(&data, i, 0, 2))
                .expect("onboarding maps");
        }
        settle(&mut c);
        let ops_per_sec = USERS as f32 / t0.elapsed().as_secs_f32().max(1e-9);
        let overhead = onboard_ops_per_sec_single / ops_per_sec.max(1e-9);
        eprintln!(
            "quorum R={replicas}: {ops_per_sec:.0} onboard ops/sec ({overhead:.2}x vs single)"
        );
        quorum.push(QuorumPoint {
            replicas,
            write_quorum: replicas,
            onboard_ops_per_sec: ops_per_sec,
            overhead_x_vs_single: overhead,
        });
    }

    // Scrub cost: a full fingerprint exchange per partition on a
    // settled cluster (every follower clean, nothing to repair).
    settle(&mut cluster);
    let t0 = Instant::now();
    for p in 0..cluster.partition_count() {
        cluster.scrub(p).expect("scrub on a settled cluster");
    }
    let scrub_ms_per_partition =
        t0.elapsed().as_secs_f32() * 1e3 / cluster.partition_count().max(1) as f32;
    eprintln!("scrub: {scrub_ms_per_partition:.2} ms/partition");

    // Catch-up sweep: cut the follower link on one partition, let the
    // leader accumulate a WAL suffix, heal, and time the drain.
    let mut catch_up = Vec::new();
    for (step, &ops) in LAG_STEPS.iter().enumerate() {
        settle(&mut cluster);
        let partition = cluster.partition_of("user-0");
        let leader = cluster
            .leader_of_partition(partition)
            .expect("partition has a leader");
        let follower = cluster
            .follower_of_partition(partition)
            .expect("partition has a follower");
        cluster.net_mut().partition_link(leader, follower);
        for i in 0..ops {
            let user = user_on_partition(&cluster, partition, step * 1000 + i);
            cluster
                .onboard(&user, &maps_of(&data, i, 0, 2))
                .expect("lagging onboards still commit on the leader");
        }
        let lag = cluster.lag_of(partition);
        cluster.net_mut().heal_all();
        let catch_up_ms = settle(&mut cluster) * 1e3;
        eprintln!("catch-up: lag {lag} drained in {catch_up_ms:.1} ms");
        catch_up.push(CatchUpPoint { lag, catch_up_ms });
    }

    // Failover: kill the member leading user-0's partition and time the
    // promotion (catch-up from the dead leader's disk, role flip, and
    // seeding of a replacement follower for every partition it led).
    let partition = cluster.partition_of("user-0");
    let victim = cluster
        .leader_of_partition(partition)
        .expect("partition has a leader");
    let failover_partitions = (0..cluster.partition_count())
        .filter(|&p| cluster.leader_of_partition(p) == Some(victim))
        .count();
    let t0 = Instant::now();
    cluster.kill_member(victim).expect("crash handled");
    let failover_ms = t0.elapsed().as_secs_f32() * 1e3;
    eprintln!("failover: {failover_partitions} partitions re-led in {failover_ms:.1} ms");

    // Post-failover correctness: the promoted follower serves user-0's
    // exact bits.
    let (user, maps) = &requests[0];
    let after = cluster.predict(user, maps).expect("promoted follower serves");
    assert_eq!(
        single_results[0], after,
        "failover changed served bits for user-0"
    );
    cluster.restart_member(victim).expect("restart handled");
    settle(&mut cluster);

    // Failover with live streaming sessions attached: kill the leader of
    // user-0's partition mid-stream and measure until every queued map
    // has been redelivered through the promoted leader.
    let stream_users: Vec<String> = (0..4).map(|i| format!("user-{i}")).collect();
    let mut pump = ClusterPump::new(SessionConfig::new(
        config.cohort.signal,
        config.window,
        bundle.windows,
    ));
    for u in &stream_users {
        pump.open(u).expect("open session");
    }
    let raw: Vec<(String, (Vec<f32>, Vec<f32>, Vec<f32>))> = stream_users
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let subjects = data.subject_ids();
            let idx = data.indices_of(subjects[i % subjects.len()]);
            let mut bvp = Vec::new();
            let mut gsr = Vec::new();
            let mut skt = Vec::new();
            for &r in idx.iter().take(4) {
                let rec = &data.cohort().recordings()[r];
                bvp.extend_from_slice(&rec.bvp);
                gsr.extend_from_slice(&rec.gsr);
                skt.extend_from_slice(&rec.skt);
            }
            (u.clone(), (bvp, gsr, skt))
        })
        .collect();
    for (u, (bvp, gsr, skt)) in &raw {
        pump.ingest(
            u,
            &bvp[..bvp.len() / 2],
            &gsr[..gsr.len() / 2],
            &skt[..skt.len() / 2],
        )
        .expect("pre-crash ingest");
    }
    pump.drain(&mut cluster);
    let partition = cluster.partition_of("user-0");
    let victim = cluster
        .leader_of_partition(partition)
        .expect("partition has a leader");
    let t0 = Instant::now();
    cluster.kill_member(victim).expect("crash handled");
    for (u, (bvp, gsr, skt)) in &raw {
        pump.ingest(
            u,
            &bvp[bvp.len() / 2..],
            &gsr[gsr.len() / 2..],
            &skt[skt.len() / 2..],
        )
        .expect("post-crash ingest");
    }
    for _ in 0..3 {
        pump.drain(&mut cluster);
    }
    let failover_live_sessions_ms = t0.elapsed().as_secs_f32() * 1e3;
    for u in &stream_users {
        assert_eq!(pump.pending_maps_of(u), 0, "{u} left maps undelivered");
    }
    eprintln!(
        "failover with {} live sessions: {failover_live_sessions_ms:.1} ms",
        stream_users.len()
    );
    cluster.restart_member(victim).expect("restart handled");
    settle(&mut cluster);

    let obs = registry.snapshot();
    let results = ClusterBench {
        users: USERS,
        members: 3,
        partitions: cluster.partition_count(),
        windows_per_request,
        onboard_ops_per_sec_single,
        onboard_ops_per_sec_cluster,
        replication_overhead_x,
        predict_windows_per_sec_single,
        predict_windows_per_sec_cluster,
        predict_overhead_x,
        frames_shipped: counter(&obs, clear_obs::counters::CLUSTER_FRAMES_SHIPPED),
        frames_acked: counter(&obs, clear_obs::counters::CLUSTER_FRAMES_ACKED),
        net_messages: counter(&obs, clear_obs::counters::CLUSTER_NET_MESSAGES),
        failover_partitions,
        failover_ms,
        failover_live_sessions_ms,
        scrub_ms_per_partition,
        scrub_repairs: counter(&obs, clear_obs::counters::CLUSTER_SCRUB_REPAIRS),
        quorum,
        catch_up,
    };
    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_cluster.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_cluster_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    clear_obs::uninstall();
}
