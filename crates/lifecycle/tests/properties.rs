//! Property-based invariants of the drift monitor's windowing:
//!
//! 1. a stationary stream never signals, at any window geometry, traffic
//!    level or sample ordering;
//! 2. the response to an abstention-rate step is monotone — a larger
//!    step never signals where a smaller one stayed quiet, and the
//!    reported rise grows with the step;
//! 3. no input — empty, degenerate geometry, zero traffic, saturating
//!    counters — ever panics.

use clear_lifecycle::{DriftConfig, DriftMonitor, DriftSignal, WindowSample};
use proptest::prelude::*;

fn sample(served: u64, abstained: u64) -> WindowSample {
    WindowSample {
        served,
        abstained: abstained.min(served),
        ..WindowSample::default()
    }
}

fn abstention_rise(signals: &[DriftSignal]) -> Option<f64> {
    signals.iter().find_map(|s| match s {
        DriftSignal::AbstentionStep { reference, recent } => Some(recent - reference),
        _ => None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// A stream whose per-window abstention rate never moves must never
    /// signal, for any window geometry, stream length, traffic volume or
    /// per-window jitter in volume (rates are scale-free).
    #[test]
    fn stationary_streams_never_signal(
        reference in 1usize..12,
        recent in 1usize..12,
        den in 1u64..1000,
        num_seed in 0u64..1000,
        jitter in prop::collection::vec(1u64..5, 0..40),
    ) {
        let config = DriftConfig {
            reference_windows: reference,
            recent_windows: recent,
            min_traffic: 0,
            ..DriftConfig::default()
        };
        // Exact constant rate num/den at every window: volume jitters,
        // the rate does not (scaling numerator and denominator alike
        // keeps the ratio exact — no integer-floor artifacts).
        let num = num_seed % (den + 1);
        let mut monitor = DriftMonitor::new(config);
        for &scale in &jitter {
            monitor.observe(sample(den * scale, num * scale));
            let signals = monitor.assess();
            prop_assert!(
                signals.is_empty(),
                "stationary stream signalled: {signals:?}"
            );
        }
    }

    /// After a step in the abstention rate, the monitor's response is
    /// monotone in the step size: if a step of `d` signals, every larger
    /// step signals too, and the reported rise is at least as large.
    #[test]
    fn response_is_monotone_in_the_step_size(
        reference in 1usize..6,
        recent in 1usize..6,
        served in 100u64..10_000,
        base_per_mille in 0u64..400,
        step_a in 0u64..300,
        extra in 1u64..300,
    ) {
        let config = DriftConfig {
            reference_windows: reference,
            recent_windows: recent,
            min_traffic: 1,
            ..DriftConfig::default()
        };
        let step_b = step_a + extra;
        let run = |step: u64| {
            let mut monitor = DriftMonitor::new(config);
            for _ in 0..reference {
                monitor.observe(sample(served, served * base_per_mille / 1000));
            }
            for _ in 0..recent {
                let rate = (base_per_mille + step).min(1000);
                monitor.observe(sample(served, served * rate / 1000));
            }
            monitor.assess()
        };
        let small = abstention_rise(&run(step_a));
        let large = abstention_rise(&run(step_b));
        if let Some(small_rise) = small {
            let large_rise = large.expect("larger step must also signal");
            prop_assert!(
                large_rise >= small_rise - 1e-9,
                "rise shrank: {small_rise} -> {large_rise}"
            );
        }
    }

    /// No observation sequence, window geometry or counter level can
    /// panic the monitor — including zero-window configs, zero traffic,
    /// abstained > served inputs and u64::MAX counters.
    #[test]
    fn never_panics_on_degenerate_input(
        reference in 0usize..4,
        recent in 0usize..4,
        min_traffic in 0u64..100,
        stream in prop::collection::vec((0u64..5, 0u64..10), 0..20),
        extremes in any::<bool>(),
    ) {
        let mut monitor = DriftMonitor::new(DriftConfig {
            reference_windows: reference,
            recent_windows: recent,
            min_traffic,
            ..DriftConfig::default()
        });
        let _ = monitor.assess();
        for &(served, abstained) in &stream {
            monitor.observe(WindowSample {
                served,
                abstained,
                ..WindowSample::default()
            });
            let _ = monitor.assess();
        }
        if extremes {
            monitor.observe(WindowSample {
                served: u64::MAX,
                abstained: u64::MAX,
                quality_sum: f64::MAX,
                quality_count: u64::MAX,
                affinity_sum: f64::MIN,
                affinity_count: 1,
            });
            let _ = monitor.assess();
        }
    }

    /// Counter-snapshot diffing is order-safe: regressing counters (a
    /// restarted process) clamp to zero instead of underflowing.
    #[test]
    fn counter_regressions_clamp_instead_of_underflow(
        a in 0u64..1000,
        b in 0u64..1000,
    ) {
        let mut monitor = DriftMonitor::new(DriftConfig::default());
        let snap_with = |n: u64| {
            let mut snap = clear_obs::Snapshot {
                counters: Default::default(),
                gauges: Default::default(),
                histograms: Default::default(),
            };
            snap.counters.insert(clear_obs::counters::PREDICTIONS.to_string(), n);
            snap
        };
        monitor.observe_counters(&snap_with(a));
        monitor.observe_counters(&snap_with(b));
        let _ = monitor.assess();
        prop_assert_eq!(monitor.sample_count(), 1);
    }
}
