//! Property-based tests of the DSP substrate's mathematical invariants.

use clear_dsp::fft::{self, Complex32};
use clear_dsp::filter::{detrend, moving_average, Biquad};
use clear_dsp::resample::interp_uniform;
use clear_dsp::stats;
use clear_dsp::window::WindowKind;
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    /// FFT is linear: FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
    #[test]
    fn fft_linearity(
        x in prop::collection::vec(-10.0f32..10.0, 32),
        y in prop::collection::vec(-10.0f32..10.0, 32),
        a in -3.0f32..3.0,
        b in -3.0f32..3.0,
    ) {
        let combo: Vec<f32> = x.iter().zip(&y).map(|(u, v)| a * u + b * v).collect();
        let fx = fft::fft_real(&x);
        let fy = fft::fft_real(&y);
        let fc = fft::fft_real(&combo);
        for k in 0..32 {
            let expect = Complex32::new(
                a * fx[k].re + b * fy[k].re,
                a * fx[k].im + b * fy[k].im,
            );
            prop_assert!((fc[k].re - expect.re).abs() < 2e-2 * (1.0 + expect.re.abs()));
            prop_assert!((fc[k].im - expect.im).abs() < 2e-2 * (1.0 + expect.im.abs()));
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / n.
    #[test]
    fn fft_parseval(x in prop::collection::vec(-10.0f32..10.0, 64)) {
        let time: f32 = x.iter().map(|v| v * v).sum();
        let freq: f32 = fft::fft_real(&x).iter().map(|c| c.norm_sqr()).sum::<f32>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-2 * (1.0 + time));
    }

    /// Window coefficients stay in [0, 1] and are symmetric.
    #[test]
    fn window_bounds(n in 2usize..200) {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(n);
            prop_assert!(w.iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
            for i in 0..n {
                prop_assert!((w[i] - w[n - 1 - i]).abs() < 1e-5);
            }
        }
    }

    /// Percentiles are bounded by min and max and monotone in p.
    #[test]
    fn percentile_bounds(x in signal_strategy(64), p in 0.0f32..100.0) {
        let lo = stats::min(&x).unwrap();
        let hi = stats::max(&x).unwrap();
        let v = stats::percentile(&x, p).unwrap();
        prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        let v2 = stats::percentile(&x, (p + 10.0).min(100.0)).unwrap();
        prop_assert!(v2 >= v - 1e-4);
    }

    /// Variance is non-negative and zero only for constants.
    #[test]
    fn variance_nonnegative(x in signal_strategy(64)) {
        prop_assert!(stats::variance(&x) >= 0.0);
    }

    /// A Butterworth low-pass never blows up on bounded input.
    #[test]
    fn filter_bibo_stability(
        x in prop::collection::vec(-1.0f32..1.0, 64..512),
        fc in 0.5f32..24.0,
    ) {
        let lp = Biquad::butterworth_lowpass(fc, 64.0).unwrap();
        let y = lp.filter(&x);
        prop_assert!(y.iter().all(|v| v.is_finite() && v.abs() < 50.0));
    }

    /// Detrending leaves (near-)zero linear slope.
    #[test]
    fn detrend_kills_slope(x in signal_strategy(128)) {
        prop_assume!(x.len() >= 4);
        let y = detrend(&x);
        let residual = stats::slope(&y).abs();
        let scale = stats::std_dev(&x).max(1.0);
        prop_assert!(residual < 1e-2 * scale, "slope {residual}");
    }

    /// Moving average preserves length and global mean (approximately,
    /// edges use shorter windows so exact preservation is not expected).
    #[test]
    fn moving_average_properties(x in signal_strategy(128), w in 1usize..15) {
        let y = moving_average(&x, w);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
        let (lo, hi) = (stats::min(&x).unwrap(), stats::max(&x).unwrap());
        prop_assert!(y.iter().all(|&v| v >= lo - 1e-4 && v <= hi + 1e-4));
    }

    /// Linear interpolation output is bounded by input extremes.
    #[test]
    fn interp_is_bounded(ys in prop::collection::vec(-10.0f32..10.0, 2..32), n in 1usize..64) {
        let xs: Vec<f32> = (0..ys.len()).map(|i| i as f32).collect();
        let out = interp_uniform(&xs, &ys, -1.0, ys.len() as f32, n).unwrap();
        let lo = stats::min(&ys).unwrap();
        let hi = stats::max(&ys).unwrap();
        prop_assert!(out.iter().all(|&v| v >= lo - 1e-4 && v <= hi + 1e-4));
    }

    /// Z-scored signals are scale- and shift-invariant.
    #[test]
    fn zscore_invariance(
        x in prop::collection::vec(-10.0f32..10.0, 8..64),
        shift in -50.0f32..50.0,
        scale in 0.1f32..10.0,
    ) {
        prop_assume!(stats::std_dev(&x) > 1e-3);
        let transformed: Vec<f32> = x.iter().map(|v| v * scale + shift).collect();
        let za = stats::zscore(&x);
        let zb = stats::zscore(&transformed);
        for (a, b) in za.iter().zip(&zb) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b}");
        }
    }
}
