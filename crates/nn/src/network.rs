//! Sequential network container, checkpointing, and the canonical CNN-LSTM.

use crate::layers::{Conv2d, Dense, Dropout, Layer, Lstm, MapToSequence, MaxPool2d, Relu};
use crate::tensor::Tensor;
use crate::NnError;
use serde::{Deserialize, Serialize};

/// A sequential stack of [`Layer`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Self { layers }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by quantization).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Full forward pass. `train` enables dropout.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Full backward pass from the loss gradient; accumulates parameter
    /// gradients in each layer.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad: &Tensor) {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Zeroes the gradients of every parameterized layer except the last
    /// `tail` ones — the transfer-learning freeze: with gradients pinned to
    /// zero, optimizers (including Adam) leave the frozen weights
    /// untouched.
    ///
    /// A `tail` of 1 trains only the dense head; 2 adds the LSTM.
    pub fn mask_grads_to_tail(&mut self, tail: usize) {
        let parameterized = self.layers.iter().filter(|l| l.param_count() > 0).count();
        let frozen = parameterized.saturating_sub(tail);
        let mut seen = 0usize;
        for layer in &mut self.layers {
            if layer.param_count() == 0 {
                continue;
            }
            if seen < frozen {
                layer.zero_grads();
            }
            seen += 1;
        }
    }

    /// Visits every (parameter, gradient) slice pair.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Serializes the network (weights only) to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] when serialization fails.
    pub fn to_json(&self) -> Result<String, NnError> {
        serde_json::to_string(self).map_err(|e| NnError::Checkpoint(e.to_string()))
    }

    /// Restores a network from [`Network::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] when parsing fails.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        serde_json::from_str(json).map_err(|e| NnError::Checkpoint(e.to_string()))
    }

    /// Flattens all parameters into one vector (used by tests and the edge
    /// precision simulator).
    pub fn parameters_flat(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Network::parameters_flat`].
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the parameter count.
    pub fn set_parameters_flat(&mut self, flat: &[f32]) {
        let mut offset = 0usize;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&flat[offset..offset + p.len()]);
            offset += p.len();
        });
        assert_eq!(offset, flat.len(), "flat parameter length mismatch");
    }
}

/// Fully parameterized CNN-LSTM builder: two conv blocks (`c1`, `c2`
/// output channels, 5×3 then feature-axis pooling `p1`, `p2`) feeding an
/// LSTM of `hidden` units and a dense head.
///
/// [`cnn_lstm`] and [`cnn_lstm_compact`] are presets of this builder.
///
/// # Panics
///
/// Panics when the input is too small for the convolution/pooling chain or
/// any size is zero.
#[allow(clippy::too_many_arguments)]
pub fn cnn_lstm_custom(
    features: usize,
    windows: usize,
    classes: usize,
    c1: usize,
    c2: usize,
    p1: usize,
    p2: usize,
    hidden: usize,
    dropout: f32,
    seed: u64,
) -> Network {
    assert!(classes >= 2, "need at least two classes");
    let h1 = features
        .checked_sub(4)
        .expect("feature axis too small for conv1");
    let w1 = windows
        .checked_sub(2)
        .expect("window axis too small for conv1");
    let h1p = h1 / p1;
    let h2 = h1p
        .checked_sub(4)
        .expect("feature axis too small for conv2");
    let w2 = w1.checked_sub(2).expect("window axis too small for conv2");
    assert!(w2 >= 1, "architecture collapsed the temporal axis");
    let h2p = h2 / p2;
    assert!(h2p >= 1, "feature axis too small after pooling");
    let lstm_input = c2 * h2p;
    Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, c1, 5, 3, seed.wrapping_add(1))),
        Layer::Relu(Relu::new()),
        Layer::MaxPool2d(MaxPool2d::new(p1, 1)),
        Layer::Conv2d(Conv2d::new(c1, c2, 5, 3, seed.wrapping_add(2))),
        Layer::Relu(Relu::new()),
        Layer::MaxPool2d(MaxPool2d::new(p2, 1)),
        Layer::MapToSequence(MapToSequence::new()),
        Layer::Lstm(Lstm::new(lstm_input, hidden, seed.wrapping_add(3))),
        Layer::Dropout(Dropout::new(dropout, seed.wrapping_add(4))),
        Layer::Dense(Dense::new(hidden, classes, seed.wrapping_add(5))),
    ])
}

/// A compute-lean preset of the same architecture (4/8 channels, harder
/// feature pooling, 24 LSTM units) used by the single-core experiment
/// harness; ~3× fewer FLOPs than [`cnn_lstm`] at nearly the same accuracy
/// on the CLEAR task.
pub fn cnn_lstm_compact(features: usize, windows: usize, classes: usize, seed: u64) -> Network {
    cnn_lstm_custom(features, windows, classes, 4, 8, 2, 3, 24, 0.3, seed)
}

/// The paper's CNN-LSTM classifier (Fig. 2) for `features × windows`
/// feature maps:
///
/// ```text
/// [1, F, W] → Conv2d(1→6, 5×3) → ReLU → MaxPool(2×1)
///           → Conv2d(6→12, 5×3) → ReLU → MaxPool(2×1)
///           → MapToSequence → LSTM(48) → Dropout(0.3) → Dense(classes)
/// ```
///
/// Pooling shrinks the feature axis only, preserving the temporal (window)
/// axis for the LSTM.
///
/// # Panics
///
/// Panics if the input is too small for the two 5×3 convolutions
/// (`features >= 26`, `windows >= 5`).
pub fn cnn_lstm(features: usize, windows: usize, classes: usize, seed: u64) -> Network {
    assert!(
        features >= 26,
        "feature axis too small for the architecture"
    );
    assert!(windows >= 5, "window axis too small for the architecture");
    cnn_lstm_custom(features, windows, classes, 6, 12, 2, 2, 48, 0.3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;

    #[test]
    fn cnn_lstm_forward_shape() {
        let mut net = cnn_lstm(123, 9, 2, 1);
        let x = Tensor::zeros(&[1, 123, 9]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn cnn_lstm_param_count_is_stable() {
        let net = cnn_lstm(123, 9, 2, 1);
        // Conv1: 6·1·5·3 + 6 = 96; Conv2: 12·6·5·3 + 12 = 1092.
        // h1=119, h1p=59, h2=55, h2p=27 → lstm_in=324.
        // LSTM: 4·48·324 + 4·48·48 + 4·48 = 62208 + 9216 + 192 = 71616.
        // Dense: 2·48 + 2 = 98. Total 72902.
        assert_eq!(net.param_count(), 96 + 1092 + 71616 + 98);
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let mut net = cnn_lstm(40, 6, 2, 7);
        let x = Tensor::from_vec(&[1, 40, 6], (0..240).map(|v| (v as f32).sin()).collect());
        let a = net.forward(&x, false);
        let b = net.forward(&x, false);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let mut net = cnn_lstm(30, 5, 2, 3);
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150)
                .map(|v| ((v * 13 % 17) as f32 - 8.0) / 8.0)
                .collect(),
        );
        let target = 1usize;
        let logits = net.forward(&x, true);
        let (loss0, grad) = cross_entropy(&logits, target);
        net.zero_grads();
        net.backward(&grad);
        // Manual SGD step.
        let lr = 0.05f32;
        net.visit_params(&mut |p, g| {
            for (pv, gv) in p.iter_mut().zip(g.iter()) {
                *pv -= lr * gv;
            }
        });
        let logits1 = net.forward(&x, false);
        let (loss1, _) = cross_entropy(&logits1, target);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn checkpoint_round_trip_preserves_outputs() {
        let mut net = cnn_lstm(30, 5, 2, 11);
        let x = Tensor::from_vec(
            &[1, 30, 5],
            (0..150).map(|v| (v as f32 * 0.13).cos()).collect(),
        );
        let before = net.forward(&x, false);
        let json = net.to_json().unwrap();
        let mut restored = Network::from_json(&json).unwrap();
        let after = restored.forward(&x, false);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn parameters_flat_round_trip() {
        let mut net = cnn_lstm(30, 5, 2, 5);
        let flat = net.parameters_flat();
        assert_eq!(flat.len(), net.param_count());
        let mut altered = flat.clone();
        altered[0] += 1.0;
        net.set_parameters_flat(&altered);
        assert_eq!(net.parameters_flat()[0], flat[0] + 1.0);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        assert!(Network::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = Network::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_input_panics() {
        let _ = cnn_lstm(10, 9, 2, 0);
    }
}
