//! Crash-consistency proof for the durable serving engine.
//!
//! The central test sweeps a simulated crash across **every write
//! boundary** of a scripted operation sequence (onboards — deferred and
//! assigned — a quarantining predict, a personalization, cluster-model
//! adoptions and a rollback, an offboard and a re-onboard), with and
//! without automatic snapshots. At each kill
//! point the engine runs against a fault-injecting storage that tears
//! the failing append and fails everything after it; recovery from the
//! surviving bytes must reproduce — bit-identically, predictions
//! included — the state of a never-crashed engine after some prefix of
//! the script that contains at least every acknowledged operation.
//!
//! Around that core: durable-vs-plain bit-identity, restart round-trips,
//! typed-error (never panic) handling of corrupted snapshots and WALs,
//! and the offboard → re-onboard isolation regression.

mod common;

use clear_core::deployment::{Onboarding, Prediction, ServingPolicy};
use clear_durable::{
    DurableConfig, DurableError, FaultPlan, FaultStorage, MemStorage, ReadFaultPlan, Storage, Wal,
    WalOp, WalRecord,
};
use clear_nn::network::Network;
use clear_serve::{EngineConfig, ServeEngine, ServeError};
use common::{fixture, labeled_of, lenient, maps_of, nan_map, Fixture};
use std::sync::Arc;

/// Users the script touches, in fingerprint order.
const USERS: [&str; 3] = ["amy", "bob", "cal"];

/// The script's serving policy: deterministic labels (no confidence
/// abstention) and a 3-map onboarding floor so the deferred/buffer path
/// is exercised.
fn script_policy() -> ServingPolicy {
    ServingPolicy {
        min_onboarding_maps: 3,
        ..lenient()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 4,
        cache_capacity: 2,
        max_queue_depth: 16,
        ..EngineConfig::default()
    }
}

/// One scripted engine operation.
#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    /// Onboard `user` with maps `[lo, hi)` of the subject at `rank`.
    Onboard(&'static str, usize, usize, usize),
    /// Serve `user` one all-NaN map — the quarantine path.
    PredictNan(&'static str),
    /// Personalize `user` from labels `[lo, hi)` of the subject at
    /// `rank` (tiny budget: adopts unvalidated, deterministically).
    Personalize(&'static str, usize, usize, usize),
    /// Offboard `user`.
    Offboard(&'static str),
    /// Adopt a perturbed candidate generation for `cluster`.
    AdoptCluster(usize),
    /// Restore `cluster` to its base generation.
    RestoreCluster(usize),
}

/// Every durable op type: a deferred onboard (BufferMaps), assigned
/// onboards, a quarantine, a personalization adoption, cluster-model
/// generation swaps (adopt twice, roll one back), an offboard and a
/// re-onboard.
const SCRIPT: [ScriptOp; 10] = [
    ScriptOp::Onboard("amy", 0, 0, 2),
    ScriptOp::Onboard("amy", 0, 2, 5),
    ScriptOp::Onboard("bob", 1, 0, 3),
    ScriptOp::PredictNan("amy"),
    ScriptOp::Personalize("bob", 1, 0, 2),
    ScriptOp::AdoptCluster(0),
    ScriptOp::AdoptCluster(1),
    ScriptOp::RestoreCluster(0),
    ScriptOp::Offboard("amy"),
    ScriptOp::Onboard("amy", 2, 0, 3),
];

/// A deterministically perturbed clone of `cluster`'s base checkpoint:
/// every parameter nudged enough to move every served confidence bit.
fn candidate_of(f: &Fixture, cluster: usize) -> Network {
    let mut net = f.bundle.models[cluster].clone();
    let params: Vec<f32> = net
        .parameters_flat()
        .iter()
        .map(|w| w * 1.01 + 1e-3)
        .collect();
    net.set_parameters_flat(&params);
    net
}

/// Applies one op; `Ok` means the engine acknowledged it.
fn apply(engine: &ServeEngine, f: &Fixture, op: ScriptOp) -> Result<(), ServeError> {
    match op {
        ScriptOp::Onboard(user, rank, lo, hi) => {
            engine.onboard(user, &maps_of(f, rank, lo, hi)).map(|_| ())
        }
        ScriptOp::PredictNan(user) => engine.predict(user, &[nan_map(f)]).map(|_| ()),
        ScriptOp::Personalize(user, rank, lo, hi) => engine
            .personalize(user, &labeled_of(f, rank, lo, hi), &f.config.finetune)
            .map(|_| ()),
        ScriptOp::Offboard(user) => engine.offboard(user).map(|_| ()),
        ScriptOp::AdoptCluster(cluster) => engine
            .adopt_cluster_model(cluster, &candidate_of(f, cluster))
            .map(|_| ()),
        ScriptOp::RestoreCluster(cluster) => engine.restore_cluster_model(cluster).map(|_| ()),
    }
}

/// Runs the script until the first failure (a crashed storage kills the
/// process; nothing after the failing op runs). Returns acknowledged op
/// count.
fn run_script(engine: &ServeEngine, f: &Fixture) -> usize {
    let mut acked = 0;
    for op in SCRIPT {
        if apply(engine, f, op).is_err() {
            break;
        }
        acked += 1;
    }
    acked
}

/// Bit-exact comparable form of one prediction.
fn prediction_key(p: &Prediction) -> String {
    format!(
        "{:?}|{}|{}|{:?}|{:?}",
        p.emotion,
        p.confidence.to_bits(),
        p.quality.to_bits(),
        p.served_by,
        p.imputed
    )
}

/// Bit-exact observable state of the engine: per scripted user, the
/// registry view plus serving bits on clean probe maps (clean maps never
/// quarantine, so probing does not mutate state).
fn fingerprint(engine: &ServeEngine, f: &Fixture) -> Vec<String> {
    let mut out = Vec::new();
    for cluster in 0..engine.cluster_count() {
        out.push(format!(
            "gen{cluster}:{}",
            engine.cluster_generation(cluster)
        ));
    }
    for (rank, user) in USERS.iter().enumerate() {
        let registry = format!(
            "{user}:{:?}:{}:{}:{}",
            engine.cluster_of(user).ok(),
            engine.is_personalized(user),
            engine.quarantined_count(user),
            engine.pending_maps(user),
        );
        out.push(registry);
        let served = match engine.predict(user, &maps_of(f, rank, 5, 7)) {
            Ok(predictions) => predictions.iter().map(prediction_key).collect(),
            Err(e) => vec![format!("err:{e}")],
        };
        out.extend(served);
    }
    out
}

/// Never-crashed reference: fingerprints after every script prefix.
/// `reference[p]` is the state after ops `0..p`.
fn reference_fingerprints(f: &Fixture) -> Vec<Vec<String>> {
    let engine = ServeEngine::with_policy(f.bundle.clone(), script_policy(), engine_config());
    let mut reference = vec![fingerprint(&engine, f)];
    for op in SCRIPT {
        apply(&engine, f, op).expect("reference engine never fails");
        reference.push(fingerprint(&engine, f));
    }
    reference
}

fn durable_engine(storage: Arc<dyn Storage>, f: &Fixture, snapshot_every: usize) -> ServeEngine {
    ServeEngine::recover_with(
        storage,
        f.bundle.clone(),
        script_policy(),
        engine_config(),
        DurableConfig {
            snapshot_every_ops: snapshot_every,
        },
    )
    .expect("recovery from intact storage succeeds")
}

#[test]
fn durable_engine_serves_identical_bits_to_a_plain_engine() {
    let f = fixture();
    let plain = ServeEngine::with_policy(f.bundle.clone(), script_policy(), engine_config());
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let durable = durable_engine(storage, f, 3);
    assert!(durable.is_durable() && !plain.is_durable());
    for op in SCRIPT {
        let a = apply(&plain, f, op).map_err(|e| e.to_string());
        let b = apply(&durable, f, op).map_err(|e| e.to_string());
        assert_eq!(a, b, "{op:?} diverged");
    }
    assert_eq!(fingerprint(&plain, f), fingerprint(&durable, f));
}

#[test]
fn restart_round_trips_bit_identically() {
    let f = fixture();
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    // Snapshot cadence 2: the restart exercises snapshot + WAL-tail
    // replay together.
    let engine = durable_engine(Arc::clone(&storage), f, 2);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    let before = fingerprint(&engine, f);
    drop(engine);
    let recovered = durable_engine(Arc::clone(&storage), f, 2);
    assert_eq!(fingerprint(&recovered, f), before);
    // The recovered engine keeps serving: amy re-onboarded in the script
    // and predicts; bob is still personalized.
    assert!(recovered.predict("amy", &maps_of(f, 2, 3, 5)).is_ok());
    assert!(recovered.is_personalized("bob"));
    // A second cycle through explicit snapshot + restart also holds.
    recovered.snapshot().expect("explicit snapshot succeeds");
    let again = durable_engine(storage, f, 2);
    assert_eq!(fingerprint(&again, f), before);
}

/// The tentpole: at every write boundary, in both snapshot regimes,
/// recovery lands on a script prefix that includes every acknowledged
/// op.
#[test]
fn crash_at_every_write_boundary_recovers_an_acknowledged_prefix() {
    let f = fixture();
    let reference = reference_fingerprints(f);
    for snapshot_every in [0usize, 3] {
        // Dry run to learn this regime's write-boundary count.
        let dry = Arc::new(FaultStorage::new(FaultPlan {
            kill_at: usize::MAX,
            torn_bytes: 0,
        }));
        let engine = durable_engine(Arc::clone(&dry) as Arc<dyn Storage>, f, snapshot_every);
        assert_eq!(run_script(&engine, f), SCRIPT.len());
        assert_eq!(
            fingerprint(&engine, f),
            *reference.last().unwrap(),
            "un-crashed durable run must match the plain reference"
        );
        drop(engine);
        let boundaries = dry.write_boundaries();
        assert!(boundaries > 0, "the script must write at least once");

        for kill_at in 0..boundaries {
            // Vary the torn length so tails of every shape are seen:
            // nothing landed, a few bytes, and more than a whole frame.
            let torn_bytes = (kill_at * 37) % 256;
            let fault = Arc::new(FaultStorage::new(FaultPlan {
                kill_at,
                torn_bytes,
            }));
            let engine = durable_engine(Arc::clone(&fault) as Arc<dyn Storage>, f, snapshot_every);
            let acked = run_script(&engine, f);
            assert!(fault.crashed(), "kill point {kill_at} never triggered");
            drop(engine);

            let recovered = ServeEngine::recover_with(
                fault.surviving(),
                f.bundle.clone(),
                script_policy(),
                engine_config(),
                DurableConfig {
                    snapshot_every_ops: snapshot_every,
                },
            )
            .unwrap_or_else(|e| panic!("kill point {kill_at} left unrecoverable storage: {e}"));
            let fp = fingerprint(&recovered, f);
            match reference.iter().position(|r| *r == fp) {
                Some(p) => assert!(
                    p >= acked,
                    "kill point {kill_at} (snapshot_every {snapshot_every}): recovered \
                     prefix {p} lost acknowledged ops ({acked} acked)"
                ),
                None => panic!(
                    "kill point {kill_at} (snapshot_every {snapshot_every}): recovered \
                     state matches no script prefix ({acked} acked)"
                ),
            }
        }
    }
}

/// Lifecycle satellite: a crash at any write boundary **inside** a
/// cluster-model adoption recovers to either the old generation's bits
/// or the new generation's bits — never a mix — and an acknowledged
/// adoption always survives recovery.
#[test]
fn crash_during_adoption_recovers_old_or_new_bits_never_mixed() {
    let f = fixture();
    let probe = maps_of(f, 0, 5, 7);
    let onboard = |engine: &ServeEngine| {
        assert!(matches!(
            engine.onboard("amy", &maps_of(f, 0, 0, 3)).unwrap(),
            Onboarding::Assigned { .. }
        ));
    };
    let bits_of = |engine: &ServeEngine| -> Vec<String> {
        engine
            .predict_readonly("amy", &probe)
            .expect("probe serves")
            .iter()
            .map(prediction_key)
            .collect()
    };

    // Reference bits on a never-crashed engine, before and after the
    // adoption. The perturbed candidate must actually move the bits,
    // otherwise old-vs-new below proves nothing.
    let plain = ServeEngine::with_policy(f.bundle.clone(), script_policy(), engine_config());
    onboard(&plain);
    let cluster = plain.cluster_of("amy").expect("amy is assigned");
    let old_bits = bits_of(&plain);
    plain
        .adopt_cluster_model(cluster, &candidate_of(f, cluster))
        .expect("adoption on an intact engine");
    let new_bits = bits_of(&plain);
    assert_ne!(old_bits, new_bits, "candidate must change served bits");

    // Dry run to locate the adoption's write boundaries.
    let dry = Arc::new(FaultStorage::new(FaultPlan {
        kill_at: usize::MAX,
        torn_bytes: 0,
    }));
    let engine = durable_engine(Arc::clone(&dry) as Arc<dyn Storage>, f, 0);
    onboard(&engine);
    let start = dry.write_boundaries();
    engine
        .adopt_cluster_model(cluster, &candidate_of(f, cluster))
        .expect("dry adoption succeeds");
    let end = dry.write_boundaries();
    drop(engine);
    assert!(end > start, "adoption must be a durable (logged) operation");

    for kill_at in start..end {
        let torn_bytes = (kill_at * 53) % 256;
        let fault = Arc::new(FaultStorage::new(FaultPlan {
            kill_at,
            torn_bytes,
        }));
        let engine = durable_engine(Arc::clone(&fault) as Arc<dyn Storage>, f, 0);
        onboard(&engine);
        let acked = engine
            .adopt_cluster_model(cluster, &candidate_of(f, cluster))
            .is_ok();
        assert!(fault.crashed(), "kill point {kill_at} never triggered");
        drop(engine);

        let recovered = ServeEngine::recover_with(
            fault.surviving(),
            f.bundle.clone(),
            script_policy(),
            engine_config(),
            DurableConfig::default(),
        )
        .unwrap_or_else(|e| panic!("kill point {kill_at} left unrecoverable storage: {e}"));
        let generation = recovered.cluster_generation(cluster);
        if acked {
            assert!(
                generation > 0,
                "kill point {kill_at}: acknowledged adoption lost on recovery"
            );
        }
        let bits = bits_of(&recovered);
        if generation > 0 {
            assert_eq!(
                bits, new_bits,
                "kill point {kill_at}: adopted generation serves foreign bits"
            );
        } else {
            assert_eq!(
                bits, old_bits,
                "kill point {kill_at}: un-adopted engine serves foreign bits"
            );
        }
    }
}

#[test]
fn corrupted_snapshot_is_a_typed_error_not_a_panic() {
    let f = fixture();
    let mem = Arc::new(MemStorage::new());
    let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
    let engine = durable_engine(storage, f, 0);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    engine.snapshot().expect("snapshot succeeds");
    drop(engine);
    let mut bytes = mem
        .read(clear_durable::snapshot::SNAPSHOT_FILE)
        .unwrap()
        .expect("snapshot exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    mem.write_atomic(clear_durable::snapshot::SNAPSHOT_FILE, &bytes)
        .unwrap();
    let err = match ServeEngine::recover_with(
        Arc::clone(&mem) as Arc<dyn Storage>,
        f.bundle.clone(),
        script_policy(),
        engine_config(),
        DurableConfig::default(),
    ) {
        Ok(_) => panic!("corrupt snapshot must fail recovery"),
        Err(e) => e,
    };
    assert!(matches!(
        err,
        ServeError::Durable(DurableError::CorruptArtifact {
            artifact: "snapshot",
            ..
        })
    ));
}

#[test]
fn corrupted_wal_interior_is_a_typed_error_not_a_panic() {
    let f = fixture();
    let mem = Arc::new(MemStorage::new());
    let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
    let engine = durable_engine(storage, f, 0);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    drop(engine);
    let mut bytes = mem.read(clear_durable::wal::WAL_FILE).unwrap().unwrap();
    // Flip a payload byte of the first frame; the tail stays valid, so
    // this cannot be mistaken for a torn append.
    bytes[10] ^= 0x08;
    mem.write_atomic(clear_durable::wal::WAL_FILE, &bytes)
        .unwrap();
    let err = match ServeEngine::recover_with(
        Arc::clone(&mem) as Arc<dyn Storage>,
        f.bundle.clone(),
        script_policy(),
        engine_config(),
        DurableConfig::default(),
    ) {
        Ok(_) => panic!("corrupt WAL must fail recovery"),
        Err(e) => e,
    };
    assert!(matches!(
        err,
        ServeError::Durable(DurableError::CorruptArtifact {
            artifact: "wal",
            ..
        })
    ));
}

#[test]
fn torn_wal_tail_is_truncated_and_recovery_proceeds() {
    let f = fixture();
    let mem = Arc::new(MemStorage::new());
    let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
    let engine = durable_engine(storage, f, 0);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    let before = fingerprint(&engine, f);
    drop(engine);
    // A torn half-frame after the committed records: expected crash
    // damage, silently truncated.
    mem.append(clear_durable::wal::WAL_FILE, &[200, 1, 0, 0, 9, 9, 9])
        .unwrap();
    let recovered = durable_engine(Arc::clone(&mem) as Arc<dyn Storage>, f, 0);
    assert_eq!(fingerprint(&recovered, f), before);
}

#[test]
fn wal_failure_fails_the_op_without_mutating_state() {
    let f = fixture();
    // Two boundary budget: amy's deferred buffer append lands, then the
    // storage dies mid-append on the assigning onboard.
    let fault = Arc::new(FaultStorage::new(FaultPlan {
        kill_at: 1,
        torn_bytes: 11,
    }));
    let engine = durable_engine(Arc::clone(&fault) as Arc<dyn Storage>, f, 0);
    let buffered = match engine.onboard("amy", &maps_of(f, 0, 0, 2)).unwrap() {
        Onboarding::Deferred { accumulated, .. } => accumulated,
        other => panic!("two maps under a three-map floor must defer, got {other:?}"),
    };
    let err = engine
        .onboard("amy", &maps_of(f, 0, 2, 5))
        .expect_err("append fails at the kill boundary");
    assert!(matches!(err, ServeError::Durable(DurableError::Io(_))));
    // The failed onboard did not commit: amy is still pending with only
    // the windows the first (logged) onboard buffered, and the poisoned
    // WAL fails later mutations fast.
    assert!(engine.cluster_of("amy").is_err());
    assert_eq!(engine.pending_maps("amy"), buffered);
    let err = engine
        .onboard("bob", &maps_of(f, 1, 0, 3))
        .expect_err("poisoned WAL refuses further mutations");
    assert!(matches!(
        err,
        ServeError::Durable(DurableError::WalPoisoned)
    ));
}

/// Satellite regression: a re-onboarded user must never be served by the
/// previous enrolment's personalized weights — generations are globally
/// unique, so a stale cached fork cannot be rehydrated even in principle.
#[test]
fn reonboarded_user_cannot_rehydrate_previous_tenants_weights() {
    let f = fixture();
    let engine = ServeEngine::with_policy(f.bundle.clone(), lenient(), engine_config());
    let maps = maps_of(f, 0, 0, 2);
    let probe = maps_of(f, 0, 3, 5);
    assert!(matches!(
        engine.onboard("amy", &maps).unwrap(),
        Onboarding::Assigned { .. }
    ));
    engine
        .personalize("amy", &labeled_of(f, 0, 0, 2), &f.config.finetune)
        .expect("personalization runs");
    assert!(engine.is_personalized("amy"));
    // Serve once so the personalized fork is resident in the cache.
    let personalized: Vec<String> = engine
        .predict("amy", &probe)
        .unwrap()
        .iter()
        .map(prediction_key)
        .collect();
    assert!(engine.offboard("amy").unwrap());
    assert!(matches!(
        engine.onboard("amy", &maps).unwrap(),
        Onboarding::Assigned { .. }
    ));
    assert!(!engine.is_personalized("amy"));
    // The re-onboarded amy must be served exactly like a fresh user on a
    // fresh engine — never by the offboarded tenant's fork.
    let control = ServeEngine::with_policy(f.bundle.clone(), lenient(), engine_config());
    control.onboard("amy", &maps).unwrap();
    let fresh: Vec<String> = control
        .predict("amy", &probe)
        .unwrap()
        .iter()
        .map(prediction_key)
        .collect();
    let served: Vec<String> = engine
        .predict("amy", &probe)
        .unwrap()
        .iter()
        .map(prediction_key)
        .collect();
    assert_eq!(served, fresh);
    if personalized != fresh {
        assert_ne!(served, personalized, "stale fork served after re-onboard");
    }
}

/// Satellite: read-path faults during recovery are typed errors, never
/// panics — and a bad read is transient (on the wire), not fatal to the
/// bytes: retrying over the same storage recovers bit-identically.
#[test]
fn recovery_under_read_faults_is_typed_and_retryable() {
    let f = fixture();
    let mem = Arc::new(MemStorage::new());
    // Snapshot cadence 3 so recovery reads both artifacts: the snapshot
    // (read boundary 0) and the WAL tail (read boundary 1).
    let engine = durable_engine(Arc::clone(&mem) as Arc<dyn Storage>, f, 3);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    let before = fingerprint(&engine, f);
    drop(engine);
    let blobs = mem.dump();

    let recover_over = |storage: Arc<dyn Storage>| {
        ServeEngine::recover_with(
            storage,
            f.bundle.clone(),
            script_policy(),
            engine_config(),
            DurableConfig {
                snapshot_every_ops: 3,
            },
        )
    };

    // An I/O error on either recovery read is a typed failure.
    for fail_at in [0usize, 1] {
        let fault = Arc::new(FaultStorage::seeded(
            blobs.clone(),
            FaultPlan {
                kill_at: usize::MAX,
                torn_bytes: 0,
            },
            ReadFaultPlan {
                fail_at: Some(fail_at),
                corrupt_at: None,
            },
        ));
        let err = recover_over(Arc::clone(&fault) as Arc<dyn Storage>)
            .map(|_| ())
            .expect_err("a failed read must fail recovery");
        assert!(
            matches!(err, ServeError::Durable(DurableError::Io(_))),
            "read fault at boundary {fail_at} must be typed I/O, got {err:?}"
        );
    }

    // Bit rot on the snapshot read is caught by the envelope checksum.
    let rot = Arc::new(FaultStorage::seeded(
        blobs,
        FaultPlan {
            kill_at: usize::MAX,
            torn_bytes: 0,
        },
        ReadFaultPlan {
            fail_at: None,
            corrupt_at: Some(0),
        },
    ));
    let err = recover_over(Arc::clone(&rot) as Arc<dyn Storage>)
        .map(|_| ())
        .expect_err("a corrupted read must fail recovery");
    assert!(
        matches!(
            err,
            ServeError::Durable(DurableError::CorruptArtifact {
                artifact: "snapshot",
                ..
            })
        ),
        "snapshot bit rot must be typed corruption, got {err:?}"
    );

    // The rot plan only corrupts read boundary 0: retrying on the very
    // same storage sees clean bytes and recovers bit-identically.
    let recovered = recover_over(rot as Arc<dyn Storage>).expect("retry recovers");
    assert_eq!(fingerprint(&recovered, f), before);
}

/// The replication hooks: a replica that imports the leader's exported
/// WAL records is bit-identical, generation stamps included; duplicated
/// frames are skipped, a gap stops the import, and a record for a user
/// the replica never onboarded is reported as divergence.
#[test]
fn imported_records_rebuild_a_bit_identical_replica() {
    let f = fixture();
    let leader = durable_engine(Arc::new(MemStorage::new()) as Arc<dyn Storage>, f, 0);
    assert_eq!(run_script(&leader, f), SCRIPT.len());
    let records = leader.export_records_after(0).unwrap();
    assert!(!records.is_empty());
    assert_eq!(records.last().unwrap().lsn, leader.wal_last_lsn().unwrap());

    let replica = durable_engine(Arc::new(MemStorage::new()) as Arc<dyn Storage>, f, 0);
    // Ship in two chunks with a duplicated overlap, as a lossy transport
    // would deliver them.
    let mid = records.len() / 2;
    let first = replica.import_records(&records[..mid]).unwrap();
    assert_eq!(first.applied_through, records[mid - 1].lsn);
    assert_eq!(first.duplicates, 0);
    let second = replica.import_records(&records[mid - 1..]).unwrap();
    assert_eq!(second.applied_through, records.last().unwrap().lsn);
    assert_eq!(second.duplicates, 1);
    assert_eq!(second.gap_at, None);
    assert_eq!(second.diverged, None);
    assert_eq!(fingerprint(&replica, f), fingerprint(&leader, f));
    for user in USERS {
        assert_eq!(
            replica.generation_of(user).ok(),
            leader.generation_of(user).ok(),
            "{user}'s generation stamp must transfer verbatim"
        );
    }
    // The replica's own log is bit-comparable: it re-exports the same
    // records it imported.
    assert_eq!(replica.export_records_after(0).unwrap(), records);

    // A batch that skips ahead reports the gap and applies nothing.
    let fresh = durable_engine(Arc::new(MemStorage::new()) as Arc<dyn Storage>, f, 0);
    let report = fresh.import_records(&records[1..]).unwrap();
    assert_eq!(report.gap_at, Some(1));
    assert_eq!(report.applied_through, 0);

    // A mutation for a user this replica never onboarded cannot have
    // come from its history: divergence, not a silent no-op.
    let stray = WalRecord {
        lsn: 1,
        op: WalOp::Quarantine {
            user: "zoe".to_string(),
            count: 1,
        },
    };
    let report = fresh.import_records(&[stray]).unwrap();
    assert!(report.diverged.is_some());
    assert_eq!(report.applied_through, 0);
}

/// Read-only serving (the leaderless-follower path) returns the same
/// bits as committed serving but mutates nothing — quarantine counts
/// stay where they were.
#[test]
fn predict_readonly_serves_identical_bits_without_committing() {
    let f = fixture();
    let engine = ServeEngine::with_policy(f.bundle.clone(), lenient(), engine_config());
    assert!(matches!(
        engine.onboard("amy", &maps_of(f, 0, 0, 2)).unwrap(),
        Onboarding::Assigned { .. }
    ));
    let probe = maps_of(f, 0, 3, 5);
    let committed: Vec<String> = engine
        .predict("amy", &probe)
        .unwrap()
        .iter()
        .map(prediction_key)
        .collect();
    let readonly: Vec<String> = engine
        .predict_readonly("amy", &probe)
        .unwrap()
        .iter()
        .map(prediction_key)
        .collect();
    assert_eq!(readonly, committed);
    // The quarantine path serves identical bits but commits no count.
    let before = engine.quarantined_count("amy");
    let a = engine.predict_readonly("amy", &[nan_map(f)]).unwrap();
    assert_eq!(engine.quarantined_count("amy"), before);
    let b = engine.predict("amy", &[nan_map(f)]).unwrap();
    assert_eq!(engine.quarantined_count("amy"), before + 1);
    assert_eq!(
        a.iter().map(prediction_key).collect::<Vec<_>>(),
        b.iter().map(prediction_key).collect::<Vec<_>>()
    );
}

/// LSN continuity across snapshot truncation: the WAL keeps counting, so
/// a snapshot's horizon can never be confused with replayed records.
#[test]
fn wal_lsns_stay_monotone_across_snapshots() {
    let f = fixture();
    let mem = Arc::new(MemStorage::new());
    let engine = durable_engine(Arc::clone(&mem) as Arc<dyn Storage>, f, 0);
    assert_eq!(run_script(&engine, f), SCRIPT.len());
    engine.snapshot().expect("snapshot succeeds");
    // Post-snapshot ops land with LSNs continuing past the horizon.
    engine.onboard("cal", &maps_of(f, 3, 0, 3)).unwrap();
    drop(engine);
    let (_, records) = Wal::open(Arc::clone(&mem) as Arc<dyn Storage>).unwrap();
    assert!(!records.is_empty());
    assert!(
        records.iter().all(|r| r.lsn > SCRIPT.len() as u64),
        "post-snapshot records must carry LSNs past the snapshot horizon"
    );
    let recovered = durable_engine(Arc::clone(&mem) as Arc<dyn Storage>, f, 0);
    assert!(recovered.cluster_of("cal").is_ok());
    assert!(recovered.is_personalized("bob"));
}
