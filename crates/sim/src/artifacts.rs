//! Sensor artifact injection.
//!
//! Real wearable recordings contain motion artifacts, electrode lift-off
//! dropouts and quantization — the reasons edge pipelines need robust
//! feature extraction. This module corrupts clean recordings in
//! controlled, physiologically-typical ways so the test suite and
//! robustness studies can measure how gracefully the CLEAR pipeline
//! degrades (the paper's "real-world usability" claim).

use crate::Recording;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the artifact injector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArtifactConfig {
    /// Expected motion-artifact bursts per minute (BVP is most affected).
    pub motion_bursts_per_min: f32,
    /// Burst duration in seconds.
    pub burst_secs: f32,
    /// Burst amplitude as a multiple of the signal's standard deviation.
    pub burst_gain: f32,
    /// Probability that a recording contains a sensor dropout (a span
    /// frozen at the last valid value — electrode lift-off).
    pub dropout_probability: f32,
    /// Dropout duration in seconds.
    pub dropout_secs: f32,
    /// Additive wideband noise standard deviation as a fraction of each
    /// channel's standard deviation.
    pub noise_fraction: f32,
    /// Probability that a channel contains a *flatline* span: the sensor
    /// reports a single stuck value with no noise on top (ADC freeze /
    /// firmware stall), unlike [`ArtifactConfig::dropout_probability`]
    /// spans which still accumulate the wideband noise.
    #[serde(default)]
    pub flatline_probability: f32,
    /// Flatline duration in seconds.
    #[serde(default = "default_flatline_secs")]
    pub flatline_secs: f32,
    /// Probability that a channel saturates against its amplifier rails
    /// for a span (values clipped at a tight symmetric level around the
    /// channel mean).
    #[serde(default)]
    pub saturation_probability: f32,
    /// Saturation span duration in seconds.
    #[serde(default = "default_saturation_secs")]
    pub saturation_secs: f32,
    /// Clip level of a saturated span, in channel standard deviations
    /// around the channel mean (smaller = harsher clipping).
    #[serde(default = "default_saturation_level_sd")]
    pub saturation_level_sd: f32,
    /// Probability that a channel is lost for the *whole recording*
    /// (electrode unplugged): every sample frozen at the first value.
    #[serde(default)]
    pub channel_loss_probability: f32,
    /// Seed for reproducible corruption.
    pub seed: u64,
}

fn default_flatline_secs() -> f32 {
    3.0
}

fn default_saturation_secs() -> f32 {
    3.0
}

fn default_saturation_level_sd() -> f32 {
    0.5
}

impl Default for ArtifactConfig {
    fn default() -> Self {
        Self {
            motion_bursts_per_min: 2.0,
            burst_secs: 1.0,
            burst_gain: 3.0,
            dropout_probability: 0.15,
            dropout_secs: 2.0,
            noise_fraction: 0.10,
            flatline_probability: 0.0,
            flatline_secs: default_flatline_secs(),
            saturation_probability: 0.0,
            saturation_secs: default_saturation_secs(),
            saturation_level_sd: default_saturation_level_sd(),
            channel_loss_probability: 0.0,
            seed: 99,
        }
    }
}

impl ArtifactConfig {
    /// A configuration with every artifact kind disabled: [`corrupt`] is
    /// the identity (up to cloning) under this config.
    pub fn clean(seed: u64) -> Self {
        Self {
            motion_bursts_per_min: 0.0,
            dropout_probability: 0.0,
            noise_fraction: 0.0,
            seed,
            ..Self::default()
        }
    }

    /// Scales every artifact kind by `level` in `[0, 1]`: 0 is the clean
    /// identity, 1 is a harsh wearable environment (frequent strong
    /// bursts, long dropouts, flatlines, rail saturation and occasional
    /// whole-channel loss). Used by the robustness-curve sweep.
    pub fn severity(level: f32, seed: u64) -> Self {
        let s = level.clamp(0.0, 1.0);
        Self {
            motion_bursts_per_min: 6.0 * s,
            burst_secs: 1.0,
            burst_gain: 2.0 + 6.0 * s,
            dropout_probability: 0.8 * s,
            dropout_secs: 2.0 + 3.0 * s,
            noise_fraction: 0.35 * s,
            flatline_probability: 0.5 * s,
            flatline_secs: 2.0 + 4.0 * s,
            saturation_probability: 0.5 * s,
            saturation_secs: 2.0 + 4.0 * s,
            saturation_level_sd: default_saturation_level_sd(),
            channel_loss_probability: 0.25 * s,
            seed,
        }
    }
}

fn std_of(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let m = x.iter().sum::<f32>() / x.len() as f32;
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32).sqrt()
}

fn corrupt_channel<R: Rng + ?Sized>(x: &mut [f32], fs: f32, config: &ArtifactConfig, rng: &mut R) {
    if x.is_empty() {
        return;
    }
    let sd = std_of(x).max(1e-6);
    let n = x.len();
    let duration_min = n as f32 / fs / 60.0;

    // Motion bursts: Poisson count, each a decaying oscillatory transient.
    let expected = config.motion_bursts_per_min * duration_min;
    let bursts = poisson(expected, rng);
    for _ in 0..bursts {
        let start = rng.gen_range(0..n);
        let span = ((config.burst_secs * fs) as usize).max(1);
        let f_burst = rng.gen_range(0.5..4.0f32);
        for i in start..(start + span).min(n) {
            let t = (i - start) as f32 / fs;
            let envelope = (-(t / config.burst_secs) * 3.0).exp();
            x[i] += config.burst_gain
                * sd
                * envelope
                * (2.0 * std::f32::consts::PI * f_burst * t).sin();
        }
    }

    // Dropout: freeze a span at its first value.
    if rng.gen_range(0.0..1.0f32) < config.dropout_probability {
        let span = ((config.dropout_secs * fs) as usize).max(1);
        let start = rng.gen_range(0..n.saturating_sub(span).max(1));
        let frozen = x[start];
        for v in &mut x[start..(start + span).min(n)] {
            *v = frozen;
        }
    }

    // Wideband noise.
    for v in x.iter_mut() {
        let u1: f32 = rng.gen_range(1e-6..1.0f32);
        let u2: f32 = rng.gen_range(0.0..1.0f32);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        *v += config.noise_fraction * sd * g;
    }

    // The remaining kinds are guarded on a non-zero probability before any
    // RNG draw so configurations predating them reproduce bit-identical
    // corruption (the draws would otherwise shift the stream).

    // Rail saturation: a span clipped tightly around the channel mean.
    if config.saturation_probability > 0.0
        && rng.gen_range(0.0..1.0f32) < config.saturation_probability
    {
        let mean = x.iter().sum::<f32>() / n as f32;
        let rail = (config.saturation_level_sd * sd).max(1e-6);
        let span = ((config.saturation_secs * fs) as usize).max(1);
        let start = rng.gen_range(0..n.saturating_sub(span).max(1));
        for v in &mut x[start..(start + span).min(n)] {
            *v = v.clamp(mean - rail, mean + rail);
        }
    }

    // Flatline: a span stuck at one value, with *no* noise on top (applied
    // after the noise pass, unlike dropout).
    if config.flatline_probability > 0.0 && rng.gen_range(0.0..1.0f32) < config.flatline_probability
    {
        let span = ((config.flatline_secs * fs) as usize).max(1);
        let start = rng.gen_range(0..n.saturating_sub(span).max(1));
        let stuck = x[start];
        for v in &mut x[start..(start + span).min(n)] {
            *v = stuck;
        }
    }

    // Whole-channel loss: the sensor is gone for the entire recording.
    if config.channel_loss_probability > 0.0
        && rng.gen_range(0.0..1.0f32) < config.channel_loss_probability
    {
        let stuck = x[0];
        for v in x.iter_mut() {
            *v = stuck;
        }
    }
}

fn poisson<R: Rng + ?Sized>(lambda: f32, rng: &mut R) -> usize {
    // Knuth's algorithm; fine for small lambda.
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f32;
    loop {
        p *= rng.gen_range(0.0..1.0f32);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k;
        }
    }
}

/// Returns a corrupted copy of `recording` (the clean original is
/// untouched). Sampling rates must match the recording's generator
/// configuration.
pub fn corrupt(
    recording: &Recording,
    fs_bvp: f32,
    fs_gsr: f32,
    fs_skt: f32,
    config: &ArtifactConfig,
) -> Recording {
    let mut out = recording.clone();
    let mut rng = SmallRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(recording.subject.0 as u64 * 131 + recording.stimulus as u64),
    );
    corrupt_channel(&mut out.bvp, fs_bvp, config, &mut rng);
    corrupt_channel(&mut out.gsr, fs_gsr, config, &mut rng);
    // SKT sensors are thermally sluggish: motion barely couples in, so
    // only dropout and (reduced) noise apply.
    let skt_config = ArtifactConfig {
        motion_bursts_per_min: 0.0,
        noise_fraction: config.noise_fraction * 0.3,
        ..*config
    };
    corrupt_channel(&mut out.skt, fs_skt, &skt_config, &mut rng);
    // Conductance cannot go negative even under artifacts.
    for v in &mut out.gsr {
        *v = v.max(0.01);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cohort, CohortConfig};

    fn sample() -> (Recording, f32, f32, f32) {
        let config = CohortConfig::small(3);
        let cohort = Cohort::generate(&config);
        (
            cohort.recordings()[0].clone(),
            config.signal.fs_bvp,
            config.signal.fs_gsr,
            config.signal.fs_skt,
        )
    }

    #[test]
    fn corruption_changes_signals_but_not_metadata() {
        let (rec, fb, fg, fs) = sample();
        let bad = corrupt(&rec, fb, fg, fs, &ArtifactConfig::default());
        assert_ne!(bad.bvp, rec.bvp);
        assert_ne!(bad.gsr, rec.gsr);
        assert_eq!(bad.subject, rec.subject);
        assert_eq!(bad.emotion, rec.emotion);
        assert_eq!(bad.bvp.len(), rec.bvp.len());
    }

    #[test]
    fn corruption_is_deterministic() {
        let (rec, fb, fg, fs) = sample();
        let a = corrupt(&rec, fb, fg, fs, &ArtifactConfig::default());
        let b = corrupt(&rec, fb, fg, fs, &ArtifactConfig::default());
        assert_eq!(a.bvp, b.bvp);
        assert_eq!(a.gsr, b.gsr);
    }

    #[test]
    fn gsr_stays_positive_under_artifacts() {
        let (rec, fb, fg, fs) = sample();
        let heavy = ArtifactConfig {
            burst_gain: 10.0,
            noise_fraction: 0.5,
            ..ArtifactConfig::default()
        };
        let bad = corrupt(&rec, fb, fg, fs, &heavy);
        assert!(bad.gsr.iter().all(|&v| v > 0.0));
        assert!(bad.bvp.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_config_only_adds_nothing() {
        let (rec, fb, fg, fs) = sample();
        let none = ArtifactConfig {
            motion_bursts_per_min: 0.0,
            dropout_probability: 0.0,
            noise_fraction: 0.0,
            ..ArtifactConfig::default()
        };
        let same = corrupt(&rec, fb, fg, fs, &none);
        assert_eq!(same.bvp, rec.bvp);
        assert_eq!(same.skt, rec.skt);
    }

    #[test]
    fn channel_loss_flattens_every_channel() {
        let (rec, fb, fg, fs) = sample();
        let lost = corrupt(
            &rec,
            fb,
            fg,
            fs,
            &ArtifactConfig {
                channel_loss_probability: 1.0,
                ..ArtifactConfig::clean(7)
            },
        );
        assert!(lost.bvp.iter().all(|&v| v == lost.bvp[0]));
        assert!(lost.skt.iter().all(|&v| v == lost.skt[0]));
        // GSR is additionally floored at 0.01, so "constant" still holds.
        assert!(lost.gsr.iter().all(|&v| v == lost.gsr[0]));
    }

    #[test]
    fn flatline_freezes_a_span_exactly() {
        let (rec, fb, fg, fs) = sample();
        let flat = corrupt(
            &rec,
            fb,
            fg,
            fs,
            &ArtifactConfig {
                flatline_probability: 1.0,
                flatline_secs: 4.0,
                ..ArtifactConfig::clean(11)
            },
        );
        // Some run of >= 2 s worth of BVP samples must be exactly constant.
        let min_run = (2.0 * fb) as usize;
        let mut run = 1usize;
        let mut longest = 1usize;
        for w in flat.bvp.windows(2) {
            if w[0] == w[1] {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 1;
            }
        }
        assert!(longest >= min_run, "longest flat run {longest} < {min_run}");
    }

    #[test]
    fn saturation_clips_to_a_narrow_band() {
        let (rec, fb, fg, fs) = sample();
        let sat = corrupt(
            &rec,
            fb,
            fg,
            fs,
            &ArtifactConfig {
                saturation_probability: 1.0,
                saturation_secs: 8.0,
                saturation_level_sd: 0.2,
                ..ArtifactConfig::clean(13)
            },
        );
        // Clipping never widens the channel's excursion.
        let width = |x: &[f32]| {
            x.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
                - x.iter().cloned().fold(f32::INFINITY, f32::min)
        };
        assert!(width(&sat.bvp) <= width(&rec.bvp) + 1e-6);
        assert_ne!(sat.bvp, rec.bvp);
    }

    #[test]
    fn severity_zero_is_identity_and_scales_up() {
        let (rec, fb, fg, fs) = sample();
        let clean = corrupt(&rec, fb, fg, fs, &ArtifactConfig::severity(0.0, 5));
        assert_eq!(clean.bvp, rec.bvp);
        assert_eq!(clean.gsr, rec.gsr);
        assert_eq!(clean.skt, rec.skt);
        let harsh = corrupt(&rec, fb, fg, fs, &ArtifactConfig::severity(1.0, 5));
        assert_ne!(harsh.bvp, rec.bvp);
        assert!(harsh.bvp.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn legacy_config_stream_is_unchanged_by_new_kinds() {
        // Old configs (new probabilities zero) must produce bit-identical
        // output to the pre-extension injector; the disabled kinds draw
        // nothing from the RNG, so enabling one must change nothing before
        // its own span draws.
        let (rec, fb, fg, fs) = sample();
        let base = corrupt(&rec, fb, fg, fs, &ArtifactConfig::default());
        let again = corrupt(&rec, fb, fg, fs, &ArtifactConfig::default());
        assert_eq!(base.bvp, again.bvp);
        assert_eq!(base.gsr, again.gsr);
        assert_eq!(base.skt, again.skt);
    }

    #[test]
    fn noise_scales_with_fraction() {
        let (rec, fb, fg, fs) = sample();
        let light = corrupt(
            &rec,
            fb,
            fg,
            fs,
            &ArtifactConfig {
                motion_bursts_per_min: 0.0,
                dropout_probability: 0.0,
                noise_fraction: 0.05,
                ..ArtifactConfig::default()
            },
        );
        let heavy = corrupt(
            &rec,
            fb,
            fg,
            fs,
            &ArtifactConfig {
                motion_bursts_per_min: 0.0,
                dropout_probability: 0.0,
                noise_fraction: 0.5,
                ..ArtifactConfig::default()
            },
        );
        let rms = |a: &[f32], b: &[f32]| -> f32 {
            (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>() / a.len() as f32).sqrt()
        };
        assert!(rms(&heavy.bvp, &rec.bvp) > 5.0 * rms(&light.bvp, &rec.bvp));
    }
}
