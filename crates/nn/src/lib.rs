//! # clear-nn — from-scratch CNN-LSTM deep learning stack
//!
//! The CLEAR paper classifies 2D feature maps with a small CNN-LSTM
//! (paper Fig. 2: two convolutional layers feeding an LSTM and a dense
//! head). The `repro_why` calibration notes that Rust DL training tooling
//! (candle/tch) is immature, so this crate implements the full stack from
//! scratch in pure Rust:
//!
//! * [`tensor`] — a minimal row-major `f32` tensor,
//! * [`layers`] — `Conv2d`, `MaxPool2d`, `Relu`, `MapToSequence`, `Lstm`,
//!   `Dense`, `Dropout`, each with exact backward passes,
//! * [`network`] — a serializable sequential container and the canonical
//!   [`network::cnn_lstm`] architecture builder,
//! * [`workspace`] — reusable per-caller execution state (activations,
//!   gradients, LSTM tape, dropout masks, kernel scratch): networks are
//!   weights-only and shareable across threads, each caller brings a
//!   workspace,
//! * [`backend`] — pluggable inference kernels: the bit-exact scalar
//!   oracle, a vectorized f32 backend that is bit-identical to it, and a
//!   real int8 quantized execution path,
//! * [`loss`] — softmax cross-entropy,
//! * [`optim`] — SGD with momentum and Adam,
//! * [`train`] — mini-batch trainer with early stopping on a validation
//!   split,
//! * [`data`] — labeled datasets, shuffled splits, stratified sampling,
//! * [`metrics`] — accuracy, binary F1, confusion matrices, aggregation,
//! * [`quantize`] — int8 and fp16 weight quantization used by the edge
//!   platform simulator,
//! * [`summary`] — parameter and FLOP accounting per layer (Figure 2
//!   reproduction and the edge latency model).
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! ## Example
//!
//! ```
//! use clear_nn::network::cnn_lstm;
//! use clear_nn::tensor::Tensor;
//! use clear_nn::workspace::Workspace;
//!
//! // A classifier for 123×9 feature maps with 2 output classes. The
//! // network is immutable during inference; the workspace holds all
//! // per-call state and is reused allocation-free across calls.
//! let net = cnn_lstm(123, 9, 2, 42);
//! let mut ws = Workspace::new();
//! let map = Tensor::zeros(&[1, 123, 9]);
//! let logits = net.forward(&map, false, &mut ws);
//! assert_eq!(logits.shape(), &[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod data;
pub mod delta;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod quantize;
pub mod summary;
pub mod tensor;
pub mod train;
pub mod workspace;

/// Errors produced by `clear-nn`.
#[derive(Debug)]
pub enum NnError {
    /// Shape mismatch between a tensor and what a layer expects.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: Vec<usize>,
    },
    /// Checkpoint (de)serialization failure.
    Checkpoint(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual:?}")
            }
            NnError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
        let e = NnError::ShapeMismatch {
            expected: "[1, 2, 3]".into(),
            actual: vec![4],
        };
        assert!(e.to_string().starts_with("shape mismatch"));
    }
}
