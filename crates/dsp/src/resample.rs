//! Resampling and interpolation helpers.
//!
//! The HRV frequency-domain features need the irregular inter-beat series
//! resampled on a uniform grid; the simulator and feature extractor use the
//! uniform-ratio resampler when modalities are recorded at different rates.

use crate::DspError;

/// Linearly interpolates the samples `(xs[i], ys[i])` onto `n` uniformly
/// spaced points covering `[x_start, x_end]` inclusive.
///
/// `xs` must be strictly increasing. Query points outside the data range are
/// clamped to the boundary values (constant extrapolation).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `xs` is empty,
/// [`DspError::BadLength`] when `xs.len() != ys.len()`, and
/// [`DspError::BadParameter`] when `xs` is not strictly increasing,
/// `n == 0`, or `x_end < x_start`.
pub fn interp_uniform(
    xs: &[f32],
    ys: &[f32],
    x_start: f32,
    x_end: f32,
    n: usize,
) -> Result<Vec<f32>, DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(DspError::BadLength {
            expected: "xs and ys of equal length",
            actual: ys.len(),
        });
    }
    if n == 0 {
        return Err(DspError::BadParameter {
            name: "n",
            reason: "at least one output sample is required",
        });
    }
    if x_end < x_start {
        return Err(DspError::BadParameter {
            name: "x_end",
            reason: "range end must not precede range start",
        });
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(DspError::BadParameter {
            name: "xs",
            reason: "sample positions must be strictly increasing",
        });
    }
    let step = if n > 1 {
        (x_end - x_start) / (n - 1) as f32
    } else {
        0.0
    };
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for i in 0..n {
        let xq = x_start + step * i as f32;
        if xq <= xs[0] {
            out.push(ys[0]);
            continue;
        }
        if xq >= *xs.last().unwrap() {
            out.push(*ys.last().unwrap());
            continue;
        }
        while seg + 1 < xs.len() && xs[seg + 1] < xq {
            seg += 1;
        }
        let x0 = xs[seg];
        let x1 = xs[seg + 1];
        let t = (xq - x0) / (x1 - x0);
        out.push(ys[seg] + t * (ys[seg + 1] - ys[seg]));
    }
    Ok(out)
}

/// Resamples a uniformly sampled signal from `fs_in` Hz to `fs_out` Hz by
/// linear interpolation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::BadParameter`] when either rate is non-positive.
pub fn resample(x: &[f32], fs_in: f32, fs_out: f32) -> Result<Vec<f32>, DspError> {
    let _span = clear_obs::span(clear_obs::Stage::DspResample);
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fs_in.is_nan() || fs_in <= 0.0 || fs_out.is_nan() || fs_out <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rates must be positive",
        });
    }
    let duration = (x.len() - 1) as f32 / fs_in;
    let n_out = ((duration * fs_out) as usize + 1).max(1);
    let xs: Vec<f32> = (0..x.len()).map(|i| i as f32 / fs_in).collect();
    interp_uniform(&xs, x, 0.0, duration, n_out)
}

/// Resamples a uniformly sampled signal from `fs_in` Hz to `fs_out` Hz on
/// the fixed output grid `t_j = j / fs_out`, emitting exactly the samples
/// whose interpolation support is inside the input.
///
/// Unlike [`resample`], whose interpolation step depends on the *total*
/// signal duration (so its values change as more samples arrive), this
/// grid is independent of signal length: it is the batch counterpart of
/// [`StreamingResampler`] and produces bit-identical output for any
/// chunking of the same stream.
///
/// # Errors
///
/// Returns [`DspError::BadParameter`] when either rate is non-positive or
/// NaN. An empty input yields an empty output.
pub fn resample_grid(x: &[f32], fs_in: f32, fs_out: f32) -> Result<Vec<f32>, DspError> {
    if fs_in.is_nan() || fs_in <= 0.0 || fs_out.is_nan() || fs_out <= 0.0 {
        return Err(DspError::BadParameter {
            name: "fs",
            reason: "sampling rates must be positive",
        });
    }
    let ratio = fs_in / fs_out;
    let mut out = Vec::new();
    let mut j = 0usize;
    loop {
        let pos = j as f32 * ratio;
        let i0 = pos as usize;
        let frac = pos - i0 as f32;
        let need = if frac > 0.0 { i0 + 1 } else { i0 };
        if need >= x.len() {
            break;
        }
        out.push(if frac == 0.0 {
            x[i0]
        } else {
            x[i0] + frac * (x[i0 + 1] - x[i0])
        });
        j += 1;
    }
    Ok(out)
}

/// Chunk-by-chunk linear resampler onto the fixed grid `t_j = j / fs_out`.
///
/// Feed raw device samples with [`StreamingResampler::push`] and receive
/// pipeline-rate samples, bit-identical to [`resample_grid`] over the
/// concatenated stream regardless of how it is chunked. Consumed input
/// samples are drained, so the resident buffer is a couple of samples —
/// never the whole stream. Identity rates (`fs_in == fs_out`) pass samples
/// through exactly.
#[derive(Debug, Clone)]
pub struct StreamingResampler {
    ratio: f32,
    buf: Vec<f32>,
    /// Absolute input index of `buf[0]`.
    base: usize,
    /// Next output sample index `j`.
    next_out: usize,
}

impl StreamingResampler {
    /// Creates a resampler converting `fs_in` Hz input to `fs_out` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when either rate is non-positive
    /// or NaN.
    pub fn new(fs_in: f32, fs_out: f32) -> Result<Self, DspError> {
        if fs_in.is_nan() || fs_in <= 0.0 || fs_out.is_nan() || fs_out <= 0.0 {
            return Err(DspError::BadParameter {
                name: "fs",
                reason: "sampling rates must be positive",
            });
        }
        Ok(Self {
            ratio: fs_in / fs_out,
            buf: Vec::new(),
            base: 0,
            next_out: 0,
        })
    }

    /// Appends input samples and returns every output sample they enable.
    pub fn push(&mut self, chunk: &[f32]) -> Vec<f32> {
        self.buf.extend_from_slice(chunk);
        let total = self.base + self.buf.len();
        let mut out = Vec::new();
        loop {
            let pos = self.next_out as f32 * self.ratio;
            let i0 = pos as usize;
            let frac = pos - i0 as f32;
            let need = if frac > 0.0 { i0 + 1 } else { i0 };
            if need >= total {
                break;
            }
            let a = self.buf[i0 - self.base];
            out.push(if frac == 0.0 {
                a
            } else {
                a + frac * (self.buf[i0 + 1 - self.base] - a)
            });
            self.next_out += 1;
        }
        // Input below the next output's floor index is unreachable:
        // `floor(j * ratio)` is monotone in `j`, so drop it.
        let keep = (self.next_out as f32 * self.ratio) as usize;
        if keep > self.base {
            let n = (keep - self.base).min(self.buf.len());
            self.buf.drain(..n);
            self.base += n;
        }
        out
    }

    /// Input samples currently resident in the buffer.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Splits `x` into consecutive windows of `len` samples advancing by `step`,
/// dropping any trailing partial window.
///
/// # Panics
///
/// Panics if `len == 0` or `step == 0`.
pub fn sliding_windows(x: &[f32], len: usize, step: usize) -> Vec<&[f32]> {
    assert!(
        len > 0 && step > 0,
        "window length and step must be nonzero"
    );
    let mut out = Vec::new();
    let mut start = 0;
    while start + len <= x.len() {
        out.push(&x[start..start + len]);
        start += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_recovers_linear_function() {
        let xs: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let out = interp_uniform(&xs, &ys, 0.0, 9.0, 19).unwrap();
        for (i, v) in out.iter().enumerate() {
            let xq = 9.0 * i as f32 / 18.0;
            assert!((v - (2.0 * xq + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn interp_clamps_outside_range() {
        let xs = [1.0f32, 2.0];
        let ys = [10.0f32, 20.0];
        let out = interp_uniform(&xs, &ys, 0.0, 3.0, 4).unwrap();
        assert_eq!(out[0], 10.0);
        assert_eq!(out[3], 20.0);
    }

    #[test]
    fn interp_validates() {
        assert!(interp_uniform(&[], &[], 0.0, 1.0, 4).is_err());
        assert!(interp_uniform(&[1.0], &[1.0, 2.0], 0.0, 1.0, 4).is_err());
        assert!(interp_uniform(&[1.0, 1.0], &[1.0, 2.0], 0.0, 1.0, 4).is_err());
        assert!(interp_uniform(&[1.0, 2.0], &[1.0, 2.0], 0.0, 1.0, 0).is_err());
        assert!(interp_uniform(&[1.0, 2.0], &[1.0, 2.0], 2.0, 1.0, 4).is_err());
    }

    #[test]
    fn resample_preserves_tone_shape() {
        let fs_in = 32.0;
        let x: Vec<f32> = (0..128)
            .map(|i| (2.0 * std::f32::consts::PI * 2.0 * i as f32 / fs_in).sin())
            .collect();
        let y = resample(&x, fs_in, 64.0).unwrap();
        assert!((y.len() as f32 - 2.0 * x.len() as f32).abs() < 3.0);
        // The upsampled signal still crosses zero ~16 times (2 Hz over 4 s).
        let zc = crate::stats::zero_crossings(&y);
        assert!((14..=18).contains(&zc), "zero crossings {zc}");
    }

    #[test]
    fn resample_identity_rate() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let y = resample(&x, 10.0, 10.0).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn resample_validates() {
        assert!(resample(&[], 10.0, 5.0).is_err());
        assert!(resample(&[1.0], 0.0, 5.0).is_err());
        assert!(resample(&[1.0], 10.0, -1.0).is_err());
    }

    #[test]
    fn resample_grid_identity_rate_is_exact_passthrough() {
        let x = vec![1.5f32, -2.25, 3.125, 4.0, 0.0625];
        let y = resample_grid(&x, 8.0, 8.0).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn resample_grid_validates_and_handles_empty() {
        assert!(resample_grid(&[1.0], 0.0, 5.0).is_err());
        assert!(resample_grid(&[1.0], 10.0, f32::NAN).is_err());
        assert!(resample_grid(&[], 10.0, 5.0).unwrap().is_empty());
        assert!(StreamingResampler::new(-1.0, 4.0).is_err());
    }

    #[test]
    fn resample_grid_upsamples_linear_ramp() {
        // 2x upsample of a ramp: midpoints are exact averages.
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let y = resample_grid(&x, 4.0, 8.0).unwrap();
        assert_eq!(y.len(), 15);
        for (j, v) in y.iter().enumerate() {
            assert!((v - j as f32 * 0.5).abs() < 1e-6, "sample {j} = {v}");
        }
    }

    #[test]
    fn streaming_resampler_matches_batch_grid_for_any_chunking() {
        let x: Vec<f32> = (0..997)
            .map(|i| (i as f32 * 0.37).sin() * 3.0 + (i as f32 * 0.011).cos())
            .collect();
        for &(fs_in, fs_out) in &[(32.0f32, 64.0f32), (64.0, 8.0), (4.0, 4.0), (19.0, 7.0)] {
            let batch = resample_grid(&x, fs_in, fs_out).unwrap();
            for chunks in [
                vec![997usize],
                vec![1; 997],
                vec![3, 500, 1, 493],
                vec![100; 10],
            ] {
                let mut r = StreamingResampler::new(fs_in, fs_out).unwrap();
                let mut live = Vec::new();
                let mut off = 0usize;
                for c in chunks {
                    let end = (off + c).min(x.len());
                    live.extend(r.push(&x[off..end]));
                    let bound = (fs_in / fs_out).ceil() as usize + 2 + c;
                    assert!(r.buffered() <= bound, "resampler buffer grew: {}", r.buffered());
                    off = end;
                    if off == x.len() {
                        break;
                    }
                }
                assert_eq!(live.len(), batch.len(), "{fs_in}->{fs_out}");
                for (a, b) in live.iter().zip(&batch) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{fs_in}->{fs_out}");
                }
            }
        }
    }

    #[test]
    fn sliding_windows_counts_and_contents() {
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let w = sliding_windows(&x, 4, 2);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(w[3], &[6.0, 7.0, 8.0, 9.0]);
        // Non-overlapping exact fit.
        assert_eq!(sliding_windows(&x, 5, 5).len(), 2);
        // Window longer than signal → none.
        assert!(sliding_windows(&x, 11, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn sliding_windows_zero_step_panics() {
        sliding_windows(&[1.0], 1, 0);
    }
}
