//! End-to-end observability: the serving stack is instrumented with
//! clear-obs spans and counters, so running the cloud-fit → onboard →
//! predict flow with a fake-clock registry installed yields a complete,
//! deterministic, JSON-exportable snapshot.
//!
//! This test owns the process-global registry slot for its binary; it is
//! the only test here precisely so installation cannot race another test.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::deployment::{deploy, Onboarding, ServeTier, ServingPolicy};
use clear::features::FeatureMap;
use clear::obs::{self, FakeClock, Registry};
use clear::serve::{EngineConfig, ServeEngine};
use std::sync::Arc;

#[test]
fn serving_flow_populates_counters_and_stage_histograms() {
    let registry = Arc::new(Registry::with_clock(Box::new(FakeClock::new(1_000))));
    obs::install(Arc::clone(&registry));

    let config = ClearConfig::quick(17);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&newcomer, initial) = subjects.split_last().expect("cohort is non-empty");
    let mut dep = deploy(&data, initial, &config);

    let indices = data.indices_of(newcomer);
    let maps: Vec<FeatureMap> = indices[..2]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    let outcome = dep.onboard("carol", &maps).expect("maps are non-empty");
    assert!(matches!(outcome, Onboarding::Assigned { .. }));

    // Four clean windows plus one all-NaN window: the latter must take
    // the quarantine path and show up in the quarantine counter.
    let mut batch: Vec<FeatureMap> = indices[2..6]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    let template = &batch[0];
    let nan_columns = vec![vec![f32::NAN; template.feature_count()]; template.window_count()];
    batch.push(FeatureMap::from_columns(&nan_columns));
    let predictions = dep
        .predict_batch("carol", &batch)
        .expect("carol onboarded above");
    assert_eq!(predictions.len(), 5);

    // Snapshot before the cluster exercise below: these assertions pin
    // the single-deployment flow's exact counts.
    let snap = registry.snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Serving counters balance: every batched window was either served,
    // abstained on, or quarantined.
    assert_eq!(c(obs::counters::BATCHES), 1);
    assert_eq!(c(obs::counters::BATCH_WINDOWS), 5);
    assert_eq!(c(obs::counters::QUARANTINES), 1);
    assert_eq!(
        c(obs::counters::PREDICTIONS) + c(obs::counters::ABSTENTIONS),
        4
    );
    assert_eq!(c(obs::counters::ONBOARD_ASSIGNED), 1);
    assert!(c(obs::counters::TRAIN_EPOCHS) > 0, "cloud fit trains");

    // Stage histograms: the cloud fit, the onboarding assignment, and one
    // span per served window all recorded.
    for key in [
        "stage.core.cloud_fit",
        "stage.cluster.fit",
        "stage.cluster.assign",
        "stage.serve.onboard",
        "stage.serve.predict",
        "stage.serve.predict_batch",
        "stage.nn.forward",
        "stage.features.map",
    ] {
        assert!(snap.histograms.contains_key(key), "missing histogram {key}");
    }
    assert_eq!(snap.histograms["stage.serve.predict"].count, 5);
    assert_eq!(snap.histograms["stage.serve.predict_batch"].count, 1);
    assert_eq!(snap.histograms[obs::BATCH_SIZE_HISTOGRAM].count, 1);
    // Fake-clock latencies are exact step multiples, never zero.
    assert!(snap.histograms["stage.serve.predict_batch"].sum >= 1_000);

    // The JSON export reflects the same snapshot, deterministically.
    let json = snap.to_json_pretty();
    assert!(json.contains("\"serve.batches\": 1"));
    assert!(json.contains("\"stage.serve.predict\""));
    assert_eq!(json, registry.snapshot().to_json_pretty());

    // Tier counters. A Fast-tier engine serves the int8 backend and
    // re-serves through the exact path whenever the quantized pass would
    // abstain. Under a fully lenient policy the quantized pass never
    // abstains (the task is binary, so the class gate always passes):
    // every window lands in the int8 counter. Under an unsatisfiable
    // confidence floor it always abstains: every window takes the
    // exact-path fallback.
    let fast_config = EngineConfig {
        default_tier: ServeTier::Fast,
        ..EngineConfig::default()
    };
    let lenient = ServingPolicy {
        min_quality: 0.0,
        min_confidence: 0.0,
        ..ServingPolicy::default()
    };
    let fast = ServeEngine::with_policy(dep.bundle().clone(), lenient, fast_config);
    fast.onboard("erin", &maps).expect("maps are non-empty");
    fast.predict("erin", &batch[..2]).expect("erin onboarded above");
    let strict = ServingPolicy {
        min_confidence: 1.1,
        ..ServingPolicy::default()
    };
    let picky = ServeEngine::with_policy(dep.bundle().clone(), strict, fast_config);
    picky.onboard("frank", &maps).expect("maps are non-empty");
    picky
        .predict("frank", &batch[..2])
        .expect("frank onboarded above");
    let snap = registry.snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(c(obs::counters::SERVE_TIER_INT8), 2);
    assert_eq!(c(obs::counters::SERVE_TIER_F32_FALLBACK), 2);

    // A two-member replicated cluster over the simulated network: WAL
    // frames ship leader → follower, a crash promotes the follower, and
    // every leg lands in the cluster counters and stage histograms.
    let mut cluster = clear::cluster::ServeCluster::new(
        dep.bundle().clone(),
        clear::core::deployment::ServingPolicy {
            min_confidence: 0.0,
            ..clear::core::deployment::ServingPolicy::default()
        },
        &[0, 1],
        clear::cluster::ClusterConfig {
            partitions: 2,
            vnodes: 16,
            ..clear::cluster::ClusterConfig::default()
        },
        Box::new(clear::cluster::SimNet::reliable(5)),
    )
    .expect("cluster builds");
    cluster.onboard("dave", &maps).expect("maps are non-empty");
    cluster.flush().expect("reliable network settles");
    let victim = cluster
        .leader_of_partition(cluster.partition_of("dave"))
        .expect("partition has a leader");
    cluster.kill_member(victim).expect("crash handled");
    assert!(
        cluster.predict("dave", &batch[..1]).is_ok(),
        "promoted follower serves after the crash"
    );

    // Streaming ingestion: raw signal chunks through a StreamPump land in
    // the stream counters and stage histograms, and the drained
    // predictions flow through the same serving counters as batch paths.
    let stream_policy = ServingPolicy {
        min_confidence: 0.0,
        ..ServingPolicy::default()
    };
    let stream_engine = Arc::new(ServeEngine::with_policy(
        dep.bundle().clone(),
        stream_policy,
        EngineConfig::default(),
    ));
    let pump = clear::stream::StreamPump::new(
        Arc::clone(&stream_engine),
        clear::stream::PumpConfig::new(clear::stream::SessionConfig::new(
            config.cohort.signal,
            config.window,
            dep.bundle().windows,
        )),
    );
    stream_engine
        .onboard("grace", &maps)
        .expect("maps are non-empty");
    pump.open("grace").expect("fresh session");
    let rec = &data.cohort().recordings()[indices[2]];
    let (hb, hg, hs) = (rec.bvp.len() / 2, rec.gsr.len() / 2, rec.skt.len() / 2);
    pump.ingest("grace", &rec.bvp[..hb], &rec.gsr[..hg], &rec.skt[..hs])
        .expect("chunk fits — no budget configured");
    pump.ingest("grace", &rec.bvp[hb..], &rec.gsr[hg..], &rec.skt[hs..])
        .expect("chunk fits — no budget configured");
    let drains = pump.drain();
    assert_eq!(drains.len(), 1, "one session had completed maps");
    let served = drains[0].result.as_ref().expect("grace onboarded above");
    assert_eq!(served.len(), dep.bundle().windows);
    pump.close("grace").expect("session is open");

    obs::uninstall();
    let snap = registry.snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(c(obs::counters::STREAM_CHUNKS), 2);
    assert_eq!(
        c(obs::counters::STREAM_SAMPLES),
        (rec.bvp.len() + rec.gsr.len() + rec.skt.len()) as u64
    );
    assert_eq!(c(obs::counters::STREAM_WINDOWS), dep.bundle().windows as u64);
    assert_eq!(c(obs::counters::STREAM_MAPS), 1);
    assert_eq!(c(obs::counters::STREAM_SESSIONS_OPENED), 1);
    assert_eq!(c(obs::counters::STREAM_SESSIONS_CLOSED), 1);
    assert_eq!(snap.histograms["stage.stream.ingest"].count, 2);
    assert_eq!(snap.histograms["stage.stream.pump"].count, 1);
    assert!(c(obs::counters::CLUSTER_NET_MESSAGES) > 0);
    assert!(c(obs::counters::CLUSTER_FRAMES_SHIPPED) > 0);
    assert!(c(obs::counters::CLUSTER_FRAMES_ACKED) > 0);
    assert!(c(obs::counters::CLUSTER_FAILOVERS) >= 1);
    for key in [
        "stage.cluster.ship",
        "stage.cluster.catch_up",
        "stage.cluster.failover",
    ] {
        assert!(snap.histograms.contains_key(key), "missing histogram {key}");
    }
}
