//! Battery-life estimation for wearable duty cycles.
//!
//! The paper motivates CLEAR with always-on wearable deployments and
//! closes with "assure low power devices to further enhance real-world
//! usability". This module turns the simulator's power model into the
//! quantity a product team actually asks for: *hours of battery life under
//! a given monitoring duty cycle*, including periodic on-device
//! re-training.

use crate::deploy::EdgeDeployment;
use serde::{Deserialize, Serialize};

/// A monitoring duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycle {
    /// Classifications per hour (one per feature-map hop in continuous
    /// monitoring; lower for spot checks).
    pub inferences_per_hour: f32,
    /// On-device re-training sessions per day (personalization refreshes).
    pub retrainings_per_day: f32,
    /// Seconds per re-training session.
    pub retraining_secs: f32,
}

impl DutyCycle {
    /// Continuous monitoring: one inference per 6-second feature-map hop,
    /// one 60-second personalization refresh per day.
    pub fn continuous() -> Self {
        Self {
            inferences_per_hour: 600.0,
            retrainings_per_day: 1.0,
            retraining_secs: 60.0,
        }
    }

    /// Spot checking: one inference per minute, weekly refresh.
    pub fn spot_check() -> Self {
        Self {
            inferences_per_hour: 60.0,
            retrainings_per_day: 1.0 / 7.0,
            retraining_secs: 60.0,
        }
    }
}

/// Battery-life estimate of one deployment under a duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryEstimate {
    /// Mean power draw including idle, W.
    pub mean_power_w: f32,
    /// Estimated runtime on the given battery, hours.
    pub runtime_hours: f32,
    /// Fraction of energy spent on inference (vs idle + re-training).
    pub inference_energy_share: f32,
}

/// Estimates battery life for `deployment` under `duty` with a battery of
/// `battery_wh` watt-hours (a typical wearable cell is 1–2 Wh; a Pi
/// power-bank setup 10–40 Wh).
///
/// # Panics
///
/// Panics if `battery_wh` is not positive.
pub fn estimate(deployment: &EdgeDeployment, duty: &DutyCycle, battery_wh: f32) -> BatteryEstimate {
    assert!(battery_wh > 0.0, "battery capacity must be positive");
    let spec = deployment.spec();
    let infer_time_s = spec.inference_time_s(deployment.flops());
    let infer_energy_j = infer_time_s * spec.test_power_w();

    // Energy accounting over one hour.
    let infer_busy_s = duty.inferences_per_hour * infer_time_s;
    let retrain_busy_s = duty.retrainings_per_day / 24.0 * duty.retraining_secs;
    let idle_s = (3600.0 - infer_busy_s - retrain_busy_s).max(0.0);

    let e_infer = duty.inferences_per_hour * infer_energy_j;
    let e_retrain = retrain_busy_s * spec.retraining_power_w();
    let e_idle = idle_s * spec.idle_w;
    let total_j_per_hour = e_infer + e_retrain + e_idle;

    let mean_power_w = total_j_per_hour / 3600.0;
    let runtime_hours = battery_wh * 3600.0 / total_j_per_hour;
    BatteryEstimate {
        mean_power_w,
        runtime_hours,
        inference_energy_share: e_infer / total_j_per_hour,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use clear_nn::network::cnn_lstm_compact;

    fn deployment(device: Device) -> EdgeDeployment {
        EdgeDeployment::new(cnn_lstm_compact(123, 9, 2, 1), device, &[1, 123, 9])
    }

    #[test]
    fn tpu_outlasts_pi_on_the_same_battery() {
        let duty = DutyCycle::continuous();
        let tpu = estimate(&deployment(Device::CoralTpu), &duty, 10.0);
        let pi = estimate(&deployment(Device::PiNcs2), &duty, 10.0);
        assert!(tpu.runtime_hours > pi.runtime_hours);
        assert!(tpu.mean_power_w < pi.mean_power_w);
    }

    #[test]
    fn lighter_duty_cycle_lasts_longer() {
        let dep = deployment(Device::CoralTpu);
        let heavy = estimate(&dep, &DutyCycle::continuous(), 10.0);
        let light = estimate(&dep, &DutyCycle::spot_check(), 10.0);
        assert!(light.runtime_hours > heavy.runtime_hours);
        assert!(light.inference_energy_share < heavy.inference_energy_share);
    }

    #[test]
    fn runtime_scales_linearly_with_capacity() {
        let dep = deployment(Device::CoralTpu);
        let duty = DutyCycle::continuous();
        let a = estimate(&dep, &duty, 5.0);
        let b = estimate(&dep, &duty, 10.0);
        assert!((b.runtime_hours / a.runtime_hours - 2.0).abs() < 1e-3);
    }

    #[test]
    fn idle_dominates_at_low_duty() {
        let dep = deployment(Device::CoralTpu);
        let est = estimate(&dep, &DutyCycle::spot_check(), 10.0);
        assert!(est.inference_energy_share < 0.5);
        // Mean power close to (but above) the idle floor.
        let idle = dep.spec().idle_w;
        assert!(est.mean_power_w >= idle);
        assert!(est.mean_power_w < idle * 1.2);
    }

    #[test]
    #[should_panic(expected = "battery capacity")]
    fn zero_battery_panics() {
        let dep = deployment(Device::CoralTpu);
        let _ = estimate(&dep, &DutyCycle::continuous(), 0.0);
    }
}
